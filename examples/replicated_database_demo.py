#!/usr/bin/env python
"""Drive the replicated-database data path through a partition and heal.

A 7-site ring holds one replicated item under quorum consensus
(``q_r = 2``, ``q_w = 6``). The script scripts a link-failure partition,
shows which sides can still read and write, demonstrates that a write in
the majority side leaves a stale copy behind, and that after the heal
every read — even at the stale site — returns the newest value because
quorum intersection forces overlap with the write set. The database's
built-in one-copy-serializability checker verifies every step.

Run:  python examples/replicated_database_demo.py
"""

from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.replication.database import ReplicatedDatabase
from repro.topology.generators import ring


def show(db: ReplicatedDatabase, action: str, result) -> None:
    status = "GRANTED" if result.granted else f"DENIED ({result.outcome.value})"
    extra = ""
    if result.granted and hasattr(result, "value"):
        extra = f" -> {result.value!r} (ts {result.timestamp})"
    print(f"  {action:<28s} {status}{extra}")


def main() -> None:
    topo = ring(7)
    assignment = QuorumAssignment.from_read_quorum(7, 2)  # q_w = 6
    db = ReplicatedDatabase(
        topo, QuorumConsensusProtocol(assignment), initial_value="genesis"
    )
    print(f"ring of 7 sites, quorums {assignment}")

    print("\nhealthy network:")
    show(db, "read @ site 0", db.submit_read(0))
    show(db, "write 'v1' @ site 3", db.submit_write(3, "v1"))

    print("\npartition: cut links 0-1 and 4-5 -> {1..4} (4 votes) vs {5,6,0} (3 votes)")
    db.fail_link(0, 1)
    db.fail_link(4, 5)
    show(db, "read @ site 2  (4 votes)", db.submit_read(2))
    show(db, "write @ site 2 (4 < q_w)", db.submit_write(2, "lost-update?"))
    show(db, "read @ site 6  (3 votes)", db.submit_read(6))

    print("\nheal one link; majority side {1..4,5,6,0 minus cut}:")
    db.repair_link(0, 1)  # component {5,6,0,1,2,3,4} minus 4-5 cut = all 7
    show(db, "write 'v2' @ site 1", db.submit_write(1, "v2"))

    print("\ncut the ring again around site 4, isolating it:")
    db.fail_link(3, 4)
    # site 4's neighbours are 3 and 5; 4-5 is already down -> isolated.
    show(db, "read @ site 4 (1 vote)", db.submit_read(4))
    show(db, "write 'v3' @ site 0 (6 votes)", db.submit_write(0, "v3"))
    print(f"  stale copy at site 4: {db.copy_at(4).value!r} "
          f"(ts {db.copy_at(4).timestamp})")

    print("\nfull heal; the stale site reads through the quorum:")
    db.repair_link(4, 5)
    db.repair_link(3, 4)
    show(db, "read @ site 4", db.submit_read(4))

    print("\noutcome tally:", db.grant_counts())
    print("one-copy serializability checker: no violations raised")


if __name__ == "__main__":
    main()
