#!/usr/bin/env python
"""Paired protocol comparison on one recorded failure history.

Records a single failure trace on the paper's Topology 2 (101-site ring
plus 2 chords), then replays the *identical* history under every
replica-control protocol in the library — static quorum consensus at
several assignments, primary copy, and dynamic voting — so differences
in availability are purely protocol effects, with zero failure-process
variance (common random numbers at their strongest).

Run:  python examples/protocol_shootout.py [--alpha 0.5]
"""

import argparse

from repro.protocols.dynamic_voting import DynamicVotingProtocol
from repro.protocols.majority import MajorityConsensusProtocol
from repro.protocols.primary_copy import PrimaryCopyProtocol
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.protocols.read_one_write_all import ReadOneWriteAllProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine
from repro.simulation.trace import TraceReplayer
from repro.topology.generators import ring_with_chords

N_SITES = 101
CHORDS = 2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--alpha", type=float, default=0.5)
    parser.add_argument("--accesses", type=float, default=20_000.0)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    topology = ring_with_chords(N_SITES, CHORDS)
    T = topology.total_votes
    config = SimulationConfig.paper_like(
        topology,
        alpha=args.alpha,
        warmup_accesses=0.0,
        accesses_per_batch=args.accesses,
        n_batches=1,
        initial_state="stationary",
        seed=args.seed,
    )

    print(f"recording one failure history on {topology.name} "
          f"(~{args.accesses:.0f} accesses of simulated time)...")
    engine = SimulationEngine(config, MajorityConsensusProtocol(T), record_trace=True)
    batch = engine.run_batch(0)
    trace = batch.trace
    print(f"trace: {len(trace)} events over {trace.duration():.1f} time units "
          f"({trace.counts_by_kind()})")

    replayer = TraceReplayer(topology, trace)
    contenders = [
        ("majority consensus", MajorityConsensusProtocol(T)),
        ("read-one/write-all", ReadOneWriteAllProtocol(T)),
        ("q_r=5  (q_w=97)", QuorumConsensusProtocol(QuorumAssignment.from_read_quorum(T, 5))),
        ("q_r=25 (q_w=77)", QuorumConsensusProtocol(QuorumAssignment.from_read_quorum(T, 25))),
        ("primary copy @0", PrimaryCopyProtocol(0)),
        ("dynamic voting", DynamicVotingProtocol(N_SITES)),
    ]

    print(f"\ntime-weighted ACC at alpha = {args.alpha} over the SAME history:")
    results = []
    for name, protocol in contenders:
        acc = replayer.availability_of(protocol, alpha=args.alpha)
        results.append((acc, name))
        print(f"  {name:<22s} {acc:.4f}")

    best = max(results)
    print(f"\nwinner on this history: {best[1]} ({best[0]:.4f})")


if __name__ == "__main__":
    main()
