#!/usr/bin/env python
"""Dynamic quorum reassignment (QR protocol) adapting to a workload shift.

Scenario: a 21-site chorded ring serves a write-heavy workload
(``alpha = 0.25``) and later shifts to read-heavy (``alpha = 0.9``).
A static assignment must compromise; the QR protocol re-optimizes from
the on-line density estimate (with exponential forgetting, section 4.3)
and installs new quorums through the version-number mechanism of
section 2.2 — never from a component lacking a write quorum under the
old assignment.

The example prints measured availability for three strategies:

- static majority consensus,
- static optimal-for-phase-1,
- QR with on-line re-optimization.

Run:  python examples/dynamic_reassignment.py
"""

from repro.protocols.estimator import OnlineDensityEstimator
from repro.protocols.majority import MajorityConsensusProtocol
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.protocols.reassignment import QuorumReassignmentProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import optimal_read_quorum
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_simulation
from repro.topology.generators import ring_with_chords

TOPOLOGY = ring_with_chords(21, 2)
T = TOPOLOGY.total_votes
PHASES = ((0.25, 0), (0.9, 1))  # (alpha, phase seed)
ACCESSES_PER_PHASE = 20_000.0


def phase_config(alpha: float, seed: int) -> SimulationConfig:
    return SimulationConfig.paper_like(
        TOPOLOGY,
        alpha=alpha,
        warmup_accesses=500.0,
        accesses_per_batch=ACCESSES_PER_PHASE,
        n_batches=3,
        seed=seed,
    )


def run_static(protocol_factory) -> float:
    total = 0.0
    for alpha, seed in PHASES:
        res = run_simulation(phase_config(alpha, seed), protocol_factory())
        total += res.availability.mean
    return total / len(PHASES)


def run_dynamic() -> tuple[float, int]:
    total = 0.0
    installs = 0
    for alpha, seed in PHASES:
        protocol = QuorumReassignmentProtocol(T, QuorumAssignment.majority(T))
        estimator = OnlineDensityEstimator(TOPOLOGY.n_sites, T, forgetting_factor=0.999)

        def observer(time, tracker, proto, alpha=alpha):
            estimator.observe_all(tracker.vote_totals, weight=1.0)
            if estimator.total_weight < 30 * TOPOLOGY.n_sites:
                return
            model = AvailabilityModel.from_density_matrix(estimator.density_matrix())
            best = optimal_read_quorum(model, alpha=alpha, method="golden")
            current = proto.effective_assignment(tracker, 0)
            if current is not None and best.assignment != current:
                proto.try_reassign(tracker, 0, best.assignment)

        res = run_simulation(phase_config(alpha, seed), protocol,
                             change_observer=observer)
        total += res.availability.mean
        installs += protocol.installs
    return total / len(PHASES), installs


def main() -> None:
    print(f"topology: {TOPOLOGY.name}, phases: alpha = "
          + ", ".join(str(a) for a, _ in PHASES))

    acc_majority = run_static(lambda: MajorityConsensusProtocol(T))
    print(f"static majority consensus      : {acc_majority:.4f}")

    # Static assignment tuned for the write-heavy phase only.
    phase1_alpha = PHASES[0][0]
    from repro.analytic.ring import ring_density

    # Use the ring closed form as the off-line model a static deployment
    # would have used (ignores the chords - exactly the kind of modelling
    # gap section 4.3 warns about).
    f = ring_density(T, 0.96, 0.96)
    static_best = optimal_read_quorum(AvailabilityModel(f, f), alpha=phase1_alpha)
    acc_static = run_static(lambda: QuorumConsensusProtocol(static_best.assignment))
    print(f"static optimal-for-phase-1 {static_best.assignment}: {acc_static:.4f}")

    acc_dynamic, installs = run_dynamic()
    print(f"QR dynamic reassignment        : {acc_dynamic:.4f} "
          f"({installs} reassignments installed)")


if __name__ == "__main__":
    main()
