#!/usr/bin/env python
"""Weighted voting for heterogeneous hardware: optimize the votes too.

The paper's evaluation uses one vote per copy because its networks are
symmetric. Real deployments are not: this example builds a 12-site
chorded ring where every third site is flaky (55 % reliable vs 95 %),
then compares three configurations:

1. uniform votes + majority quorums (the naive deployment),
2. uniform votes + Figure-1 optimal quorums,
3. hill-climb optimized votes + optimal quorums
   (:func:`repro.optimize_votes`).

All three are scored on a held-out Monte-Carlo state sample, and the
chosen vote vector is printed so you can see the flaky sites being
stripped of influence.

Run:  python examples/heterogeneous_votes.py
"""

import numpy as np

from repro import optimize_votes
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import optimal_read_quorum
from repro.quorum.vote_optimizer import _StateSample, availability_of_votes
from repro.topology.generators import ring_with_chords

N = 12
ALPHA = 0.6
GOOD_P, BAD_P, LINK_R = 0.95, 0.55, 0.95


def main() -> None:
    topology = ring_with_chords(N, 2)
    p = np.full(N, GOOD_P)
    p[::3] = BAD_P
    print(f"topology: {topology.name}")
    print(f"site reliabilities: {p.tolist()}")
    print(f"read fraction alpha = {ALPHA}\n")

    holdout = _StateSample(topology, p, LINK_R, n_samples=8_000, seed=999)
    uniform = np.ones(N, dtype=np.int64)

    # 1. uniform votes, majority quorums
    matrix = holdout.density_matrix(uniform)
    model = AvailabilityModel.from_density_matrix(matrix)
    a_majority = float(model.availability(ALPHA, model.max_read_quorum))
    print(f"uniform votes + majority quorums : A = {a_majority:.4f}")

    # 2. uniform votes, optimal quorums
    a_uniform, q_uniform = availability_of_votes(holdout, uniform, ALPHA)
    print(f"uniform votes + optimal quorums  : A = {a_uniform:.4f} "
          f"at {q_uniform.assignment}")

    # 3. optimized votes, optimal quorums
    search = optimize_votes(topology, alpha=ALPHA, p=p, r=LINK_R,
                            n_samples=2_000, seed=7)
    a_opt, q_opt = availability_of_votes(
        holdout, np.asarray(search.votes, dtype=np.int64), ALPHA
    )
    print(f"optimized votes + optimal quorums: A = {a_opt:.4f} "
          f"at {q_opt.assignment}")
    print(f"\nvote vector found by hill-climbing ({search.candidates_evaluated} "
          f"candidates scored):")
    for site, (votes, rel) in enumerate(zip(search.votes, p)):
        marker = "  <- flaky" if rel == BAD_P else ""
        print(f"  site {site:2d}: reliability {rel:.2f}, votes {votes}{marker}")

    print(f"\ntotal gain over the naive deployment: {a_opt - a_majority:+.4f}")


if __name__ == "__main__":
    main()
