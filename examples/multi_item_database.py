#!/usr/bin/env python
"""Per-item quorum tuning in a multi-item replicated database.

A 9-site chorded ring hosts three items with different workloads, each
tuned with the Figure-1 algorithm for its own read fraction:

- ``catalog``  (alpha = 0.95, read-mostly)   -> small read quorum,
- ``ledger``   (alpha = 0.10, write-heavy)   -> majority quorums,
- ``config``   (partially replicated at 3 sites, alpha = 0.5).

The script computes each item's optimal assignment from the analytic
density, builds a :class:`repro.MultiItemDatabase`, and then walks a
partition scenario showing items with different quorum geometries making
different grant decisions over the *same* network state — including an
all-or-nothing transaction that aborts because one item's quorum fails.

Run:  python examples/multi_item_database.py
"""

import numpy as np

from repro import (
    AvailabilityModel,
    ItemBinding,
    MultiItemDatabase,
    QuorumConsensusProtocol,
    ReplicatedItem,
    optimal_read_quorum,
)
from repro.analytic.montecarlo import montecarlo_density_matrix
from repro.topology.generators import ring_with_chords

N = 9
P = R = 0.93


def tune(name: str, alpha: float, votes: np.ndarray, topology) -> QuorumConsensusProtocol:
    """Figure-1 tuning for one item's vote geometry and read mix."""
    matrix = montecarlo_density_matrix(
        topology.with_votes(votes), P, R, n_samples=4_000, seed=hash(name) % 2**31
    )
    model = AvailabilityModel.from_density_matrix(matrix)
    best = optimal_read_quorum(model, alpha)
    print(f"  {name:<8s} alpha={alpha:4.2f} -> {best.assignment} "
          f"(predicted A = {best.availability:.3f})")
    return QuorumConsensusProtocol(best.assignment)


def main() -> None:
    topology = ring_with_chords(N, 1)
    print(f"network: {topology.name}, p = r = {P}\n")
    print("per-item Figure-1 tuning:")

    catalog_item = ReplicatedItem.fully_replicated("catalog", topology)
    ledger_item = ReplicatedItem.fully_replicated("ledger", topology)
    config_item = ReplicatedItem.at_sites("config", [0, 3, 6])

    db = MultiItemDatabase(
        topology,
        [
            ItemBinding(catalog_item, tune("catalog", 0.95,
                                           catalog_item.votes_vector(N), topology),
                        initial_value={"skus": 0}),
            ItemBinding(ledger_item, tune("ledger", 0.10,
                                          ledger_item.votes_vector(N), topology),
                        initial_value=0),
            ItemBinding(config_item, tune("config", 0.50,
                                          config_item.votes_vector(N), topology),
                        initial_value="v0"),
        ],
    )

    print("\nhealthy network: multi-item transaction (read catalog, bump ledger):")
    result = db.transaction(4, reads=["catalog"], writes={"ledger": 100})
    print(f"  committed = {result.committed}; ledger ts = {result.writes['ledger'].timestamp}")

    print("\npartition the network (cut 0-1, 4-5, and the 0-4 chord):")
    db.fail_link(0, 1)
    db.fail_link(4, 5)
    db.fail_link(0, 4)   # the chord would otherwise bridge the cuts
    for item in ("catalog", "ledger", "config"):
        small = db.read(item, 2)   # small fragment
        large = db.read(item, 7)   # large fragment
        print(f"  read {item:<8s} @2: {small.outcome.value:<10s} "
              f"@7: {large.outcome.value}")

    print("\nall-or-nothing: transaction touching catalog AND ledger in the "
          "small fragment:")
    result = db.transaction(2, reads=["catalog"], writes={"ledger": 999})
    print(f"  committed = {result.committed} "
          f"(blocked by {result.blocking_item!r}) — catalog read was NOT applied")

    print("\nheal and verify the ledger never took the aborted write:")
    db.repair_link(0, 1)
    db.repair_link(4, 5)
    db.repair_link(0, 4)
    print(f"  ledger @2 after heal: {db.read('ledger', 2).value}")


if __name__ == "__main__":
    main()
