#!/usr/bin/env python
"""The section 5.4 workflow: optimal quorums under a write-throughput floor.

On a sparse, read-heavy network the unconstrained optimum is usually
``q_r = 1`` (read-one/write-all) — and then a write succeeds only when
every copy is reachable, which in a large network is nearly never. The
paper's preferred remedy: restrict to read quorums whose induced write
availability ``A(0, q_r)`` meets a floor ``A_w``, then maximize.

This example reproduces the paper's worked example (its Topology 2 at
``alpha = 0.75`` with ``A_w >= 20%``) at configurable scale, and also
shows the alternative write-weighting method the paper describes but
declines to recommend.

Run:  python examples/write_constraint_tuning.py
"""

import numpy as np

from repro.experiments.figures import figure_data
from repro.experiments.paper import SMALL_SCALE
from repro.experiments.report import render_write_constraint_table
from repro.experiments.tables import write_constraint_table
from repro.quorum.constraints import optimize_with_write_floor, weighted_availability_curve
from repro.quorum.optimizer import optimal_read_quorum

ALPHA = 0.75
FLOOR = 0.20


def main() -> None:
    print("simulating the paper's Topology 2 (101-site ring + 2 chords)...")
    fig = figure_data(chords=2, scale=SMALL_SCALE, seed=2)
    model = fig.model

    free = optimal_read_quorum(model, ALPHA)
    free_write = float(np.asarray(model.write_availability_at(free.read_quorum)))
    print(
        f"unconstrained optimum: {free.assignment} "
        f"A = {free.availability:.4f}, but write availability only {free_write:.4f}"
    )

    constrained = optimize_with_write_floor(model, ALPHA, FLOOR)
    cons_write = float(np.asarray(model.write_availability_at(constrained.read_quorum)))
    print(
        f"with A_w >= {FLOOR:.0%}:      {constrained.assignment} "
        f"A = {constrained.availability:.4f}, write availability {cons_write:.4f}"
    )
    print(
        "(the paper reports q_r = 28 and A = 50% for its chord placement; "
        "see DESIGN.md on the substitution)"
    )

    print()
    print(render_write_constraint_table(
        write_constraint_table(model, ALPHA), ALPHA, fig.topology_name
    ))

    print()
    print("alternative (not recommended by the paper): write weighting")
    for omega in (1.0, 2.0, 5.0):
        curve = weighted_availability_curve(model, omega, ALPHA)
        q = int(np.argmax(curve)) + 1
        write = float(np.asarray(model.write_availability_at(q)))
        print(
            f"  omega = {omega:3.1f}: argmax q_r = {q:3d}, "
            f"A = {float(model.availability(ALPHA, q)):.4f}, A_w-level = {write:.4f}"
        )


if __name__ == "__main__":
    main()
