#!/usr/bin/env python
"""Quickstart: find the optimal quorum assignment for a replicated item.

Walks the paper's Figure-1 algorithm end to end on a 25-site network:

1. obtain the component-size density ``f_i(v)`` (analytically here;
   ``examples/optimal_quorum_campaign.py`` shows the on-line way),
2. build the availability model ``A(alpha, q_r)``,
3. optimize the read quorum for your workload's read fraction,
4. sanity-check the choice against a direct discrete-event simulation.

Run:  python examples/quickstart.py
"""

from repro import (
    AvailabilityModel,
    MajorityConsensusProtocol,
    QuorumConsensusProtocol,
    complete_density,
    optimal_read_quorum,
    ring_density,
    run_simulation,
)
from repro.simulation.config import SimulationConfig
from repro.topology.generators import ring

N_SITES = 25
SITE_RELIABILITY = 0.96
LINK_RELIABILITY = 0.96
ALPHA = 0.75  # three quarters of all accesses are reads


def main() -> None:
    print("=== optimal quorum assignment, analytically ===")
    for name, density in [
        ("fully connected", complete_density(N_SITES, SITE_RELIABILITY, LINK_RELIABILITY)),
        ("ring", ring_density(N_SITES, SITE_RELIABILITY, LINK_RELIABILITY)),
    ]:
        model = AvailabilityModel(density, density)
        best = optimal_read_quorum(model, alpha=ALPHA)
        print(
            f"{name:>16s}: best assignment {best.assignment} "
            f"-> availability {best.availability:.4f}"
        )
        majority = float(model.availability(ALPHA, model.max_read_quorum))
        print(f"{'':>16s}  (majority consensus would give {majority:.4f})")

    print()
    print("=== verify by simulation (ring) ===")
    topo = ring(N_SITES)
    config = SimulationConfig.paper_like(
        topo,
        alpha=ALPHA,
        warmup_accesses=1_000,
        accesses_per_batch=20_000,
        n_batches=4,
        seed=0,
    )
    density = ring_density(N_SITES, SITE_RELIABILITY, LINK_RELIABILITY)
    model = AvailabilityModel(density, density)
    best = optimal_read_quorum(model, alpha=ALPHA)

    measured_best = run_simulation(config, QuorumConsensusProtocol(best.assignment))
    measured_majority = run_simulation(config, MajorityConsensusProtocol(N_SITES))
    print(f"optimal  {best.assignment}: {measured_best.availability}")
    print(f"majority              : {measured_majority.availability}")
    gain = measured_best.availability.mean - measured_majority.availability.mean
    print(f"measured gain from optimal assignment: {gain:+.4f}")


if __name__ == "__main__":
    main()
