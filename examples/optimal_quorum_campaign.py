#!/usr/bin/env python
"""Reproduce a miniature of the paper's evaluation campaign (Figures 2-7).

For a set of ring-plus-chords topologies, run one simulation each, build
the availability curves for the paper's five read fractions from the
on-line density estimate, and print the figure tables plus the section
5.5 read-write-ratio summary.

Scale is configurable; the default finishes in under a minute. Pass
``--scale paper`` for the full 101-site, million-access configuration
(hours, as in the paper).

Run:  python examples/optimal_quorum_campaign.py [--scale test|small|paper]
"""

import argparse

from repro.experiments.figures import figure_data
from repro.experiments.paper import PAPER_ALPHAS, PAPER_SCALE, SMALL_SCALE, TEST_SCALE
from repro.experiments.report import render_figure, render_rw_table
from repro.experiments.tables import read_write_ratio_table

SCALES = {"test": TEST_SCALE, "small": SMALL_SCALE, "paper": PAPER_SCALE}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="test")
    parser.add_argument(
        "--chords",
        type=int,
        nargs="+",
        default=[0, 2, 16],
        help="paper topology indices to evaluate",
    )
    args = parser.parse_args()
    scale = SCALES[args.scale]

    models = []
    for chords in args.chords:
        fig = figure_data(chords=chords, scale=scale, seed=chords)
        print(render_figure(fig))
        print()
        models.append((fig.topology_name, fig.model))

    print(render_rw_table(read_write_ratio_table(models, PAPER_ALPHAS)))


if __name__ == "__main__":
    main()
