#!/usr/bin/env python
"""Measure line coverage of ``src/repro`` using only the stdlib.

CI runs pytest-cov, but this container (and any contributor without the
test extras) can establish the same baseline with ``sys.settrace``: a
global trace hook records every line executed inside ``src/repro`` while
pytest runs, and executable-line denominators come from compiling each
source file and walking ``co_lines()`` over the nested code objects —
the same instruction-bearing-line definition coverage.py uses.

Usage:
    PYTHONPATH=src python scripts/measure_coverage.py [--floor PCT] \
        [pytest args...]

Tracing costs roughly a 3-5x slowdown; pass ``-m "not slow"`` to get a
quick estimate, or nothing for the full tier-1 number.

Exit codes: 0 = coverage at or above the floor, 1 = below the floor,
2 = the underlying pytest run failed.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import pytest

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Floor enforced by CI (see .github/workflows/ci.yml). The full tier-1
#: suite measured 93.8% when the floor was set; the margin absorbs
#: line-definition differences vs pytest-cov and untraced subprocess
#: workers. Update deliberately, not to silence a regression.
DEFAULT_FLOOR = 88.0


def executable_lines(path: Path) -> set:
    """Lines of *path* that carry bytecode, per co_lines() recursion."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _, _, lineno in obj.co_lines():
            if lineno is not None:
                lines.add(lineno)
        stack.extend(c for c in obj.co_consts if hasattr(c, "co_lines"))
    return lines


class LineCollector:
    """Global trace hook recording executed lines under ``src/repro``."""

    def __init__(self, root: Path) -> None:
        self.root = str(root) + os.sep
        self.hits: dict = {}

    def _local(self, frame, event, arg):
        if event == "line":
            self.hits.setdefault(frame.f_code.co_filename, set()).add(
                frame.f_lineno
            )
        return self._local

    def __call__(self, frame, event, arg):
        # Filter at call granularity so foreign frames run untraced.
        if event == "call" and frame.f_code.co_filename.startswith(self.root):
            return self._local(frame, event, arg)
        return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--floor", type=float, default=DEFAULT_FLOOR,
                        help="minimum acceptable total coverage percent")
    parser.add_argument("--per-file", action="store_true",
                        help="print a per-file breakdown")
    args, pytest_args = parser.parse_known_args(argv)

    collector = LineCollector(SRC_ROOT)
    import threading

    threading.settrace(collector)
    sys.settrace(collector)
    try:
        code = pytest.main(["-q", "-p", "no:cacheprovider", *pytest_args])
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]
    if code != 0:
        print(f"coverage: underlying pytest run failed (exit {code})",
              file=sys.stderr)
        return 2

    total_exec = total_hit = 0
    rows = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        lines = executable_lines(path)
        hit = collector.hits.get(str(path), set()) & lines
        total_exec += len(lines)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(lines) if lines else 100.0
        rows.append((pct, len(hit), len(lines),
                     path.relative_to(SRC_ROOT.parent)))

    if args.per_file:
        for pct, hit, n_lines, rel in sorted(rows):
            print(f"  {pct:6.1f}%  {hit:4d}/{n_lines:<4d}  {rel}")

    total_pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"coverage: {total_hit}/{total_exec} executable lines "
          f"= {total_pct:.1f}% (floor {args.floor:.1f}%)")
    if total_pct < args.floor:
        print(f"FAIL: coverage {total_pct:.1f}% is below the "
              f"{args.floor:.1f}% floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
