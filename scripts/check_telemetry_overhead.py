#!/usr/bin/env python
"""Smoke-check that disabled telemetry stays out of the engine hot path.

The engine's epoch loop is instrumented, but when no recorder is
installed every instrumentation site reduces to one ``instruments is
None`` test. This script measures that residual cost directly: it times
the shipped ``_measure_loop`` (null recorder) against a pristine,
uninstrumented copy of the same loop, on identical seeds, and fails if
the instrumented-but-disabled path is more than ``--threshold`` slower.

Run from the repo root:

    PYTHONPATH=src python scripts/check_telemetry_overhead.py

Methodology: the two variants are timed interleaved (A B A B ...) so a
frequency ramp or a noisy neighbour hits both equally, and we compare
minima over ``--repeats`` rounds — the minimum is the standard low-noise
estimator for CPU-bound loops (cf. timeit).
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter

from repro.protocols.majority import MajorityConsensusProtocol
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine
from repro.topology.generators import ring


class BaselineEngine(SimulationEngine):
    """Engine with the pre-telemetry epoch loop (no instrumentation sites).

    This is a verbatim copy of ``SimulationEngine._measure_loop`` with
    every telemetry branch deleted — the floor the <5% criterion is
    measured against. It must stay semantically identical; the check
    below asserts both variants produce the same batch accounting.
    """

    def _measure_loop(
        self, queue, state, tracker, processes, trace,
        warmup_end, horizon, sampled, workload,
        access_rng, density_time, density_access, max_votes_time,
        counters,
    ) -> float:
        now = 0.0
        while now < horizon:
            epoch_end = min(queue.peek_time(), horizon) if queue else horizon
            if now < warmup_end < epoch_end:
                epoch_end = warmup_end
            duration = epoch_end - now
            measuring = now >= warmup_end

            if duration > 0 and measuring:
                vote_totals = tracker.vote_totals
                read_mask, write_mask = self.protocol.grant_masks(tracker)
                active = (
                    workload.at(now - warmup_end)
                    if hasattr(workload, "at")
                    else workload
                )
                if sampled:
                    reads, writes = active.sample_epoch(duration, access_rng)
                else:
                    reads, writes = active.expected_epoch(duration)
                counters.reads_submitted += float(reads.sum())
                counters.writes_submitted += float(writes.sum())
                counters.reads_granted += float(reads[read_mask].sum())
                counters.writes_granted += float(writes[write_mask].sum())
                if read_mask.any():
                    counters.surv_read_time += duration
                if write_mask.any():
                    counters.surv_write_time += duration
                density_time.observe_all(vote_totals, weight=duration)
                density_access.observe_counts(vote_totals, reads + writes)
                max_votes_time[int(vote_totals.max()) if vote_totals.size else 0] += duration
                epoch_hook = getattr(self.protocol, "record_epoch", None)
                if epoch_hook is not None:
                    epoch_hook(tracker, duration, reads=reads, writes=writes)
                counters.n_epochs += 1

            now = epoch_end
            if now >= horizon:
                break
            while queue and queue.peek_time() <= now:
                event = queue.pop()
                self._apply(event, state, processes, queue)
                trace.record(event)
                counters.n_events += 1
            self.protocol.on_network_change(tracker)
            if self.change_observer is not None:
                self.change_observer(now, tracker, self.protocol)
        return now


def build_config(n_sites: int, accesses: float, seed: int) -> SimulationConfig:
    return SimulationConfig.paper_like(
        ring(n_sites),
        alpha=0.5,
        warmup_accesses=0.0,
        accesses_per_batch=accesses,
        n_batches=1,
        seed=seed,
    )


def time_batches(engine: SimulationEngine, n_batches: int) -> float:
    start = perf_counter()
    for i in range(n_batches):
        engine.run_batch(i)
    return perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=1.05,
                        help="max allowed instrumented/baseline ratio")
    parser.add_argument("--repeats", type=int, default=7,
                        help="interleaved timing rounds (min is compared)")
    parser.add_argument("--sites", type=int, default=15)
    parser.add_argument("--accesses", type=float, default=40_000.0,
                        help="access volume per batch (sets batch length)")
    parser.add_argument("--batches", type=int, default=4,
                        help="batches per timing round")
    args = parser.parse_args(argv)

    cfg = build_config(args.sites, args.accesses, seed=17)
    protocol = MajorityConsensusProtocol(cfg.topology.total_votes)
    instrumented = SimulationEngine(cfg, protocol)
    baseline = BaselineEngine(cfg, protocol)

    assert not instrumented.telemetry.enabled, (
        "a telemetry recorder is installed; this check times the "
        "disabled path only"
    )

    # Sanity: the baseline copy must still compute the same physics.
    a = instrumented.run_batch(0)
    b = baseline.run_batch(0)
    for field in ("reads_submitted", "reads_granted", "writes_submitted",
                  "writes_granted", "n_epochs", "n_events"):
        if getattr(a, field) != getattr(b, field):
            print(f"FAIL: baseline loop diverged on {field}: "
                  f"{getattr(a, field)} != {getattr(b, field)}")
            return 2

    # Warm-up round so allocator/caches settle before timing.
    time_batches(instrumented, 1)
    time_batches(baseline, 1)

    inst_times, base_times = [], []
    for _ in range(args.repeats):
        inst_times.append(time_batches(instrumented, args.batches))
        base_times.append(time_batches(baseline, args.batches))

    inst_best = min(inst_times)
    base_best = min(base_times)
    ratio = inst_best / base_best
    overhead_pct = (ratio - 1.0) * 100.0
    print(f"baseline (uninstrumented loop): {base_best:.4f}s "
          f"for {args.batches} batches")
    print(f"instrumented, recorder disabled: {inst_best:.4f}s")
    print(f"overhead: {overhead_pct:+.2f}%  (threshold "
          f"{(args.threshold - 1.0) * 100.0:.0f}%)")
    if ratio >= args.threshold:
        print("FAIL: disabled-telemetry overhead exceeds the budget")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
