#!/usr/bin/env python
"""Smoke-check the engine hot path's telemetry overhead, off and on.

The engine's epoch loop is instrumented, but when no recorder is
installed every instrumentation site reduces to one ``instruments is
None`` test. This script measures that residual cost directly: it times
the shipped ``_measure_loop`` (null recorder) against a pristine,
uninstrumented copy of the same loop, on identical seeds, and fails if
the instrumented-but-disabled path is more than ``--threshold`` slower.

A second measurement gates the *enabled* cost of the tracing layer
where it actually instruments: the enumeration kernel, whose chunk loop
is split into named phases (``enum.unpack`` .. ``enum.accumulate``).
The kernel is timed with the null recorder and again under a live one;
the live path adds phase accounting (two clock reads per section) and
must stay under ``--tracing-threshold`` (default 1.10). The engine
epoch loop is deliberately *not* the tracing-on gate: a live recorder
there pays for per-epoch metrics and audit records, a cost that predates
and is orthogonal to the tracing subsystem. A sanity check asserts both
kernel runs return bitwise identical densities — tracing observes
outcomes, it must never change them.

Run from the repo root:

    PYTHONPATH=src python scripts/check_telemetry_overhead.py

Methodology: the two variants are timed interleaved (A B A B ...) so a
frequency ramp or a noisy neighbour hits both equally, and we compare
minima over ``--repeats`` rounds — the minimum is the standard low-noise
estimator for CPU-bound loops (cf. timeit).
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter

from repro.protocols.majority import MajorityConsensusProtocol
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine
from repro.topology.generators import ring


class BaselineEngine(SimulationEngine):
    """Engine with the pre-telemetry epoch loop (no instrumentation sites).

    This is a verbatim copy of ``SimulationEngine._measure_loop`` with
    every telemetry branch deleted — the floor the <5% criterion is
    measured against. It must stay semantically identical; the check
    below asserts both variants produce the same batch accounting.
    """

    def _measure_loop(
        self, queue, state, tracker, processes, trace,
        warmup_end, horizon, sampled, workload,
        access_rng, density_time, density_access, max_votes_time,
        counters,
    ) -> float:
        now = 0.0
        while now < horizon:
            epoch_end = min(queue.peek_time(), horizon) if queue else horizon
            if now < warmup_end < epoch_end:
                epoch_end = warmup_end
            duration = epoch_end - now
            measuring = now >= warmup_end

            if duration > 0 and measuring:
                vote_totals = tracker.vote_totals
                read_mask, write_mask = self.protocol.grant_masks(tracker)
                active = (
                    workload.at(now - warmup_end)
                    if hasattr(workload, "at")
                    else workload
                )
                if sampled:
                    reads, writes = active.sample_epoch(duration, access_rng)
                else:
                    reads, writes = active.expected_epoch(duration)
                counters.reads_submitted += float(reads.sum())
                counters.writes_submitted += float(writes.sum())
                counters.reads_granted += float(reads[read_mask].sum())
                counters.writes_granted += float(writes[write_mask].sum())
                if read_mask.any():
                    counters.surv_read_time += duration
                if write_mask.any():
                    counters.surv_write_time += duration
                density_time.observe_all(vote_totals, weight=duration)
                density_access.observe_counts(vote_totals, reads + writes)
                max_votes_time[int(vote_totals.max()) if vote_totals.size else 0] += duration
                epoch_hook = getattr(self.protocol, "record_epoch", None)
                if epoch_hook is not None:
                    epoch_hook(tracker, duration, reads=reads, writes=writes)
                counters.n_epochs += 1

            now = epoch_end
            if now >= horizon:
                break
            while queue and queue.peek_time() <= now:
                event = queue.pop()
                self._apply(event, state, processes, queue)
                trace.record(event)
                counters.n_events += 1
            self.protocol.on_network_change(tracker)
            if self.change_observer is not None:
                self.change_observer(now, tracker, self.protocol)
        return now


def build_config(n_sites: int, accesses: float, seed: int) -> SimulationConfig:
    return SimulationConfig.paper_like(
        ring(n_sites),
        alpha=0.5,
        warmup_accesses=0.0,
        accesses_per_batch=accesses,
        n_batches=1,
        seed=seed,
    )


def time_batches(engine: SimulationEngine, n_batches: int) -> float:
    start = perf_counter()
    for i in range(n_batches):
        engine.run_batch(i)
    return perf_counter() - start


def time_enumeration(sites: int, telemetry=None):
    """Time one cache-bypassed enumeration sweep; return (seconds, matrix)."""
    from repro.analytic import cache as density_cache
    from repro.analytic.enumeration import enumerate_density_matrix
    from repro.telemetry.recorder import use
    from repro.topology.generators import ring

    topology = ring(sites)
    with density_cache.disabled():
        if telemetry is None:
            start = perf_counter()
            matrix = enumerate_density_matrix(topology, 0.96, 0.96)
            return perf_counter() - start, matrix
        with use(telemetry):
            start = perf_counter()
            matrix = enumerate_density_matrix(topology, 0.96, 0.96)
            return perf_counter() - start, matrix


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=1.05,
                        help="max allowed instrumented/baseline ratio "
                        "with the recorder disabled")
    parser.add_argument("--tracing-threshold", type=float, default=1.10,
                        help="max allowed live/null ratio on the "
                        "phase-instrumented enumeration kernel")
    parser.add_argument("--enum-sites", type=int, default=10,
                        help="ring size for the kernel tracing gate "
                        "(2^(2n) states)")
    parser.add_argument("--repeats", type=int, default=7,
                        help="interleaved timing rounds (min is compared)")
    parser.add_argument("--sites", type=int, default=15)
    parser.add_argument("--accesses", type=float, default=40_000.0,
                        help="access volume per batch (sets batch length)")
    parser.add_argument("--batches", type=int, default=4,
                        help="batches per timing round")
    args = parser.parse_args(argv)

    import numpy as np

    from repro.telemetry.recorder import Telemetry

    cfg = build_config(args.sites, args.accesses, seed=17)
    protocol = MajorityConsensusProtocol(cfg.topology.total_votes)
    instrumented = SimulationEngine(cfg, protocol)
    baseline = BaselineEngine(cfg, protocol)

    assert not instrumented.telemetry.enabled, (
        "a telemetry recorder is installed; this check times the "
        "disabled path only"
    )

    # Sanity: the baseline copy must still compute the same physics.
    a = instrumented.run_batch(0)
    b = baseline.run_batch(0)
    for field in ("reads_submitted", "reads_granted", "writes_submitted",
                  "writes_granted", "n_epochs", "n_events"):
        if getattr(a, field) != getattr(b, field):
            print(f"FAIL: baseline loop diverged on {field}: "
                  f"{getattr(a, field)} != {getattr(b, field)}")
            return 2

    # Warm-up round so allocator/caches settle before timing.
    time_batches(instrumented, 1)
    time_batches(baseline, 1)

    inst_times, base_times = [], []
    for _ in range(args.repeats):
        inst_times.append(time_batches(instrumented, args.batches))
        base_times.append(time_batches(baseline, args.batches))

    inst_best = min(inst_times)
    base_best = min(base_times)
    ratio = inst_best / base_best
    print(f"baseline (uninstrumented loop): {base_best:.4f}s "
          f"for {args.batches} batches")
    print(f"instrumented, recorder disabled: {inst_best:.4f}s "
          f"({(ratio - 1.0) * 100.0:+.2f}%, threshold "
          f"{(args.threshold - 1.0) * 100.0:.0f}%)")

    # Tracing-enabled gate: the phase-instrumented enumeration kernel,
    # null recorder vs live, interleaved, minima compared.
    live = Telemetry()
    time_enumeration(args.enum_sites)  # warm-up
    time_enumeration(args.enum_sites, live)
    null_times, live_times = [], []
    null_matrix = live_matrix = None
    for _ in range(args.repeats):
        seconds, null_matrix = time_enumeration(args.enum_sites)
        null_times.append(seconds)
        seconds, live_matrix = time_enumeration(args.enum_sites, live)
        live_times.append(seconds)
    if not np.array_equal(null_matrix, live_matrix):
        print("FAIL: tracing changed the enumeration kernel's output")
        return 2
    traced_ratio = min(live_times) / min(null_times)
    print(f"enumeration kernel, recorder off: {min(null_times):.4f}s")
    print(f"enumeration kernel, recorder on:  {min(live_times):.4f}s "
          f"({(traced_ratio - 1.0) * 100.0:+.2f}%, threshold "
          f"{(args.tracing_threshold - 1.0) * 100.0:.0f}%)")

    failed = False
    if ratio >= args.threshold:
        print("FAIL: disabled-telemetry overhead exceeds the budget")
        failed = True
    if traced_ratio >= args.tracing_threshold:
        print("FAIL: live-tracing overhead exceeds the budget")
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
