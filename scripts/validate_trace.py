#!/usr/bin/env python
"""Validate a ``repro profile`` Chrome trace file (CI profile-smoke gate).

Usage:

    python scripts/validate_trace.py profile.trace.json [more.trace.json ...]

Checks, per file:

- the file parses as JSON and has a non-empty ``traceEvents`` list;
- every span event is a complete (``"X"``) event with a name, numeric
  non-negative ``ts``/``dur``, and integer ``args.span_id``;
- span ids are unique;
- every non-null ``args.parent_id`` present in the file on the *same*
  ``tid`` lane nests: the child's ``[ts, ts+dur]`` interval lies within
  the parent's (small float tolerance). A child on a different lane is
  a declared clock-domain boundary — a subtree merged from a pool
  worker, timed against that worker's clock epoch — and its timestamps
  are not comparable to the parent's;
- per ``tid`` lane, events are sorted by timestamp (monotone ``ts``);
- each lane has a ``thread_name`` metadata event.

Importable as :func:`validate_trace`, which returns a list of problem
strings (empty = valid), so the test suite exercises the same logic the
CI job runs.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List

#: Slack for float round-trips through microsecond timestamps.
_EPS_US = 0.5


def validate_trace(path) -> List[str]:
    """Return every problem found in the Chrome trace at ``path``."""
    path = Path(path)
    problems: List[str] = []
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        return [f"{path}: file not found"]
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON: {exc}"]

    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"{path}: traceEvents missing or empty"]

    spans: Dict[int, dict] = {}
    named_lanes = set()
    for i, event in enumerate(events):
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") == "thread_name":
                named_lanes.add(event.get("tid"))
            continue
        if phase != "X":
            problems.append(f"{path}: event {i} has phase {phase!r}, "
                            "expected 'X' or 'M'")
            continue
        if not event.get("name"):
            problems.append(f"{path}: event {i} has no name")
        ts, dur = event.get("ts"), event.get("dur")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{path}: event {i} has bad ts {ts!r}")
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(f"{path}: event {i} has bad dur {dur!r}")
        span_id = (event.get("args") or {}).get("span_id")
        if not isinstance(span_id, int):
            problems.append(f"{path}: event {i} has no integer args.span_id")
            continue
        if span_id in spans:
            problems.append(f"{path}: duplicate span_id {span_id}")
            continue
        spans[span_id] = event

    if not spans:
        problems.append(f"{path}: no span events")
        return problems

    # Parent/child nesting: a child sharing its parent's lane must sit
    # inside the parent's interval. A lane break marks a clock-domain
    # boundary (worker-merged subtree) — intervals across domains are
    # not comparable, so those children are exempt.
    for span_id, event in sorted(spans.items()):
        parent_id = (event.get("args") or {}).get("parent_id")
        parent = spans.get(parent_id) if parent_id is not None else None
        if parent is None:
            continue
        if event.get("tid") != parent.get("tid"):
            continue
        if (event["ts"] < parent["ts"] - _EPS_US
                or event["ts"] + event["dur"]
                > parent["ts"] + parent["dur"] + _EPS_US):
            problems.append(
                f"{path}: span {span_id} "
                f"[{event['ts']:.1f}, {event['ts'] + event['dur']:.1f}] "
                f"escapes parent {parent_id} "
                f"[{parent['ts']:.1f}, {parent['ts'] + parent['dur']:.1f}]"
            )

    # Monotone timestamps per lane, and every lane named.
    lanes: Dict[object, List[float]] = {}
    for event in events:
        if event.get("ph") == "X":
            lanes.setdefault(event.get("tid"), []).append(event["ts"])
    for tid, stamps in sorted(lanes.items(), key=lambda kv: str(kv[0])):
        if any(b < a for a, b in zip(stamps, stamps[1:])):
            problems.append(f"{path}: tid {tid} timestamps not monotone")
        if tid not in named_lanes:
            problems.append(f"{path}: tid {tid} has no thread_name metadata")
    return problems


def main(argv=None) -> int:
    paths = (argv if argv is not None else sys.argv[1:])
    if not paths:
        print("usage: validate_trace.py TRACE.json [TRACE.json ...]")
        return 2
    failed = False
    for path in paths:
        problems = validate_trace(path)
        if problems:
            failed = True
            for problem in problems:
                print(f"FAIL: {problem}")
        else:
            spans = sum(
                1 for e in json.loads(Path(path).read_text())["traceEvents"]
                if e.get("ph") == "X"
            )
            print(f"OK: {path} ({spans} spans)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
