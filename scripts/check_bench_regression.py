#!/usr/bin/env python
"""Gate benchmark wall-clock against the committed BENCH_*.json baselines.

Usage (from the repo root, after re-running the benchmarks so fresh
sidecars exist):

    python scripts/check_bench_regression.py \
        --baseline-dir baselines/ --current-dir benchmarks/ \
        benchmarks/BENCH_optimizers.json \
        benchmarks/BENCH_parallel_scaling.json

For each named baseline file the script finds the freshly generated
sidecar of the same name in ``--current-dir`` and compares per-test mean
wall-clock. A test whose current mean exceeds the baseline mean by more
than ``--threshold`` (default 25%) fails the gate.

Robustness rules for shared CI runners:

- Non-timing entries (no ``mean`` field, e.g. the scaling summary) are
  compared only for *presence*, never timing.
- A baseline recorded on a machine with a different core count than the
  current runner skips fan-out-labelled tests (``cores`` field in the
  summary entry) — a 1-core baseline says nothing about 4-core scaling
  and vice versa.
- Improvements are reported but never fail the gate.

When both sidecars carry per-phase wall-clock tables (stamped by
``benchmarks/conftest.py``), a regression's failure message additionally
names the phase(s) whose growth dominates the slowdown — the explainer is
:func:`explain_regression`, importable for testing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Tests whose timing depends on physical core count, gated only when the
#: baseline and current runs saw the same number of cores.
CORE_SENSITIVE = ("4workers", "8workers")


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"missing benchmark sidecar: {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"unparseable benchmark sidecar {path}: {exc}")


def _timing_entries(payload: dict) -> dict:
    return {
        entry["test"]: entry
        for entry in payload.get("results", [])
        if "mean" in entry
    }


def _cores(payload: dict):
    for entry in payload.get("results", []):
        if "cores" in entry:
            return entry["cores"]
    return None


def explain_regression(base: dict, curr: dict, min_share: float = 0.15) -> str:
    """Name the phase(s) whose growth accounts for a timing regression.

    Both entries carry the cumulative per-phase wall-clock table stamped
    by ``benchmarks/conftest.py``. The explanation ranks phases by
    absolute wall-clock growth and keeps those contributing at least
    ``min_share`` of the total growth (always at least the top one), so
    a failure message reads "dominated by enum.label" instead of leaving
    the reader to re-profile. Returns "" when either side lacks a phase
    table or nothing grew.
    """
    base_phases = {p["name"]: float(p["wall"]) for p in base.get("phases", [])}
    curr_phases = {p["name"]: float(p["wall"]) for p in curr.get("phases", [])}
    if not base_phases or not curr_phases:
        return ""
    growth = []
    for name in sorted(set(base_phases) | set(curr_phases)):
        delta = curr_phases.get(name, 0.0) - base_phases.get(name, 0.0)
        if delta > 0:
            growth.append((delta, name))
    total = sum(delta for delta, _ in growth)
    if total <= 0:
        return ""
    growth.sort(reverse=True)
    culprits = []
    for delta, name in growth:
        share = delta / total
        if culprits and share < min_share:
            break
        culprits.append(
            f"{name} ({base_phases.get(name, 0.0):.4f}s -> "
            f"{curr_phases.get(name, 0.0):.4f}s, {share:.0%} of growth)"
        )
    return "phase growth dominated by " + ", ".join(culprits)


def find_duplicate_sidecars(directory: Path) -> list:
    """Sidecars violating the one-``BENCH_<name>.json``-per-bench scheme.

    The harness once keyed sidecars by raw module stem, emitting
    double-prefixed ``BENCH_bench_serving.json`` next to the committed
    ``BENCH_serving.json`` baseline — and the gate silently compared the
    stale baseline against itself. Rejected here forever: any
    double-prefixed sidecar, and any two sidecars that normalize to the
    same bench name.
    """
    offenders = []
    seen: dict = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        if name.startswith("bench_"):
            offenders.append(
                f"{path.name}: double-prefixed sidecar (the bench is named "
                f"{name[len('bench_'):]!r}; fix the harness keying)"
            )
            name = name[len("bench_"):]
        if name in seen:
            offenders.append(
                f"{path.name}: duplicates {seen[name]} for bench {name!r}"
            )
        else:
            seen[name] = path.name
    return offenders


def check_file(baseline_path: Path, current_dir: Path, threshold: float) -> list:
    baseline = _load(baseline_path)
    current = _load(current_dir / baseline_path.name)
    base_entries = _timing_entries(baseline)
    curr_entries = _timing_entries(current)
    same_cores = _cores(baseline) == _cores(current)
    failures = []
    for test, base in sorted(base_entries.items()):
        curr = curr_entries.get(test)
        if curr is None:
            failures.append(f"{baseline_path.name}: {test} missing from current run")
            continue
        if not same_cores and any(tag in test for tag in CORE_SENSITIVE):
            print(f"  SKIP {baseline_path.name}:{test} (core counts differ)")
            continue
        ratio = curr["mean"] / base["mean"] if base["mean"] > 0 else float("inf")
        verdict = "OK"
        if ratio > 1.0 + threshold:
            verdict = "REGRESSION"
            message = (
                f"{baseline_path.name}: {test} mean {curr['mean']:.4f}s vs "
                f"baseline {base['mean']:.4f}s ({ratio:.2f}x, "
                f"budget {1.0 + threshold:.2f}x)"
            )
            explanation = explain_regression(base, curr)
            if explanation:
                message += f"; {explanation}"
            failures.append(message)
        print(
            f"  {verdict:10s} {baseline_path.name}:{test} "
            f"{base['mean'] * 1e3:8.1f}ms -> {curr['mean'] * 1e3:8.1f}ms "
            f"({ratio:.2f}x)"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baselines", nargs="+", type=Path,
                        help="committed BENCH_*.json files to gate against")
    parser.add_argument("--current-dir", type=Path, default=Path("benchmarks"),
                        help="directory holding the freshly generated sidecars")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional mean regression (0.25 = +25%%)")
    args = parser.parse_args()

    failures = list(find_duplicate_sidecars(args.current_dir))
    for baseline_path in args.baselines:
        print(f"checking {baseline_path} against {args.current_dir}/...")
        failures.extend(check_file(baseline_path, args.current_dir,
                                   args.threshold))
    if failures:
        print("\nFAIL: benchmark regression gate")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: all benchmark means within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
