#!/usr/bin/env python
"""Marker hygiene gate: slow tests must say so.

Runs the test suite under an embedded pytest plugin that records each test's
total duration (setup + call + teardown) and the markers it carries, then
fails if any test exceeding the threshold lacks the ``slow`` (or
``chaos``) marker. Keeping the marker truthful is what lets developers
run ``pytest -m "not slow"`` for a fast inner loop and lets CI shard by
cost.

Usage:
    PYTHONPATH=src python scripts/check_marker_hygiene.py [pytest args...]

Options (consumed before pytest sees the rest):
    --threshold SECONDS   duration above which a marker is required
                          (default 5.0)
    --list                also print the slowest properly-marked tests

Exit codes: 0 = hygiene holds, 1 = unmarked slow tests found,
2 = the underlying pytest run itself failed.
"""

from __future__ import annotations

import argparse
import sys

import pytest

#: Markers that legitimately declare a test as expensive.
COST_MARKERS = ("slow", "chaos")

DEFAULT_THRESHOLD = 5.0


class MarkerHygienePlugin:
    """Records per-test durations and markers during a normal run."""

    def __init__(self) -> None:
        self.markers: dict[str, set] = {}
        self.durations: dict[str, float] = {}

    def pytest_collection_modifyitems(self, items) -> None:
        for item in items:
            self.markers[item.nodeid] = {m.name for m in item.iter_markers()}

    def pytest_runtest_logreport(self, report) -> None:
        # Sum setup + call + teardown: a slow fixture is as real a cost
        # as a slow test body.
        self.durations[report.nodeid] = (
            self.durations.get(report.nodeid, 0.0) + report.duration
        )

    # ------------------------------------------------------------------
    def offenders(self, threshold: float):
        out = []
        for nodeid, duration in self.durations.items():
            if duration <= threshold:
                continue
            marks = self.markers.get(nodeid, set())
            if not marks & set(COST_MARKERS):
                out.append((duration, nodeid))
        return sorted(out, reverse=True)

    def marked_slowest(self, top: int = 10):
        marked = [
            (duration, nodeid)
            for nodeid, duration in self.durations.items()
            if self.markers.get(nodeid, set()) & set(COST_MARKERS)
        ]
        return sorted(marked, reverse=True)[:top]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="seconds above which a cost marker is required")
    parser.add_argument("--list", action="store_true",
                        help="also list the slowest properly-marked tests")
    args, pytest_args = parser.parse_known_args(argv)

    plugin = MarkerHygienePlugin()
    code = pytest.main(["-q", *pytest_args], plugins=[plugin])
    if code != 0:
        print(f"marker hygiene: underlying pytest run failed (exit {code})",
              file=sys.stderr)
        return 2

    offenders = plugin.offenders(args.threshold)
    print(f"marker hygiene: {len(plugin.durations)} test reports, "
          f"threshold {args.threshold:.1f}s, markers {COST_MARKERS}")
    if args.list:
        for duration, nodeid in plugin.marked_slowest():
            print(f"  [marked] {duration:6.2f}s {nodeid}")
    if offenders:
        print(f"FAIL: {len(offenders)} test(s) exceed {args.threshold:.1f}s "
              "without a cost marker:", file=sys.stderr)
        for duration, nodeid in offenders:
            print(f"  {duration:6.2f}s {nodeid}", file=sys.stderr)
        print("mark them with @pytest.mark.slow (or chaos) so "
              '`pytest -m "not slow"` stays fast', file=sys.stderr)
        return 1
    print("marker hygiene: OK — every test above the threshold is marked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
