"""ABL-OPT: optimizer strategies — agreement and cost.

Section 4.1 suggests golden-section search and Brent's method as cheaper
alternatives to exhaustive search. On the paper's own evidence the
optimum is almost always at an endpoint, so the interesting questions
are (a) do the cheap methods ever lose availability, and (b) what do
they cost in availability-function evaluations — the right unit when
every evaluation rides on a fresh on-line density snapshot.
"""

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from conftest import timed
from repro.analytic.complete import complete_density
from repro.analytic.ring import ring_density
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import optimal_read_quorum

CASES = [
    ("ring-101", ring_density(101, 0.96, 0.96)),
    ("ring-1001", ring_density(1001, 0.96, 0.96)),
    ("complete-101", complete_density(101, 0.96, 0.96)),
    ("ring-101-flaky", ring_density(101, 0.9, 0.7)),
]
ALPHAS = (0.0, 0.25, 0.5, 0.75, 1.0)
METHODS = ("exhaustive", "endpoints", "golden", "brent")


def test_optimizer_ablation(benchmark, report):
    def sweep():
        table = {}
        for name, density in CASES:
            model = AvailabilityModel(density, density)
            for method in METHODS:
                evals = 0
                loss = 0.0
                t0 = time.perf_counter()
                for alpha in ALPHAS:
                    res = optimal_read_quorum(model, alpha, method=method)
                    evals += res.evaluations
                    if method != "exhaustive":
                        ref = optimal_read_quorum(model, alpha, method="exhaustive")
                        loss = max(loss, ref.availability - res.availability)
                elapsed = time.perf_counter() - t0
                table[(name, method)] = (evals, loss, elapsed)
        return table

    table = timed(benchmark, sweep)

    lines = ["=== ABL-OPT: optimizer agreement and cost ===",
             "  case              method       evals   max availability loss     time"]
    for (name, method), (evals, loss, elapsed) in table.items():
        lines.append(
            f"  {name:<16s}  {method:<10s}  {evals:6d}   {loss:21.6f}  {elapsed*1e3:6.1f}ms"
        )
    report("\n".join(lines))

    for (name, method), (evals, loss, _) in table.items():
        if method in ("golden", "brent"):
            # Cheap methods must not lose measurable availability on these
            # paper-shaped (unimodal) densities.
            assert loss < 1e-9, (name, method, loss)
        if method == "golden" and "1001" in name:
            exhaustive_evals = table[(name, "exhaustive")][0]
            assert evals < exhaustive_evals / 5
