"""MC-VAR: variance-reduced Monte-Carlo density estimators (DESIGN.md §13).

At the paper's high-reliability operating points almost every sampled
network state is "everything up", so plain Monte Carlo spends its whole
budget re-measuring the known stratum and the rare failure states that
actually move the density estimate are visited a handful of times. The
stratified estimator conditions on the failure count (exact
Poisson-Binomial stratum weights, the all-up stratum evaluated
deterministically); the importance-sampling estimator tilts failures up
under a defensive mixture.

The figure of merit is *samples to a target CI half-width*: for an
estimator with per-seed spread ``std`` at ``n`` samples, hitting a
half-width ``h`` takes ``n * (std / h)^2`` samples, so the ratio of two
estimators' sample requirements is ``(std_plain / std)^2`` — the target
cancels. The gate asserts the acceptance floor from the issue: at
``p = 0.999`` both variance-reduced estimators need at least **3x**
fewer samples than plain MC for the same half-width (measured ratios
are orders of magnitude larger).
"""

import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from conftest import _BENCH_JSON, timed
from repro.analytic.montecarlo import montecarlo_density_matrix
from repro.analytic.variance import (
    importance_density_matrix,
    stratified_density_matrix,
)
from repro.topology.generators import ring

N_SITES = 9
N_SAMPLES = 4_096
SEEDS = range(10)
RELIABILITIES = (0.9, 0.99, 0.999)

#: The scalar each estimator is judged on: the pooled probability that a
#: site sits in a component holding a vote majority (reads with a
#: majority quorum succeed exactly then). Linear in the density matrix,
#: so estimator unbiasedness carries over.
MAJORITY = N_SITES // 2 + 1

ESTIMATORS = {
    "plain": lambda p, seed: montecarlo_density_matrix(
        ring(N_SITES), p, p, n_samples=N_SAMPLES, seed=seed),
    "stratified": lambda p, seed: stratified_density_matrix(
        ring(N_SITES), p, p, n_samples=N_SAMPLES, seed=seed),
    "neyman": lambda p, seed: stratified_density_matrix(
        ring(N_SITES), p, p, n_samples=N_SAMPLES, seed=seed,
        allocation="neyman"),
    "importance": lambda p, seed: importance_density_matrix(
        ring(N_SITES), p, p, n_samples=N_SAMPLES, seed=seed),
}

_STATE = {}


def _majority_mass(matrix):
    return float(np.mean(np.sum(matrix[:, MAJORITY:], axis=1)))


def _spread(name, p):
    """Across-seed sample stddev of the majority-mass estimate."""
    values = [_majority_mass(ESTIMATORS[name](p, seed)) for seed in SEEDS]
    return statistics.stdev(values)


def test_plain_mc(benchmark, report):
    matrix = timed(benchmark, lambda: ESTIMATORS["plain"](0.999, 0))
    report(f"=== MC-VAR: plain MC, p=0.999, n={N_SAMPLES} ===\n"
           f"  majority mass {_majority_mass(matrix):.6f}, "
           f"mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_stratified_mc(benchmark, report):
    matrix = timed(benchmark, lambda: ESTIMATORS["stratified"](0.999, 0))
    report(f"=== MC-VAR: stratified MC, p=0.999, n={N_SAMPLES} ===\n"
           f"  majority mass {_majority_mass(matrix):.6f}, "
           f"mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_importance_mc(benchmark, report):
    matrix = timed(benchmark, lambda: ESTIMATORS["importance"](0.999, 0))
    report(f"=== MC-VAR: importance MC, p=0.999, n={N_SAMPLES} ===\n"
           f"  majority mass {_majority_mass(matrix):.6f}, "
           f"mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_variance_summary(report):
    rows = {}
    for p in RELIABILITIES:
        spreads = {name: _spread(name, p) for name in ESTIMATORS}
        plain = spreads["plain"]
        rows[str(p)] = {
            name: {
                "stddev": spread,
                # samples needed relative to plain MC for the same CI
                # half-width: (std_plain / std)^2, target cancels.
                "sample_efficiency_vs_plain": (
                    round((plain / spread) ** 2, 2)
                    if spread > 0 else float(len(SEEDS))
                ),
            }
            for name, spread in spreads.items()
        }
    _STATE["rows"] = rows
    _BENCH_JSON.setdefault("mc_variance", []).append({
        "test": "variance_summary",
        "n_samples": N_SAMPLES,
        "n_seeds": len(SEEDS),
        "reliabilities": rows,
    })
    lines = ["=== MC-VAR: summary (samples-to-target-CI vs plain MC) ==="]
    for p, row in rows.items():
        ratios = ", ".join(
            f"{name} {cell['sample_efficiency_vs_plain']:.1f}x"
            for name, cell in row.items() if name != "plain")
        lines.append(f"  p={p:<6}: {ratios}")
    report("\n".join(lines))
    # Acceptance floor (3x fewer samples at p = 0.999); stratification
    # and defensive-mixture IS both clear it by orders of magnitude.
    for name in ("stratified", "neyman", "importance"):
        ratio = rows["0.999"][name]["sample_efficiency_vs_plain"]
        assert ratio >= 3.0, (
            f"{name} only {ratio:.2f}x more sample-efficient than plain "
            f"MC at p=0.999")
