"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports (run with ``-s`` to see
them; they are also appended to ``benchmarks/results.txt``). Timings are
collected by pytest-benchmark with a single round — these are
simulation-scale workloads, not microbenchmarks.

Scale is selected with the ``REPRO_BENCH_SCALE`` environment variable:

- ``bench`` (default): 101-site networks, 10 000 accesses x 2 batches —
  the whole suite finishes in a few minutes;
- ``small``: 30 000 accesses x 4 batches;
- ``paper``: the paper's full 100 000 + 1 000 000 x 5 configuration
  (hours, as on the original DEC Station 5000).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.paper import (
    PAPER_SCALE,
    SMALL_SCALE,
    ExperimentScale,
)

#: Default benchmark scale: full-size networks, laptop-size access volume.
#: Starts each batch from the exact stationary network state, so the short
#: warm-up carries no transient bias (the paper instead burns 100 000
#: accesses from an all-up reset; see simulation/processes.py).
BENCH_SCALE = ExperimentScale(
    name="bench",
    n_sites=101,
    warmup_accesses=500.0,
    accesses_per_batch=12_000.0,
    n_batches=2,
    initial_state="stationary",
)

_SCALES = {"bench": BENCH_SCALE, "small": SMALL_SCALE, "paper": PAPER_SCALE}

RESULTS_PATH = Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "bench")
    try:
        return _SCALES[name]
    except KeyError:
        raise RuntimeError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        ) from None


@pytest.fixture(scope="session")
def report():
    """Print a block and persist it to benchmarks/results.txt."""
    handle = RESULTS_PATH.open("a")

    def emit(text: str) -> None:
        print()
        print(text)
        handle.write(text + "\n\n")
        handle.flush()

    yield emit
    handle.close()


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
