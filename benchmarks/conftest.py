"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports (run with ``-s`` to see
them; they are also appended to ``benchmarks/results.txt``). Timings are
collected by pytest-benchmark with one warm-up round plus ``BENCH_ROUNDS``
(default 5) timed rounds, so the mean/stddev/quantile fields in the
``BENCH_*.json`` sidecars carry real content for regression gating.

Scale is selected with the ``REPRO_BENCH_SCALE`` environment variable:

- ``bench`` (default): 101-site networks, 10 000 accesses x 2 batches —
  the whole suite finishes in a few minutes;
- ``small``: 30 000 accesses x 4 batches;
- ``paper``: the paper's full 100 000 + 1 000 000 x 5 configuration
  (hours, as on the original DEC Station 5000).
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path
from typing import Dict, List

import pytest

from repro.experiments.paper import (
    PAPER_SCALE,
    SMALL_SCALE,
    ExperimentScale,
)
from repro.telemetry.metrics import Histogram

#: Default benchmark scale: full-size networks, laptop-size access volume.
#: Starts each batch from the exact stationary network state, so the short
#: warm-up carries no transient bias (the paper instead burns 100 000
#: accesses from an all-up reset; see simulation/processes.py).
BENCH_SCALE = ExperimentScale(
    name="bench",
    n_sites=101,
    warmup_accesses=500.0,
    accesses_per_batch=12_000.0,
    n_batches=2,
    initial_state="stationary",
)

_SCALES = {"bench": BENCH_SCALE, "small": SMALL_SCALE, "paper": PAPER_SCALE}

RESULTS_PATH = Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "bench")
    try:
        return _SCALES[name]
    except KeyError:
        raise RuntimeError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        ) from None


@pytest.fixture(scope="session")
def report():
    """Print a block and persist it to benchmarks/results.txt."""
    handle = RESULTS_PATH.open("a")

    def emit(text: str) -> None:
        print()
        print(text)
        handle.write(text + "\n\n")
        handle.flush()

    yield emit
    handle.close()


#: Timed rounds per benchmark (after one untimed warm-up). Overridable
#: for quick local iterations with REPRO_BENCH_ROUNDS=1.
BENCH_ROUNDS = max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "5")))


def timed(benchmark, fn):
    """Run ``fn`` under pytest-benchmark: 1 warm-up + ``BENCH_ROUNDS`` rounds.

    A single-shot measurement records ``stddev: 0`` and makes the
    committed ``BENCH_*.json`` baselines meaningless for regression
    gating; five rounds give the mean/stddev/quantile fields real
    content while keeping simulation-scale workloads tractable.
    """
    return benchmark.pedantic(fn, rounds=BENCH_ROUNDS, iterations=1,
                              warmup_rounds=1)


# ----------------------------------------------------------------------
# Machine-readable results: one BENCH_<name>.json per bench module
# ----------------------------------------------------------------------

#: Timing entries collected this session, keyed by normalized bench name.
_BENCH_JSON: Dict[str, List[dict]] = {}


def _bench_name(stem: str) -> str:
    """Normalize a bench module stem to its sidecar name.

    ``bench_serving.py`` -> ``serving`` -> ``BENCH_serving.json``. Keying
    by the raw stem used to produce double-prefixed
    ``BENCH_bench_serving.json`` files that silently diverged from the
    committed ``BENCH_serving.json`` baselines the CI gate loads;
    ``check_bench_regression.py`` now rejects the double-prefixed form.
    """
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


@pytest.fixture(autouse=True)
def _bench_json_recorder(request):
    """Collect every pytest-benchmark timing into the JSON sidecar.

    Raw round timings feed a telemetry :class:`Histogram`, whose moment
    accumulators supply the reported mean/stddev — the same estimator the
    ``--telemetry`` path uses for span timings, so the two agree.

    Each benchmark also runs under a live recorder so the instrumented
    hot paths attribute their time to named phases; the cumulative phase
    table (warm-up round included) is stamped into the entry. Baselines
    and CI runs are therefore measured identically, and
    ``check_bench_regression.py`` can name the phase a regression lives
    in rather than just the test.
    """
    benchmark = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    if benchmark is None:
        yield
        return
    from repro.telemetry.recorder import Telemetry, use

    telemetry = Telemetry()
    with use(telemetry):
        yield
    meta = getattr(benchmark, "stats", None)
    stats = getattr(meta, "stats", None)
    data = list(getattr(stats, "data", None) or [])
    if not data:
        return
    hist = Histogram("bench_seconds", buckets=(1e-4, 1e-2, 0.1, 1.0, 10.0, 60.0))
    for value in data:
        hist.observe(value)
    series = hist.series()[()]
    entry = {
        "test": request.node.name,
        "mean": series.mean(),
        "stddev": series.stddev(),
        "min": series.min,
        "max": series.max,
        "iterations": series.count,
        "quantiles": {
            str(q): est.value() for q, est in sorted(series.quantiles.items())
        },
        "phases": telemetry.phases.snapshot(),
    }
    _BENCH_JSON.setdefault(_bench_name(request.node.path.stem), []).append(entry)


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write BENCH_<module>.json for every module that produced timings."""
    if not _BENCH_JSON:
        return
    sha = _git_sha()
    stamp = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    out_dir = Path(__file__).parent
    for name in sorted(_BENCH_JSON):
        payload = {
            "schema": 1,
            "bench": name,
            "git_sha": sha,
            "timestamp": stamp,
            "scale": scale,
            "results": _BENCH_JSON[name],
        }
        path = out_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
