"""ABL-EST: on-line estimated densities vs analytic ground truth.

The paper argues (section 4.2) that on-line estimation "may even be
preferable to exact calculation". This ablation quantifies the quality
of the estimate as a function of observation volume: how quickly does
the optimizer fed by the on-line estimate start choosing quorums whose
*true* availability matches the oracle's?
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from conftest import timed
from repro.analytic.ring import ring_density
from repro.protocols.majority import MajorityConsensusProtocol
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import optimal_read_quorum
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate_batch
from repro.topology.generators import ring

N = 31
ALPHAS = (0.25, 0.5, 0.75, 0.9)


def test_estimator_ablation(benchmark, report, scale):
    truth = ring_density(N, 0.96, 0.96)
    oracle_model = AvailabilityModel(truth, truth)

    budgets = (1_000.0, 5_000.0, 25_000.0)

    def run_all():
        rows = []
        for budget in budgets:
            cfg = SimulationConfig.paper_like(
                ring(N),
                alpha=0.5,
                warmup_accesses=200.0,
                accesses_per_batch=budget,
                n_batches=1,
                seed=17,
            )
            batch = simulate_batch(cfg, MajorityConsensusProtocol(N))
            est_model = AvailabilityModel.from_density_matrix(
                batch.density_time.density_matrix()
            )
            for alpha in ALPHAS:
                online = optimal_read_quorum(est_model, alpha)
                oracle = optimal_read_quorum(oracle_model, alpha)
                # Judge the on-line choice by its TRUE availability.
                regret = oracle.availability - float(
                    oracle_model.availability(alpha, online.read_quorum)
                )
                rows.append((budget, alpha, online.read_quorum, oracle.read_quorum, regret))
        return rows

    rows = timed(benchmark, run_all)

    lines = ["=== ABL-EST: on-line estimate quality vs observation budget ===",
             "  accesses   alpha   q_r(online)   q_r(oracle)   true regret"]
    for budget, alpha, q_on, q_or, regret in rows:
        lines.append(
            f"  {budget:8.0f}   {alpha:5.2f}   {q_on:11d}   {q_or:11d}   {regret:11.5f}"
        )
    report("\n".join(lines))

    # With the largest budget the on-line choice must be near-oracle.
    final = [r for r in rows if r[0] == budgets[-1]]
    assert all(regret < 0.02 for *_, regret in final)
    # Regret must not grow with budget (averaged over alphas).
    by_budget = {b: np.mean([r[4] for r in rows if r[0] == b]) for b in budgets}
    assert by_budget[budgets[-1]] <= by_budget[budgets[0]] + 1e-9
