"""FIG4: availability vs read quorum on Topology 2 (ring + 2 chords).

This is the figure the paper's section 5.4 worked example reads numbers
from: at ``alpha = 0.75`` the unconstrained optimum is ~72 % at
``q_r = 1`` (where writes almost never succeed). The write-constraint
bench (bench_write_constraint.py) continues the example.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from figure_common import run_figure


def test_fig4_topology2(benchmark, report, scale):
    fig = run_figure(benchmark, report, scale, chords=2, figure_name="Figure 4 (topology 2)")
    series = fig.curve(0.75)
    # Paper: "the optimal availability is 72% and is achieved when q_r=1".
    # (Monte-Carlo noise can tip the near-tie between q_r = 1 and q_r = 2,
    # so we pin the left-edge value and optimum region, not the exact argmax.)
    assert series.argmax_quorum <= 3
    assert float(series.availability[0]) == pytest.approx(0.72, abs=0.02)
    assert series.max_value == pytest.approx(0.72, abs=0.03)
    # ... and the induced write availability there is negligible.
    alpha0 = fig.curve(0.0)
    assert alpha0.availability[0] < 0.05
