"""SHARD: vectorized multi-item engine vs the per-item multidb loop.

The sharded engine's pitch (DESIGN.md §14): one component labelling per
network state shared across all items, per-item quorum decisions via
bincount/gather. The retained reference evaluates the same epochs with
one ``MultiItemDatabase`` protocol object per item, so at 10^4 items the
vectorized path must win by a wide margin *while staying bitwise equal*.

Claims gated here:

- **Speed**: >= 10x over the reference loop at 10^4 items (both engines
  replay the identical epoch sequence, so the ratio is pure accounting
  cost, not workload noise).
- **Equality**: the timed runs' pooled counters, survivability times,
  and density tables are bitwise identical.
- **Fan-out**: a 4-worker pool run matches the serial run bitwise.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from conftest import _BENCH_JSON, timed
from repro.sharding import ItemWorkload, ShardConfig, run_sharded
from repro.topology.generators import ring

N_ITEMS = 10_000
#: Alpha classes tiled over the item space: 10^4 items, 8 optimizer-class
#: signatures — the regime the per-class grouping is built for.
ALPHA_CLASSES = (0.05, 0.2, 0.35, 0.5, 0.6, 0.75, 0.9, 1.0)

_STATE = {}


def _config(n_batches=1, accesses=1_200.0):
    topology = ring(16)
    alphas = np.resize(np.asarray(ALPHA_CLASSES), N_ITEMS)
    workload = ItemWorkload.zipf(
        N_ITEMS, topology.n_sites, alphas, exponent=1.0
    )
    return ShardConfig(
        topology=topology,
        workload=workload,
        mean_time_to_failure=240.0,
        mean_time_to_repair=40.0,
        warmup_accesses=0.0,
        accesses_per_batch=accesses,
        n_batches=n_batches,
        seed=0,
    )


def test_reference_loop(benchmark, report):
    config = _config()
    result = timed(benchmark, lambda: run_sharded(config, engine="reference"))
    _STATE["reference_mean"] = benchmark.stats.stats.mean
    _STATE["reference_result"] = result
    report(f"=== SHARD: per-item reference loop, {N_ITEMS} items ===\n"
           f"  ACC {result.availability:.4f}, "
           f"{result.batches[0].n_epochs} epochs, "
           f"mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_vectorized_engine(benchmark, report):
    config = _config()
    result = timed(benchmark, lambda: run_sharded(config, engine="vectorized"))
    _STATE["vectorized_mean"] = benchmark.stats.stats.mean
    assert result.bitwise_equal(_STATE["reference_result"])
    report(f"=== SHARD: vectorized engine, {N_ITEMS} items ===\n"
           f"  bitwise identical to the reference loop, "
           f"mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_parallel_fanout_bitwise(benchmark, report):
    config = _config(n_batches=4, accesses=600.0)
    serial = run_sharded(config, engine="vectorized")
    stats = {}
    fanned = timed(benchmark, lambda: run_sharded(
        config, engine="vectorized", n_workers=4, transport_stats=stats))
    assert fanned.bitwise_equal(serial)
    _STATE["fanout_transport"] = stats["transport"]
    report(f"=== SHARD: 4-worker fan-out, {N_ITEMS} items x 4 batches ===\n"
           f"  bitwise identical to serial [{stats['transport']}], "
           f"mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_sharded_summary(report):
    speedup = _STATE["reference_mean"] / _STATE["vectorized_mean"]
    _BENCH_JSON.setdefault("sharded", []).append({
        "test": "sharded_summary",
        "n_items": N_ITEMS,
        "alpha_classes": len(ALPHA_CLASSES),
        "reference_mean_s": round(_STATE["reference_mean"], 4),
        "vectorized_mean_s": round(_STATE["vectorized_mean"], 4),
        "speedup": round(speedup, 2),
        "fanout_transport": _STATE["fanout_transport"],
        "bitwise_identical": True,
    })
    report(
        "=== SHARD: summary ===\n"
        f"  items / classes      : {N_ITEMS} / {len(ALPHA_CLASSES)}\n"
        f"  reference loop mean  : {_STATE['reference_mean'] * 1e3:.0f}ms\n"
        f"  vectorized mean      : {_STATE['vectorized_mean'] * 1e3:.0f}ms\n"
        f"  speedup              : {speedup:.1f}x"
    )
    assert speedup >= 10.0, (
        f"vectorized engine only {speedup:.1f}x over the reference loop")
