"""ENUM-COMP: the compiled/vectorized enumeration backends (DESIGN.md §15).

The previous enumeration kernel (PR 4's chunked bit-unpack + scipy
csgraph labelling, now ``backend="reference"``) tops out around 2^20
states. The backend layer added in PR 10 routes ``auto`` to the numba
union-find kernel when the ``[compiled]`` extra is installed and to the
dependency-free collapse-DFS otherwise; both raise the exact-density
ceiling to 2^28 states. Four measurements:

- **2^20 head-to-head** — reference kernel vs the auto backend on
  ring(10); the summary gates the speedup at the >=5x floor from the
  PR's acceptance criteria.
- **2^24 full matrix** — ring(12), gated under 60 s.
- **2^28 showcase** — ring(14), the new ceiling; recorded, not gated
  (the reference backend refuses this size outright).
- **Row-cap sweep** — the vectorized collapse-DFS at 2^20 across row
  caps 2^12..2^18, re-measuring DEFAULT_CHUNK_SIZE for the non-scipy
  labellers; the per-cap means land in the summary JSON.

Every timed callable runs with the density cache disabled, and the
2^20 auto result is checked against the reference matrix (<=1e-12 for
the regrouped vectorized path, bitwise when numba is active).
"""

import sys
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))

from conftest import _BENCH_JSON, timed
from repro.analytic import cache as density_cache
from repro.analytic import compiled
from repro.analytic.enumeration import (
    DEFAULT_CHUNK_SIZE,
    enumerate_density_matrix,
    resolve_backend,
)
from repro.topology.generators import ring

#: ring(10) -> 2^20 states: the largest size the reference loop can
#: stomach inside a benchmark round.
HEAD_TO_HEAD = ring(10)
#: ring(12) -> 2^24 states; ring(14) -> 2^28, the new ceiling.
BIG = ring(12)
CEILING = ring(14)

P, R = 0.9, 0.8

#: Row caps for the satellite-6 DEFAULT_CHUNK_SIZE re-measurement.
ROW_CAPS = (4_096, 8_192, 65_536, 262_144)

_STATE = {}


def _density(topo, **kwargs):
    with density_cache.disabled():
        return enumerate_density_matrix(topo, P, R, **kwargs)


def test_enum_reference_2e20(benchmark, report):
    matrix = timed(benchmark, lambda: _density(HEAD_TO_HEAD, backend="reference"))
    _STATE["ref_mean"] = benchmark.stats.stats.mean
    _STATE["ref_matrix"] = matrix
    report(f"=== ENUM-COMP: reference backend, 2^20 states ===\n"
           f"  mean {benchmark.stats.stats.mean:.3f}s")


def test_enum_auto_2e20(benchmark, report):
    matrix = timed(benchmark, lambda: _density(HEAD_TO_HEAD))
    _STATE["auto_mean"] = benchmark.stats.stats.mean
    backend = resolve_backend(None)
    if backend == "compiled":
        np.testing.assert_array_equal(matrix, _STATE["ref_matrix"])
        agreement = "bitwise identical to reference"
    else:
        delta = float(np.abs(matrix - _STATE["ref_matrix"]).max())
        assert delta <= 1e-12, f"vectorized drifted {delta:g} from reference"
        _STATE["auto_maxdiff"] = delta
        agreement = f"max |delta| vs reference {delta:.2e}"
    _STATE["auto_backend"] = backend
    report(f"=== ENUM-COMP: auto backend ({backend}), 2^20 states ===\n"
           f"  {agreement}, mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_enum_auto_2e24(benchmark, report):
    matrix = timed(benchmark, lambda: _density(BIG))
    _STATE["big_mean"] = benchmark.stats.stats.mean
    np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-12)
    report(f"=== ENUM-COMP: auto backend, 2^24 states ===\n"
           f"  mean {benchmark.stats.stats.mean:.3f}s")


def test_enum_auto_2e28(benchmark, report):
    matrix = timed(benchmark, lambda: _density(CEILING))
    _STATE["ceiling_mean"] = benchmark.stats.stats.mean
    np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-12)
    report(f"=== ENUM-COMP: auto backend, 2^28 states (new ceiling) ===\n"
           f"  mean {benchmark.stats.stats.mean:.3f}s")


def test_row_cap_sweep(report):
    """Re-measure DEFAULT_CHUNK_SIZE for the collapse-DFS labeller.

    One timed pass per cap (the full benchmark fixture would multiply
    this by rounds for a measurement that only needs a ranking); results
    are recorded in the summary entry, which has no ``mean`` field and
    is therefore ignored by the regression gate.
    """
    sweep = {}
    reference = None
    for cap in ROW_CAPS:
        start = time.perf_counter()
        matrix = _density(HEAD_TO_HEAD, backend="vectorized", chunk_size=cap)
        sweep[cap] = time.perf_counter() - start
        if reference is None:
            reference = matrix
        else:
            np.testing.assert_allclose(matrix, reference, atol=1e-13)
    _STATE["row_cap_sweep"] = sweep
    best = min(sweep, key=sweep.get)
    _STATE["row_cap_best"] = best
    lines = "\n".join(
        f"  cap {cap:>7}: {elapsed * 1e3:7.1f}ms"
        f"{'   <- DEFAULT_CHUNK_SIZE' if cap == DEFAULT_CHUNK_SIZE else ''}"
        for cap, elapsed in sweep.items()
    )
    report(f"=== ENUM-COMP: vectorized row-cap sweep, 2^20 states ===\n"
           f"{lines}\n  fastest cap: {best}")


@pytest.mark.skipif(not compiled.HAVE_NUMBA,
                    reason="numba not installed ([compiled] extra)")
def test_enum_jit_2e20(benchmark, report):
    matrix = timed(benchmark, lambda: _density(HEAD_TO_HEAD, backend="compiled"))
    np.testing.assert_array_equal(matrix, _STATE["ref_matrix"])
    report(f"=== ENUM-COMP: numba JIT backend, 2^20 states ===\n"
           f"  bitwise identical to reference, "
           f"mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_enum_compiled_summary(report):
    speedup = _STATE["ref_mean"] / _STATE["auto_mean"]
    _BENCH_JSON.setdefault("enum_compiled", []).append({
        "test": "enum_compiled_summary",
        "backend": _STATE["auto_backend"],
        "jit_available": compiled.jit_available(),
        "speedup_2e20": round(speedup, 3),
        "auto_2e20_mean_s": round(_STATE["auto_mean"], 4),
        "auto_2e24_mean_s": round(_STATE["big_mean"], 4),
        "auto_2e28_mean_s": round(_STATE["ceiling_mean"], 4),
        "auto_2e20_maxdiff": _STATE.get("auto_maxdiff", 0.0),
        "row_cap_sweep_2e20_s": {
            str(cap): round(elapsed, 4)
            for cap, elapsed in _STATE["row_cap_sweep"].items()
        },
        "row_cap_fastest": _STATE["row_cap_best"],
        "default_chunk_size": DEFAULT_CHUNK_SIZE,
    })
    report(
        "=== ENUM-COMP: summary ===\n"
        f"  backend                  : {_STATE['auto_backend']}"
        f" (jit_available={compiled.jit_available()})\n"
        f"  speedup vs reference 2^20: {speedup:.1f}x\n"
        f"  2^24 wall-clock          : {_STATE['big_mean']:.3f}s\n"
        f"  2^28 wall-clock          : {_STATE['ceiling_mean']:.3f}s\n"
        f"  fastest row cap at 2^20  : {_STATE['row_cap_best']}"
        f" (default {DEFAULT_CHUNK_SIZE})"
    )
    # Acceptance floors from the PR: >=5x at 2^20, 2^24 under a minute.
    assert speedup >= 5.0, f"compiled backend only {speedup:.1f}x at 2^20"
    assert _STATE["big_mean"] < 60.0, (
        f"2^24 full matrix took {_STATE['big_mean']:.1f}s"
    )
