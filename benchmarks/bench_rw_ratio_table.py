"""TAB-RW: the section 5.5 read-write-ratio analysis.

Regenerates the optimum-location grid over all seven paper topologies
and the five read fractions, printing which cells are majority-optimal,
ROWA-optimal, or interior, and where majority is outright worst.

Paper claims asserted:

- about half the (topology, alpha) cells have their maximum at the
  majority edge — low read rates and dense topologies;
- majority is frequently the *worst* choice — sparse topologies at high
  read rates;
- every pure-write row (alpha = 0) is majority-optimal.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import timed
from repro.experiments.figures import figure_data
from repro.experiments.paper import PAPER_ALPHAS, PAPER_CHORD_COUNTS
from repro.experiments.report import render_rw_table
from repro.experiments.tables import read_write_ratio_table

#: 4949 is covered by the fig7 addendum; its simulation dominates runtime.
CHORDS = tuple(c for c in PAPER_CHORD_COUNTS if c != 4949)


def test_rw_ratio_table(benchmark, report, scale):
    models = []
    for chords in CHORDS:
        fig = figure_data(chords=chords, scale=scale, seed=1000 + chords)
        models.append((fig.topology_name, fig.model))

    rows = timed(benchmark, lambda: read_write_ratio_table(models, PAPER_ALPHAS))
    report("=== section 5.5 read-write-ratio table ===\n" + render_rw_table(rows))

    majority_cells = [r for r in rows if r.optimum_is_majority]
    worst_cells = [r for r in rows if r.majority_is_worst]
    # "one-half of the curves have maximum at q_r = floor(T/2)" — allow a
    # generous band since chord placement and noise shift the boundary.
    frac = len(majority_cells) / len(rows)
    assert 0.3 <= frac <= 0.8, frac
    # Majority is worst somewhere (the paper: "frequently").
    assert len(worst_cells) >= 3
    # Every pure-write row is majority-optimal.
    for row in rows:
        if row.alpha == 0.0:
            assert row.optimum_is_majority, row
    # Dense topology at low alpha: majority-optimal.
    dense = {r.alpha: r for r in rows if "256" in r.topology_name}
    assert dense[0.25].optimum_is_majority
    # Sparse topology at alpha = 1: ROWA-optimal and majority worst.
    ring_rows = {r.alpha: r for r in rows if r.topology_name.startswith("topology-0")}
    assert ring_rows[1.0].optimum_is_rowa
    assert ring_rows[1.0].majority_is_worst
