"""ANA-RING / ANA-FC / ANA-BUS: analytic densities vs simulation.

The paper derives closed-form ``f_i`` for ring, fully-connected, and bus
networks (section 4.2). These benches time the closed forms at the
paper's 101-site scale and verify them against the simulator's
stationary estimate (ring; the strongest full-pipeline check) and
against static Monte-Carlo sampling (complete graph and bus).
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from conftest import timed
from repro.analytic.bus import bus_density
from repro.analytic.complete import complete_density
from repro.analytic.montecarlo import montecarlo_density
from repro.analytic.ring import ring_density
from repro.experiments.paper import PAPER_RELIABILITY
from repro.protocols.majority import MajorityConsensusProtocol
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_simulation
from repro.topology.generators import bus, fully_connected, ring

P = R = PAPER_RELIABILITY


def test_ana_ring_vs_simulation(benchmark, report, scale):
    n = 31  # large enough to partition, small enough to simulate tightly
    cfg = SimulationConfig.paper_like(
        ring(n),
        alpha=0.5,
        warmup_accesses=500.0,
        accesses_per_batch=min(scale.accesses_per_batch * 4, 120_000.0),
        n_batches=2,
        seed=77,
    )
    result = timed(benchmark, lambda: run_simulation(cfg, MajorityConsensusProtocol(n)))
    simulated = result.density_matrix("time").mean(axis=0)
    analytic = ring_density(n, P, R)
    gap = float(np.abs(simulated - analytic).max())
    report(
        "=== ANA-RING: ring closed form vs simulator stationary density ===\n"
        f"n = {n}, p = r = {P}\n"
        f"max |simulated - analytic| over v: {gap:.4f}\n"
        f"analytic f(0) = {analytic[0]:.4f}, simulated f(0) = {simulated[0]:.4f}"
    )
    assert gap < 0.03


def test_ana_complete_vs_montecarlo(benchmark, report):
    n = 101
    analytic = timed(benchmark, lambda: complete_density(n, P, R))
    mc = montecarlo_density(fully_connected(n), 0, P, R, n_samples=3_000, seed=8)
    gap = float(np.abs(analytic - mc).max())
    report(
        "=== ANA-FC: Gilbert-recursion closed form vs Monte-Carlo ===\n"
        f"n = {n}: max density gap {gap:.4f}; "
        f"analytic mass at v >= 90: {analytic[90:].sum():.4f}"
    )
    assert gap < 0.05
    # At p = r = .96 a complete 101-site network is essentially always one
    # big component holding every up site (~Binomial(100, .96) + 1 votes):
    # conditional on the submitting site being up, mass concentrates high.
    assert analytic[90:].sum() > 0.93


def test_ana_bus_vs_montecarlo(benchmark, report):
    n = 25
    analytic = timed(benchmark, lambda: bus_density(n, P, R, sites_need_bus=False))
    topo = bus(n)  # hub carries the bus's reliability; spokes perfect
    site_rel = np.full(n + 1, P)
    site_rel[n] = R
    mc = montecarlo_density(topo, 0, site_rel, 1.0, n_samples=20_000, seed=9)
    gap = float(np.abs(analytic - mc).max())
    report(
        "=== ANA-BUS: bus closed form vs Monte-Carlo (star encoding) ===\n"
        f"n = {n}: max density gap {gap:.4f}"
    )
    assert gap < 0.02
