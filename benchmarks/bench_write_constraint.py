"""TAB-WC: the section 5.4 write-constraint worked example.

Paper, Topology 2, ``alpha = 0.75``: the unconstrained optimum ~72 % at
``q_r = 1`` leaves write availability near zero; requiring
``A_w >= 20 %`` moves the optimum to ``q_r = 28`` with availability 50 %
(numbers for the paper's chord placement; ours differs per the DESIGN.md
substitution, so we assert the *shape*: the constrained optimum is the
smallest feasible quorum, lands in the 20-40 range, and costs 15-35
points of availability).
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))

from conftest import timed
from repro.experiments.figures import figure_data
from repro.experiments.report import render_write_constraint_table
from repro.experiments.tables import write_constraint_table
from repro.quorum.constraints import feasible_read_quorums, optimize_with_write_floor
from repro.quorum.optimizer import optimal_read_quorum

ALPHA = 0.75
FLOOR = 0.20


def test_write_constraint_example(benchmark, report, scale):
    fig = figure_data(chords=2, scale=scale, seed=54)
    model = fig.model

    constrained = timed(benchmark, lambda: optimize_with_write_floor(model, ALPHA, FLOOR))
    rows = write_constraint_table(model, ALPHA, write_floors=(0.0, 0.05, 0.1, 0.2, 0.3))
    report(
        "=== section 5.4 write-constraint example (topology 2) ===\n"
        + render_write_constraint_table(rows, ALPHA, fig.topology_name)
        + f"\npaper (its chord placement): floor 0.20 -> q_r = 28, A = 0.50"
    )

    free = optimal_read_quorum(model, ALPHA)
    assert free.availability == pytest.approx(0.72, abs=0.03)
    free_write = float(np.asarray(model.write_availability_at(free.read_quorum)))
    assert free_write < 0.05

    # Constrained optimum: smallest feasible quorum (availability is
    # monotone decreasing here), within the paper's region.
    feasible = feasible_read_quorums(model, FLOOR)
    assert constrained.read_quorum == int(feasible[0])
    assert 20 <= constrained.read_quorum <= 40
    assert 0.35 <= constrained.availability <= 0.60
    cons_write = float(np.asarray(model.write_availability_at(constrained.read_quorum)))
    assert cons_write >= FLOOR
