"""FIG3: availability vs read quorum on Topology 1 (ring + 1 chord).

One chord halves the effective partition sizes but the network is still
essentially a ring: read-heavy optima stay at the left edge.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from figure_common import run_figure


def test_fig3_topology1(benchmark, report, scale):
    fig = run_figure(benchmark, report, scale, chords=1, figure_name="Figure 3 (topology 1)")
    for alpha in (0.75, 1.0):
        assert fig.curve(alpha).argmax_quorum <= 3
    # The pure-write curve must peak at the majority edge.
    assert fig.curve(0.0).argmax_quorum == fig.model.max_read_quorum
