"""FIG7: availability vs read quorum on Topology 256 (ring + 256 chords).

The paper also states the fully-connected Topology 4949's curves are
"nearly identical" to Topology 256's; this bench checks that claim by
running both and comparing the curves pointwise (the 4949 run uses a
reduced access budget — its event rate is ~11x higher).
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from figure_common import run_figure
from repro.experiments.figures import figure_data
from repro.experiments.paper import ExperimentScale


def test_fig7_topology256(benchmark, report, scale):
    fig = run_figure(benchmark, report, scale, chords=256, figure_name="Figure 7 (topology 256)")
    # Dense regime: majority is (weakly) optimal for every alpha < 1, and
    # availability at majority approaches the site reliability.
    for alpha in (0.0, 0.25, 0.5):
        series = fig.curve(alpha)
        assert float(series.availability[-1]) >= series.max_value - 0.01
    assert float(fig.curve(0.5).availability[-1]) > 0.9


def test_fig7_fully_connected_matches_256(benchmark, report, scale):
    from conftest import timed

    tiny = ExperimentScale(
        name="fig7-4949",
        n_sites=scale.n_sites,
        warmup_accesses=min(scale.warmup_accesses, 500.0),
        accesses_per_batch=min(scale.accesses_per_batch, 5_000.0),
        n_batches=3,
        initial_state="stationary",
    )
    fig256 = figure_data(chords=256, scale=tiny, seed=256)
    fig4949 = timed(benchmark, lambda: figure_data(chords=4949, scale=tiny, seed=4949))
    worst = 0.0
    for alpha in (0.0, 0.5, 1.0):
        a = fig256.curve(alpha).availability
        b = fig4949.curve(alpha).availability
        worst = max(worst, float(np.abs(a - b).max()))
    report(
        "=== Figure 7 addendum: topology 4949 vs 256 ===\n"
        f"max pointwise curve difference over alpha in {{0,.5,1}}: {worst:.4f}\n"
        "(paper: 'nearly identical'; the residual here is Monte-Carlo noise\n"
        " in the steep W tail — it shrinks with the access budget)"
    )
    assert worst < 0.10
