"""QR-DYN: value of dynamic quorum reassignment (sections 2.2, 4.3).

Compares measured availability of three deployments on a read-heavy
sparse network:

- static majority consensus (what a write-only analysis would install),
- static optimal (the Figure-1 optimum installed up front),
- QR dynamic: starts at majority, estimates ``f_i`` on-line, and installs
  the optimizer's choice through the version-number protocol while the
  network keeps failing.

The paper's claim: the techniques "can greatly increase data
availability"; the dynamic protocol must recover (nearly) all of the
static-optimal gain without being told the density in advance.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import timed
from repro.analytic.ring import ring_density
from repro.protocols.estimator import OnlineDensityEstimator
from repro.protocols.majority import MajorityConsensusProtocol
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.protocols.reassignment import QuorumReassignmentProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import optimal_read_quorum
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_simulation
from repro.topology.generators import ring

N = 31
ALPHA = 0.9


def make_config(scale):
    return SimulationConfig.paper_like(
        ring(N),
        alpha=ALPHA,
        warmup_accesses=500.0,
        accesses_per_batch=min(scale.accesses_per_batch * 2, 60_000.0),
        n_batches=3,
        seed=31,
    )


def test_dynamic_reassignment_value(benchmark, report, scale):
    cfg = make_config(scale)

    static_majority = run_simulation(cfg, MajorityConsensusProtocol(N))

    f = ring_density(N, 0.96, 0.96)
    oracle = optimal_read_quorum(AvailabilityModel(f, f), ALPHA)
    static_optimal = run_simulation(cfg, QuorumConsensusProtocol(oracle.assignment))

    def run_dynamic():
        protocol = QuorumReassignmentProtocol(N, QuorumAssignment.majority(N))
        estimator = OnlineDensityEstimator(N, N)

        def observer(time, tracker, proto):
            estimator.observe_all(tracker.vote_totals, weight=1.0)
            if estimator.total_weight < 40 * N:
                return
            model = AvailabilityModel.from_density_matrix(estimator.density_matrix())
            best = optimal_read_quorum(model, ALPHA, method="golden")
            current = proto.effective_assignment(tracker, 0)
            if current is not None and best.assignment != current:
                proto.try_reassign(tracker, 0, best.assignment)

        return run_simulation(cfg, protocol, change_observer=observer), protocol

    dynamic, protocol = timed(benchmark, run_dynamic)

    a_maj = static_majority.availability.mean
    a_opt = static_optimal.availability.mean
    a_dyn = dynamic.availability.mean
    report(
        "=== QR-DYN: dynamic reassignment on a read-heavy 31-site ring ===\n"
        f"alpha = {ALPHA}\n"
        f"static majority : {static_majority.availability}\n"
        f"static optimal  : {static_optimal.availability}  "
        f"(oracle {oracle.assignment})\n"
        f"QR dynamic      : {dynamic.availability}  "
        f"({protocol.installs} installs)\n"
        f"gain dynamic - majority: {a_dyn - a_maj:+.4f} "
        f"(static-optimal gain {a_opt - a_maj:+.4f})"
    )
    assert protocol.installs >= 1
    # Dynamic must capture most of the optimal gain.
    assert a_dyn - a_maj > 0.5 * (a_opt - a_maj) > 0.0
