"""ADAPT-LOOP: the paper's full on-line loop, end to end.

The headline system claim: a deployment that starts with majority
consensus and *no model of anything* — not the topology density, not the
read fraction — converges to near-optimal availability purely from
observations made during normal transaction processing, and keeps
tracking when the workload shifts (section 4.3).

Protocols compared on identical failure streams (same seeds):

- static majority (the uninformed baseline),
- static oracle-optimal (Figure 1 on the true analytic density — the
  ceiling for any quorum-consensus deployment),
- adaptive (AdaptiveQuorumProtocol: learns alpha, r_i, w_i, f_i on-line
  and reassigns through the QR protocol).

Phase 2 flips the workload from read-heavy to write-heavy mid-benchmark;
the adaptive protocol must follow (forgetting factor active) while both
static deployments are stuck with their phase-1 choices.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import timed
from repro.analytic.ring import ring_density
from repro.protocols.adaptive import AdaptiveQuorumProtocol
from repro.protocols.majority import MajorityConsensusProtocol
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import optimal_read_quorum
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_simulation
from repro.topology.generators import ring

N = 31
PHASES = ((0.9, 100), (0.1, 200))  # (alpha, seed)


def phase_config(alpha: float, seed: int, scale) -> SimulationConfig:
    return SimulationConfig.paper_like(
        ring(N),
        alpha=alpha,
        warmup_accesses=0.0,
        accesses_per_batch=min(scale.accesses_per_batch * 2, 30_000.0),
        n_batches=2,
        initial_state="stationary",
        seed=seed,
    )


def test_adaptive_loop(benchmark, report, scale):
    truth = ring_density(N, 0.96, 0.96)
    oracle_model = AvailabilityModel(truth, truth)

    def run_all():
        rows = {}
        for label, factory in (
            ("static majority", lambda a: MajorityConsensusProtocol(N)),
            ("static oracle", lambda a: QuorumConsensusProtocol(
                optimal_read_quorum(oracle_model, a).assignment)),
        ):
            accs = []
            for alpha, seed in PHASES:
                # The oracle gets phase-1 knowledge only: a static
                # deployment cannot retune mid-stream.
                protocol = factory(PHASES[0][0])
                res = run_simulation(phase_config(alpha, seed, scale), protocol)
                accs.append(res.availability.mean)
            rows[label] = accs

        adaptive = AdaptiveQuorumProtocol(
            N, N,
            min_observation_weight=40.0 * N,
            improvement_threshold=0.005,
            forgetting_factor=0.999,
        )
        accs = []
        installs = 0
        for alpha, seed in PHASES:
            res = run_simulation(phase_config(alpha, seed, scale), adaptive)
            accs.append(res.availability.mean)
            installs += adaptive.installs
        rows["adaptive (on-line)"] = accs
        rows["_installs"] = installs
        return rows

    rows = timed(benchmark, run_all)
    installs = rows.pop("_installs")

    lines = [
        "=== ADAPT-LOOP: on-line loop vs static deployments (31-site ring) ===",
        f"  phase 1: alpha = {PHASES[0][0]}   phase 2: alpha = {PHASES[1][0]}",
        "  deployment            phase-1 ACC   phase-2 ACC   mean",
    ]
    for label, accs in rows.items():
        lines.append(
            f"  {label:<20s}  {accs[0]:11.4f}   {accs[1]:11.4f}   {sum(accs)/2:.4f}"
        )
    lines.append(f"  adaptive reassignments installed: {installs}")
    report("\n".join(lines))

    adaptive_mean = sum(rows["adaptive (on-line)"]) / 2
    majority_mean = sum(rows["static majority"]) / 2
    oracle_mean = sum(rows["static oracle"]) / 2
    assert installs >= 1
    # The adaptive loop beats uninformed majority...
    assert adaptive_mean > majority_mean + 0.02
    # ...and beats the phase-1-tuned static deployment across the shift.
    assert adaptive_mean > oracle_mean - 0.02
