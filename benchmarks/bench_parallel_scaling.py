"""PAR-SCALE: the parallel & vectorized simulation core (DESIGN.md §8).

Two speedup measurements, both on the paper's Figure-2 ring:

- **Batch fan-out** — ``run_simulation`` at ``n_workers=4`` vs the
  serial loop. Wall-clock scaling tracks the machine's physical core
  count (recorded in the JSON as ``cores``); the *correctness* claim is
  stronger and machine-independent: the two runs' ACC/SURV/pooled
  densities are asserted bitwise identical.
- **Monte-Carlo labeling** — the block-diagonal batched
  ``connected_components`` path vs the historical per-state loop, fed
  identical random streams so the outputs are asserted equal while only
  the labelling strategy differs. This speedup is pure vectorization and
  must materialize on any machine.

The summary entry in ``BENCH_parallel_scaling.json`` records both
speedups plus the core count, so the perf trajectory distinguishes "ran
on a 1-core CI box" from a real scaling regression.
"""

import os
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from conftest import _BENCH_JSON, timed
from repro.analytic.montecarlo import (
    _perstate_counts,
    _sample_plan,
    montecarlo_density_matrix,
)
from repro.experiments.paper import ExperimentScale
from repro.protocols.majority import MajorityConsensusProtocol
from repro.rng import as_generator, spawn
from repro.simulation.runner import run_simulation
from repro.topology.generators import ring

#: Figure-2 ring at a reduced access volume but enough batches to keep
#: four workers busy.
SCALING_SCALE = ExperimentScale(
    name="parallel-scaling",
    n_sites=101,
    warmup_accesses=500.0,
    accesses_per_batch=4_000.0,
    n_batches=8,
    initial_state="stationary",
)

MC_SAMPLES = 4_096
MC_BATCH = 512

#: Cross-test state: mean wall-clock per stage + the serial aggregates
#: the parallel run must reproduce bitwise.
_STATE = {}


def _config():
    return SCALING_SCALE.config(0, alpha=0.5, seed=0)


def _protocol(config):
    return MajorityConsensusProtocol(config.topology.total_votes)


def _aggregates(result):
    return (
        result.availability.values,
        result.surv_read.values,
        result.surv_write.values,
        result.density_matrix("time"),
        result.density_matrix("access"),
    )


def test_fig2_ring_serial(benchmark, report):
    config = _config()
    result = timed(benchmark, lambda: run_simulation(config, _protocol(config)))
    _STATE["fig2_serial_mean"] = benchmark.stats.stats.mean
    _STATE["fig2_serial_aggregates"] = _aggregates(result)
    report(f"=== PAR-SCALE: fig2 ring serial ===\n"
           f"  {result.n_batches} batches, ACC {result.availability.mean:.4f}, "
           f"mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_fig2_ring_4workers(benchmark, report):
    config = _config()
    result = timed(
        benchmark,
        lambda: run_simulation(config, _protocol(config), n_workers=4),
    )
    _STATE["fig2_parallel_mean"] = benchmark.stats.stats.mean
    serial = _STATE["fig2_serial_aggregates"]
    parallel = _aggregates(result)
    for serial_part, parallel_part in zip(serial, parallel):
        np.testing.assert_array_equal(np.asarray(serial_part),
                                      np.asarray(parallel_part))
    report(f"=== PAR-SCALE: fig2 ring n_workers=4 ===\n"
           f"  aggregates bitwise identical to serial, "
           f"mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def _montecarlo_perstate(topology, n_samples, batch_size, seed):
    """The pre-batching estimator: same streams, per-state labelling."""
    site_rel = np.full(topology.n_sites, 0.96)
    link_rel = np.full(topology.n_links, 0.96)
    plan = _sample_plan(n_samples, batch_size)
    streams = spawn(seed, len(plan))
    counts = sum(
        _perstate_counts(topology, site_rel, link_rel, count, stream)
        for count, stream in zip(plan, streams)
    )
    return counts / n_samples


def test_montecarlo_perstate_loop(benchmark, report):
    topology = ring(101)
    matrix = timed(
        benchmark,
        lambda: _montecarlo_perstate(topology, MC_SAMPLES, MC_BATCH, seed=7),
    )
    _STATE["mc_perstate_mean"] = benchmark.stats.stats.mean
    _STATE["mc_perstate_matrix"] = matrix
    report(f"=== PAR-SCALE: Monte-Carlo per-state loop ===\n"
           f"  {MC_SAMPLES} states, mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_montecarlo_batched(benchmark, report):
    topology = ring(101)
    matrix = timed(
        benchmark,
        lambda: montecarlo_density_matrix(
            topology, 0.96, 0.96, n_samples=MC_SAMPLES, seed=7,
            batch_size=MC_BATCH),
    )
    _STATE["mc_batched_mean"] = benchmark.stats.stats.mean
    np.testing.assert_array_equal(matrix, _STATE["mc_perstate_matrix"])
    report(f"=== PAR-SCALE: Monte-Carlo batched labelling ===\n"
           f"  identical output, mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_scaling_summary(report):
    cores = os.cpu_count() or 1
    fanout_speedup = _STATE["fig2_serial_mean"] / _STATE["fig2_parallel_mean"]
    mc_speedup = _STATE["mc_perstate_mean"] / _STATE["mc_batched_mean"]
    _BENCH_JSON.setdefault("parallel_scaling", []).append({
        "test": "scaling_summary",
        "cores": cores,
        "fig2_fanout_speedup_4workers": round(fanout_speedup, 3),
        "montecarlo_batched_speedup": round(mc_speedup, 3),
        "bitwise_identical": True,
    })
    report(
        "=== PAR-SCALE: summary ===\n"
        f"  cores available          : {cores}\n"
        f"  fig2 fan-out speedup (4w): {fanout_speedup:.2f}x\n"
        f"  Monte-Carlo MC speedup   : {mc_speedup:.2f}x"
    )
    # Vectorization must pay off on any machine; process fan-out can only
    # pay off when the machine actually has the cores.
    assert mc_speedup >= 5.0, f"batched MC labelling only {mc_speedup:.2f}x"
    if cores >= 4:
        assert fanout_speedup >= 3.0, f"fan-out only {fanout_speedup:.2f}x"
