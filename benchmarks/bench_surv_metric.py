"""ABL-SURV: optimizing for SURV vs ACC (paper, section 3 + footnote 3).

The paper optimizes ACC but notes the same algorithm serves SURV by
substituting the distribution of the largest component's votes. This
bench runs one simulation per topology, builds both models from the same
run, and contrasts the two metrics' views of the quorum space —
quantifying the paper's remark that SURV flatters protocols with small
distinguished components (majority looks far better under SURV than
under ACC on sparse networks).
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from conftest import timed
from repro.experiments.paper import ExperimentScale
from repro.protocols.majority import MajorityConsensusProtocol
from repro.quorum.optimizer import optimal_read_quorum
from repro.simulation.runner import run_simulation

ALPHA = 0.5
CHORD_CASES = (0, 2, 16)


def test_surv_vs_acc_objectives(benchmark, report, scale):
    def run_all():
        rows = []
        for chords in CHORD_CASES:
            cfg = scale.config(chords, alpha=ALPHA, seed=300 + chords)
            result = run_simulation(cfg, MajorityConsensusProtocol(cfg.topology.total_votes))
            acc_model = result.availability_model()
            surv_model = result.surv_model()
            acc_opt = optimal_read_quorum(acc_model, ALPHA)
            surv_opt = optimal_read_quorum(surv_model, ALPHA)
            rows.append(
                (
                    cfg.topology.name,
                    acc_opt.read_quorum,
                    acc_opt.availability,
                    float(acc_model.curve(ALPHA)[-1]),
                    surv_opt.read_quorum,
                    surv_opt.availability,
                    float(surv_model.curve(ALPHA)[-1]),
                )
            )
        return rows

    rows = timed(benchmark, run_all)

    lines = [
        "=== ABL-SURV: ACC vs SURV objectives (alpha = 0.5) ===",
        "  topology               ACC:q* ACC:A*  ACC(maj)  SURV:q* SURV:A* SURV(maj)",
    ]
    for name, aq, aa, amaj, sq, sa, smaj in rows:
        lines.append(
            f"  {name:<22s} {aq:6d} {aa:6.4f}  {amaj:8.4f}  {sq:7d} {sa:7.4f} {smaj:9.4f}"
        )
    report("\n".join(lines))

    for name, aq, aa, amaj, sq, sa, smaj in rows:
        # SURV dominates ACC pointwise (some site can access whenever an
        # arbitrary site can), so the optima and the majority edge order
        # the same way.
        assert sa >= aa - 1e-9, name
        assert smaj >= amaj - 1e-9, name
        # The paper's observation that SURV flatters small distinguished
        # components shows most clearly once a couple of chords let a
        # majority component survive somewhere in the network.
        if name.startswith("topology-2("):
            assert (smaj - amaj) > 0.1, (name, smaj, amaj)
