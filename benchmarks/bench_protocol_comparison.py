"""PROTO-COMP: every replica-control protocol on one failure history.

A cross-cutting comparison the paper's related-work section gestures at:
static majority consensus, read-one/write-all, primary copy, dynamic
voting (Jajodia-Mutchler), and the Figure-1 optimal static assignment —
all evaluated on the *same* simulated failure sequences (per-seed paired
runs), reporting ACC and SURV(write) per protocol.

Expected orderings asserted:

- at alpha = 1, ROWA's ACC equals the site reliability and beats all
  write-constrained protocols;
- dynamic voting's SURV(write) dominates static majority's (its whole
  point: the distinguished component survives cascading partitions);
- primary copy's ACC is bounded by the primary's reliability.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import timed
from repro.analytic.ring import ring_density
from repro.protocols.dynamic_voting import DynamicVotingProtocol
from repro.protocols.majority import MajorityConsensusProtocol
from repro.protocols.primary_copy import PrimaryCopyProtocol
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.protocols.read_one_write_all import ReadOneWriteAllProtocol
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import optimal_read_quorum
from repro.simulation.runner import run_simulation
from repro.topology.generators import ring_with_chords

N = 101
CHORDS = 2
ALPHA = 0.5


def test_protocol_comparison(benchmark, report, scale):
    cfg = scale.config(CHORDS, alpha=ALPHA, seed=777)
    T = cfg.topology.total_votes

    f = ring_density(N, 0.96, 0.96)  # ring model as the off-line prior
    oracle = optimal_read_quorum(AvailabilityModel(f, f), ALPHA)

    protocols = {
        "majority": lambda: MajorityConsensusProtocol(T),
        "rowa": lambda: ReadOneWriteAllProtocol(T),
        "primary-copy": lambda: PrimaryCopyProtocol(0),
        "dynamic-voting": lambda: DynamicVotingProtocol(N),
        f"optimal-static{oracle.assignment}": lambda: QuorumConsensusProtocol(
            oracle.assignment
        ),
    }

    def run_all():
        rows = {}
        for name, factory in protocols.items():
            result = run_simulation(cfg, factory())
            rows[name] = (
                result.availability.mean,
                result.read_availability.mean,
                result.write_availability.mean,
                result.surv_write.mean,
            )
        return rows

    rows = timed(benchmark, run_all)

    lines = [
        f"=== PROTO-COMP: protocols on topology {CHORDS}, alpha = {ALPHA} ===",
        "  protocol                            ACC    R-avail  W-avail  SURV(w)",
    ]
    for name, (acc, r, w, surv) in rows.items():
        lines.append(f"  {name:<34s} {acc:6.4f}  {r:7.4f}  {w:7.4f}  {surv:7.4f}")
    report("\n".join(lines))

    # Dynamic voting keeps a writable component alive far more of the
    # time than static majority on this sparse topology.
    assert rows["dynamic-voting"][3] > rows["majority"][3] + 0.1
    # Primary copy ACC can never exceed the primary's own reliability.
    assert rows["primary-copy"][0] <= 0.96 + 0.02
    # ROWA read availability is the site reliability.
    assert abs(rows["rowa"][1] - 0.96) < 0.02
    # The optimal static assignment beats plain majority on ACC.
    optimal_name = next(k for k in rows if k.startswith("optimal-static"))
    assert rows[optimal_name][0] >= rows["majority"][0] - 0.01
