"""FIG6: availability vs read quorum on Topology 16 (ring + 16 chords).

The paper singles this figure out: it contains the *only* curve among
all thirty whose maximum is interior (alpha = .75 on its chord
placement). We cannot pin the interior optimum to the same q_r — chord
placement follows our documented substitution — so we assert the softer,
placement-independent form: the topology sits in the crossover regime
where neither endpoint dominates across read fractions.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from figure_common import run_figure


def test_fig6_topology16(benchmark, report, scale):
    fig = run_figure(benchmark, report, scale, chords=16, figure_name="Figure 6 (topology 16)")
    # Crossover regime: the write-heavy curve peaks at majority...
    assert fig.curve(0.0).argmax_quorum == fig.model.max_read_quorum
    # ...the pure-read curve at q_r = 1...
    assert fig.curve(1.0).argmax_quorum == 1
    # ...and the two endpoints are genuinely competitive at alpha = .75:
    # neither endpoint wins by a landslide (the regime where an interior
    # maximum can appear at all).
    series = fig.curve(0.75)
    left, right = float(series.availability[0]), float(series.availability[-1])
    assert abs(left - right) < 0.25
