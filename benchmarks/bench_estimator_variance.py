"""ABL-VAR: sampled-access vs time-weighted (expected-value) estimators.

DESIGN.md's variance-reduction claim, quantified: at a fixed simulated-
time budget, the expected-value estimator integrates the exact
conditional grant probability per epoch and should show materially lower
batch-to-batch variance than literal access sampling, with the same mean.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from conftest import timed
from repro.protocols.majority import MajorityConsensusProtocol
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate_batch
from repro.topology.generators import ring_with_chords

N = 31
N_REPLICATES = 12


def test_estimator_variance(benchmark, report, scale):
    topo = ring_with_chords(N, 2)
    base = SimulationConfig.paper_like(
        topo,
        alpha=0.5,
        warmup_accesses=200.0,
        accesses_per_batch=4_000.0,
        n_batches=1,
        seed=3,
    )

    def replicate(accounting):
        cfg = base.with_accounting(accounting)
        return np.asarray(
            [
                simulate_batch(cfg, MajorityConsensusProtocol(N), batch_index=k).availability
                for k in range(N_REPLICATES)
            ]
        )

    def run_both():
        return replicate("sampled"), replicate("expected")

    sampled, expected = timed(benchmark, run_both)

    report(
        "=== ABL-VAR: availability estimator variance at fixed budget ===\n"
        f"replicates = {N_REPLICATES}, accesses/replicate = 4000\n"
        f"sampled : mean {sampled.mean():.4f}  std {sampled.std(ddof=1):.5f}\n"
        f"expected: mean {expected.mean():.4f}  std {expected.std(ddof=1):.5f}\n"
        f"variance ratio (sampled/expected): "
        f"{(sampled.var(ddof=1) / expected.var(ddof=1)):.2f}x"
    )

    # Same estimand: means agree within the replicate noise.
    pooled_sem = np.sqrt(
        sampled.var(ddof=1) / N_REPLICATES + expected.var(ddof=1) / N_REPLICATES
    )
    assert abs(sampled.mean() - expected.mean()) < 4 * pooled_sem + 1e-3
    # Expected-value accounting removes the access-sampling noise term, so
    # its variance cannot exceed the sampled estimator's (up to noise).
    assert expected.var(ddof=1) <= sampled.var(ddof=1) * 1.2
