"""POOL-XPORT: shared-memory result transport for the batch fan-out.

The process-pool dispatcher (DESIGN.md §8, §13) historically pickled
every ``BatchResult`` — two dense ``(n_sites, T+1)`` density-weight
matrices per batch — back over the result pipe. The shared-memory
transport writes those payloads into preallocated ``SlotPool`` slots and
pickles only a slim index record.

Two claims, gated here:

- **Bytes** (machine-independent): the bytes crossing the pickle pipe
  shrink by at least 90% versus the pickle transport, and the
  rehydrated per-batch results are asserted bitwise identical — raw
  ``float64`` crosses untouched either way.
- **Wall-clock** (core-sensitive): with 8+ physical cores, the 8-worker
  shared-memory fan-out beats the serial loop. Recorded alongside the
  machine's ``cores`` so the regression gate skips the scaling claim on
  smaller CI boxes.
"""

import os
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from conftest import _BENCH_JSON, timed
from repro.experiments.paper import ExperimentScale
from repro.protocols.majority import MajorityConsensusProtocol
from repro.simulation.parallel import run_batches_parallel
from repro.simulation.runner import run_simulation

#: Figure-2 ring sized so 8 workers stay busy: 8 batches, modest access
#: volume per batch.
TRANSPORT_SCALE = ExperimentScale(
    name="pool-transport",
    n_sites=101,
    warmup_accesses=500.0,
    accesses_per_batch=2_500.0,
    n_batches=8,
    initial_state="stationary",
)

#: Cross-test state: wall-clock means plus the pickle-transport payloads
#: the shared-memory run must reproduce bitwise.
_STATE = {}


def _config():
    return TRANSPORT_SCALE.config(0, alpha=0.5, seed=0)


def _fan_out(n_workers, transport, stats=None):
    config = _config()
    protocol = MajorityConsensusProtocol(config.topology.total_votes)
    return run_batches_parallel(
        config, protocol, range(TRANSPORT_SCALE.n_batches), n_workers,
        transport=transport, transport_stats=stats,
    )


def _batch_payloads(outcomes):
    """The numeric payload of each batch, in batch order."""
    payloads = []
    for outcome in outcomes:
        batch = outcome.batch
        payloads.append((
            np.array([
                batch.reads_submitted, batch.reads_granted,
                batch.writes_submitted, batch.writes_granted,
                batch.surv_read, batch.surv_write, batch.measured_time,
                float(batch.n_epochs), float(batch.n_events),
            ]),
            np.array(batch.density_time._weights),
            np.array(batch.density_access._weights),
            np.asarray(batch.max_votes_time, dtype=np.float64),
        ))
    return payloads


def test_serial_baseline(benchmark, report):
    config = _config()
    result = timed(benchmark, lambda: run_simulation(
        config, MajorityConsensusProtocol(config.topology.total_votes)))
    _STATE["serial_mean"] = benchmark.stats.stats.mean
    report(f"=== POOL-XPORT: serial loop ===\n"
           f"  {result.n_batches} batches, ACC {result.availability.mean:.4f}, "
           f"mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_pickle_transport_4workers(benchmark, report):
    stats = {}
    outcomes = timed(benchmark, lambda: _fan_out(4, "pickle", stats))
    _STATE["pickle_mean_4w"] = benchmark.stats.stats.mean
    _STATE["pickle_bytes"] = stats["pickled_bytes"]
    _STATE["pickle_payloads"] = _batch_payloads(outcomes)
    report(f"=== POOL-XPORT: pickle transport, 4 workers ===\n"
           f"  {stats['pickled_bytes']:,} bytes pickled over "
           f"{stats['n_batches']} batches, "
           f"mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_shm_transport_4workers(benchmark, report):
    stats = {}
    outcomes = timed(benchmark, lambda: _fan_out(4, "shm", stats))
    _STATE["shm_mean_4w"] = benchmark.stats.stats.mean
    _STATE["shm_bytes"] = stats["pickled_bytes"]
    _STATE["shm_slot_bytes"] = stats["slot_bytes"]
    assert stats["transport"] == "shm"
    for pickle_parts, shm_parts in zip(_STATE["pickle_payloads"],
                                       _batch_payloads(outcomes)):
        for expected, actual in zip(pickle_parts, shm_parts):
            np.testing.assert_array_equal(expected, actual)
    report(f"=== POOL-XPORT: shared-memory transport, 4 workers ===\n"
           f"  {stats['pickled_bytes']:,} bytes pickled "
           f"(slots carry {stats['slot_bytes']:,} bytes/batch), "
           f"payloads bitwise identical to pickle transport, "
           f"mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_shm_transport_8workers(benchmark, report):
    timed(benchmark, lambda: _fan_out(8, "shm"))
    _STATE["shm_mean_8w"] = benchmark.stats.stats.mean
    report(f"=== POOL-XPORT: shared-memory transport, 8 workers ===\n"
           f"  mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_transport_summary(report):
    cores = os.cpu_count() or 1
    reduction = 1.0 - _STATE["shm_bytes"] / _STATE["pickle_bytes"]
    fanout_speedup = _STATE["serial_mean"] / _STATE["shm_mean_8w"]
    _BENCH_JSON.setdefault("pool_transport", []).append({
        "test": "transport_summary",
        "cores": cores,
        "pickle_bytes": _STATE["pickle_bytes"],
        "shm_bytes": _STATE["shm_bytes"],
        "pickled_byte_reduction": round(reduction, 4),
        "slot_bytes_per_batch": _STATE["shm_slot_bytes"],
        "fanout_speedup_8workers": round(fanout_speedup, 3),
        "bitwise_identical": True,
    })
    report(
        "=== POOL-XPORT: summary ===\n"
        f"  cores available            : {cores}\n"
        f"  pickle transport bytes     : {_STATE['pickle_bytes']:,}\n"
        f"  shared-memory bytes        : {_STATE['shm_bytes']:,}\n"
        f"  pickled-byte reduction     : {reduction:.1%}\n"
        f"  fan-out speedup (8w/serial): {fanout_speedup:.2f}x"
    )
    # The byte reduction is a property of the slot layout, not the
    # machine; the wall-clock claim needs the cores to exist.
    assert reduction >= 0.90, f"pickled bytes only reduced {reduction:.1%}"
    if cores >= 8:
        assert fanout_speedup > 1.0, (
            f"8-worker fan-out slower than serial ({fanout_speedup:.2f}x)")
