"""SERVE: the adaptive quorum serving layer under chaos (DESIGN.md §11).

One timed measurement: the CI smoke configuration of ``repro serve`` —
the 13-site paper-family ring, 20 000 accesses, 64 client feeders,
scripted correlated failures — run end to end through the asyncio
transport and the deterministic sequencer. Besides the wall-clock
timing, every round re-asserts the run's hard guarantees: zero invariant
violations, exact audit/ACC reconciliation, at least one reassignment
installed by the online estimation loop, and a digest identical across
rounds (the determinism contract, here across repeated event loops).

The summary entry in ``BENCH_serving.json`` records request throughput
(served per wall second) and the p99 grant latency in simulated seconds,
feeding the perf-regression gate.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import _BENCH_JSON, timed
from repro.quorum.assignment import QuorumAssignment
from repro.serving import ServeConfig, run_serve, serving_schedule
from repro.simulation.workload import AccessWorkload
from repro.topology.generators import ring_with_chords

N_SITES = 13
CHORDS = 2
N_REQUESTS = 20_000
N_CLIENTS = 64
SEED = 7
SCENARIO = "correlated"

_STATE = {}


def _serve_once():
    topology = ring_with_chords(N_SITES, CHORDS)
    config = ServeConfig(
        topology=topology,
        workload=AccessWorkload.uniform(N_SITES, 0.7),
        initial_assignment=QuorumAssignment.from_read_quorum(
            topology.total_votes, 1
        ),
        n_requests=N_REQUESTS,
        n_clients=N_CLIENTS,
        seed=SEED,
        scenario=SCENARIO,
    )
    config.fault_schedule = serving_schedule(SCENARIO, topology, config.horizon)
    return run_serve(config)


def test_serve_smoke_under_chaos(benchmark, report):
    result = timed(benchmark, _serve_once)
    assert result.exit_code == 0, result.summary()
    assert not result.violations
    assert result.reconciled
    assert len(result.reassignments) >= 1
    digest = result.digest()
    previous = _STATE.setdefault("digest", digest)
    assert digest == previous, "serving digest drifted between rounds"
    _STATE["report"] = result
    report(
        "=== SERVE: correlated-failure smoke ===\n"
        f"  {result.served} served over {result.n_sites} sites, "
        f"{len(result.reassignments)} reassignment(s), final q_r="
        f"{result.final_read_quorum}\n"
        f"  throughput {result.throughput:,.0f} req/s, availability "
        f"{result.availability:.4f}, mean {benchmark.stats.stats.mean * 1e3:.0f}ms"
    )


def test_serving_summary(report):
    result = _STATE["report"]
    _BENCH_JSON.setdefault("serving", []).append({
        "test": "serving_summary",
        "requests": result.served,
        "throughput_rps": round(result.throughput, 1),
        "p99_latency_sim_s": result.latency["p99"],
        "availability": round(result.availability, 6),
        "attempt_acc": round(result.attempt_availability, 6),
        "reassignments": len(result.reassignments),
        "final_read_quorum": result.final_read_quorum,
        "digest": result.digest()[:16],
    })
    report(
        "=== SERVE: summary ===\n"
        f"  throughput    : {result.throughput:,.0f} req/s\n"
        f"  p99 latency   : {result.latency['p99']:.3g} sim-s\n"
        f"  availability  : {result.availability:.4f}\n"
        f"  reassignments : {len(result.reassignments)}"
    )
