"""ABL-EXACT: joint-CTMC exact analysis vs the discrete-event simulator.

For systems small enough to enumerate, the joint Markov chain gives the
*exact* stationary availability of both static and dynamic protocols.
This bench prints exact-vs-simulated numbers for majority consensus and
dynamic voting on a 4-site system, quantifying (a) the simulator's
accuracy at a modest access budget and (b) the exact ACC gain dynamic
voting extracts — a number the simulation alone could only estimate.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from conftest import timed
from repro.analytic.markov import (
    JointMarkovChain,
    dynamic_voting_key,
    static_protocol_key,
)
from repro.protocols.dynamic_voting import DynamicVotingProtocol
from repro.protocols.majority import MajorityConsensusProtocol
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_simulation
from repro.simulation.workload import AccessWorkload
from repro.topology.generators import fully_connected

N = 4
MTTF, MTTR = 10.0, 2.0  # stressed system: reliability 5/6
ALPHA = 0.5
NO_LINK_FAILURES = np.zeros(N * (N - 1) // 2, dtype=bool)


def simulate(protocol):
    cfg = SimulationConfig(
        topology=fully_connected(N),
        workload=AccessWorkload.uniform(N, ALPHA),
        mean_time_to_failure=MTTF,
        mean_time_to_repair=MTTR,
        warmup_accesses=100.0,
        accesses_per_batch=40_000.0,
        n_batches=2,
        initial_state="stationary",
        fallible_links=NO_LINK_FAILURES,
        seed=9,
    )
    return run_simulation(cfg, protocol).availability.mean


def test_exact_vs_simulation(benchmark, report):
    topo = fully_connected(N)

    def build_chains():
        static = JointMarkovChain(
            topo, lambda: MajorityConsensusProtocol(N), MTTF, MTTR,
            static_protocol_key, fallible_links=NO_LINK_FAILURES,
        )
        dynamic = JointMarkovChain(
            topo, lambda: DynamicVotingProtocol(N), MTTF, MTTR,
            dynamic_voting_key, fallible_links=NO_LINK_FAILURES,
        )
        return static, dynamic

    static_chain, dynamic_chain = timed(benchmark, build_chains)

    exact_static = static_chain.availability(ALPHA)
    exact_dynamic = dynamic_chain.availability(ALPHA)
    sim_static = simulate(MajorityConsensusProtocol(N))
    sim_dynamic = simulate(DynamicVotingProtocol(N))

    report(
        "=== ABL-EXACT: joint-CTMC exact values vs simulation ===\n"
        f"4 sites, complete graph, site failures only, reliability 5/6, "
        f"alpha = {ALPHA}\n"
        f"majority consensus : exact {exact_static:.6f}  simulated {sim_static:.4f}  "
        f"({static_chain.n_states} joint states)\n"
        f"dynamic voting     : exact {exact_dynamic:.6f}  simulated {sim_dynamic:.4f}  "
        f"({dynamic_chain.n_states} joint states)\n"
        f"exact dynamic gain over majority: {exact_dynamic - exact_static:+.6f}"
    )

    assert abs(sim_static - exact_static) < 0.02
    assert abs(sim_dynamic - exact_dynamic) < 0.02
    assert exact_dynamic >= exact_static - 1e-12
