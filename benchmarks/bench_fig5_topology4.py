"""FIG5: availability vs read quorum on Topology 4 (ring + 4 chords)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from figure_common import run_figure


def test_fig5_topology4(benchmark, report, scale):
    fig = run_figure(benchmark, report, scale, chords=4, figure_name="Figure 5 (topology 4)")
    # Still sparse: the fully-read curve keeps its maximum at q_r = 1 ...
    assert fig.curve(1.0).argmax_quorum == 1
    # ... while the pure-write curve peaks at majority.
    assert fig.curve(0.0).argmax_quorum == fig.model.max_read_quorum
    # Four chords materially raise majority-side availability over the ring.
    assert fig.curve(0.0).max_value > 0.15
