"""Shared driver for the Figure 2-7 benchmarks.

Each paper figure shows availability vs read quorum for one topology
with five read-fraction curves. The driver runs one simulation, derives
all curves from the on-line density estimate (the paper's own technique,
section 4.2), prints the series, and asserts the figure's qualitative
claims:

- every curve's value at ``q_r = 1`` equals ``0.96 * alpha`` plus the
  (usually tiny) write-all term (section 5.3);
- all five curves converge at ``q_r = floor(T/2)`` (section 5.3);
- the alpha = 0 curve is non-decreasing and the alpha = 1 curve is
  non-increasing in ``q_r`` (monotonicity of W and R).

Endpoint-maximum checks are asserted per figure where the paper's claim
is unambiguous for that topology.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import FigureData, figure_data
from repro.experiments.paper import PAPER_RELIABILITY
from repro.experiments.report import render_figure


def run_figure(benchmark, report, scale, chords: int, figure_name: str) -> FigureData:
    from conftest import timed

    fig = timed(benchmark, lambda: figure_data(chords=chords, scale=scale, seed=chords))
    report(f"=== {figure_name} ===\n" + render_figure(fig))
    assert_common_shape(fig)
    return fig


def assert_common_shape(fig: FigureData) -> None:
    p = PAPER_RELIABILITY
    # Left-edge identity: A(alpha, 1) = alpha * p + (1 - alpha) * W(T).
    for series in fig.series:
        write_all = float(fig.series[0].availability[0])  # alpha = 0 at q_r = 1
        expected = series.alpha * p + (1 - series.alpha) * write_all
        assert series.availability[0] == np.float64(expected) or abs(
            series.availability[0] - expected
        ) < 0.03, (
            f"alpha={series.alpha}: left edge {series.availability[0]:.4f} "
            f"!= {expected:.4f}"
        )
    # Convergence at the majority edge (r = w: residual spread is the
    # one-vote gap between q_r and q_w plus Monte-Carlo noise).
    assert fig.convergence_spread < 0.08, fig.convergence_spread
    # Monotonicity of the pure curves.
    pure_write = fig.curve(0.0).availability
    pure_read = fig.curve(1.0).availability
    assert (np.diff(pure_write) >= -1e-9).all()
    assert (np.diff(pure_read) <= 1e-9).all()
