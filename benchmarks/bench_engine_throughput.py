"""PERF-ENGINE: simulator throughput on the paper's topologies.

Not a paper experiment — an engineering benchmark tracking the cost
drivers identified in DESIGN.md: the component recomputation per
failure/repair event (scales with links) and the per-epoch accounting.
Real multi-round timings, unlike the single-shot experiment benches.

Reported unit: simulated failure/repair events processed per second.
The paper's full fully-connected batch (1M accesses ≈ 9 900 time units
≈ 800k events) becomes a minutes-scale job at the throughput asserted
here, versus hours on the original DEC Station 5000.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from repro.protocols.majority import MajorityConsensusProtocol
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine
from repro.topology.generators import paper_topology


def _run(chords: int, accesses: float):
    topo = paper_topology(chords)
    cfg = SimulationConfig.paper_like(
        topo,
        alpha=0.5,
        warmup_accesses=0.0,
        accesses_per_batch=accesses,
        n_batches=1,
        initial_state="stationary",
        seed=1,
    )
    engine = SimulationEngine(cfg, MajorityConsensusProtocol(topo.total_votes))
    return engine.run_batch(0)


@pytest.mark.parametrize("chords,accesses", [(2, 3_000.0), (256, 3_000.0)])
def test_engine_throughput(benchmark, report, chords, accesses):
    batch = benchmark(lambda: _run(chords, accesses))
    events_per_sec = batch.n_events / benchmark.stats["mean"]
    report(
        f"=== PERF-ENGINE: topology {chords} ===\n"
        f"{batch.n_events} events, {batch.n_epochs} epochs in "
        f"{benchmark.stats['mean']*1e3:.1f} ms -> {events_per_sec:,.0f} events/s"
    )
    # Regression guard (very loose: CI machines vary widely).
    assert events_per_sec > 500
