"""ABL-REL: sensitivity of the optimal assignment to component reliability.

The paper fixes reliability at 0.96; this sweep shows how the optimal
quorum and the majority-vs-ROWA ordering move as reliability degrades —
the robustness question an operator deploying the Figure-1 optimizer
would ask first. Analytic densities make the sweep essentially free.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from conftest import timed
from repro.experiments.sweeps import find_majority_crossover, reliability_sweep

RELIABILITIES = (0.70, 0.80, 0.90, 0.96, 0.99)
CASES = (("ring", 101, 0.75), ("complete", 101, 0.75), ("complete", 101, 0.25))


def test_reliability_sweep(benchmark, report):
    def run():
        out = {}
        for family, n, alpha in CASES:
            out[(family, n, alpha)] = reliability_sweep(family, n, alpha, RELIABILITIES)
        out["crossover"] = find_majority_crossover("complete", 101, 0.8)
        return out

    data = timed(benchmark, run)

    lines = ["=== ABL-REL: reliability sensitivity (p = r) ===",
             "  family     n  alpha   rel    q_r*     A*     A(maj)   A(rowa)"]
    for (family, n, alpha) in CASES:
        for p in data[(family, n, alpha)]:
            lines.append(
                f"  {family:<9s} {n:3d}  {alpha:4.2f}  {p.reliability:4.2f}"
                f"  {p.optimal_read_quorum:5d}  {p.optimal_availability:6.4f}"
                f"  {p.availability_at_majority:7.4f}  {p.availability_at_rowa:7.4f}"
            )
    lines.append(
        f"  majority/ROWA crossover, complete-101 @ alpha=0.8: "
        f"reliability ~ {data['crossover']:.4f}"
    )
    report("\n".join(lines))

    # Availability improves with reliability in every case.
    for key in CASES:
        values = [p.optimal_availability for p in data[key]]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    # The ring's read-heavy optimum stays at the left edge up to the
    # paper's operating point; at .99 the ring is almost never cut and a
    # small interior quorum starts paying (q_r = 6 in this sweep) — the
    # optimal choice IS reliability-sensitive, which is the sweep's point.
    for p in data[("ring", 101, 0.75)]:
        if p.reliability <= 0.96:
            assert p.optimal_read_quorum <= 3
    # The dense write-heavy optimum stays majority-attaining across the sweep.
    for p in data[("complete", 101, 0.25)]:
        assert p.availability_at_majority >= p.optimal_availability - 1e-9
    assert data["crossover"] is not None
