"""FIG2: availability vs read quorum on Topology 0 (the 101-site ring).

Paper claims reproduced here: on the sparsest topology the majority
assignment is the *worst* choice for every positive read fraction, and
the optimum sits at the left edge (small read quorums).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from figure_common import run_figure


def test_fig2_ring(benchmark, report, scale):
    fig = run_figure(benchmark, report, scale, chords=0, figure_name="Figure 2 (topology 0)")
    # Ring: read-heavy curves peak at/near q_r = 1, never at majority.
    for alpha in (0.5, 0.75, 1.0):
        series = fig.curve(alpha)
        assert series.argmax_quorum <= 3
        assert series.availability[0] > series.availability[-1]
    # Majority is the worst choice on the read-heavy curves (5.5).
    top = fig.curve(1.0).availability
    assert top[-1] <= top.min() + 1e-9
