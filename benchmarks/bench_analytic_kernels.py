"""ANA-KERN: vectorized analytic kernels vs their reference loops (DESIGN.md §10).

Three speedup measurements, every one gated on *bitwise identical*
output — the vectorized kernels are resequenced, not renumbered:

- **Enumeration** — the chunked bit-unpacked kernel vs the retained
  per-state reference on a ring(8) (2^16 up/down states), plus a chunk
  sweep at 2^18 and a single 2^20 point showing the kernel holds its
  throughput where the reference loop would take minutes.
- **Vote scoring** — ``_StateSample.density_matrix`` (one scatter-add
  over the precomputed label matrix) vs the per-state reference loop,
  reported as candidates scored per second.
- **Vote search end-to-end** — ``optimize_votes`` with delta-scored
  hillclimb moves vs the same search fully re-scored by the reference
  loop; identical vote vectors and availabilities, very different
  wall-clock.

The density cache is disabled inside every timed callable so rounds
measure the kernels, never a cache hit.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from conftest import _BENCH_JSON, timed
from repro.analytic import cache as density_cache
from repro.analytic.enumeration import (
    enumerate_density_matrix,
    enumerate_density_matrix_reference,
)
from repro.quorum.vote_optimizer import _StateSample, optimize_votes
from repro.topology.generators import ring

#: ring(8): 8 sites + 8 links -> 2^16 enumerated states.
ENUM_TOPO = ring(8)
#: ring(9) -> 2^18 states for the chunk sweep; ring(10) -> 2^20.
SWEEP_TOPO = ring(9)
BIG_TOPO = ring(10)

ENUM_P, ENUM_R = 0.9, 0.8

#: Vote-scoring workload: one shared sample, a fixed batch of candidates.
SCORE_SITES = 8
SCORE_SAMPLES = 800
SCORE_CANDIDATES = 20

#: End-to-end search workload.
SEARCH_P = np.array([0.95, 0.95, 0.55, 0.95, 0.95, 0.55, 0.95, 0.95])

_STATE = {}


def _candidates():
    rng = np.random.default_rng(123)
    votes = rng.integers(0, 4, size=(SCORE_CANDIDATES, SCORE_SITES))
    votes[:, 0] = np.maximum(votes[:, 0], 1)
    return votes


def test_enum_reference_2e16(benchmark, report):
    matrix = timed(
        benchmark,
        lambda: enumerate_density_matrix_reference(ENUM_TOPO, ENUM_P, ENUM_R),
    )
    _STATE["enum_ref_mean"] = benchmark.stats.stats.mean
    _STATE["enum_ref_matrix"] = matrix
    report(f"=== ANA-KERN: enumeration reference, 2^16 states ===\n"
           f"  mean {benchmark.stats.stats.mean:.3f}s")


def test_enum_vectorized_2e16(benchmark, report):
    def run():
        with density_cache.disabled():
            return enumerate_density_matrix(ENUM_TOPO, ENUM_P, ENUM_R)

    matrix = timed(benchmark, run)
    _STATE["enum_vec_mean"] = benchmark.stats.stats.mean
    np.testing.assert_array_equal(matrix, _STATE["enum_ref_matrix"])
    report(f"=== ANA-KERN: enumeration vectorized, 2^16 states ===\n"
           f"  bitwise identical to reference, "
           f"mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_enum_chunk_sweep_2e18(benchmark, report):
    def run():
        with density_cache.disabled():
            return {
                chunk: enumerate_density_matrix(
                    SWEEP_TOPO, ENUM_P, ENUM_R, chunk_size=chunk
                )
                for chunk in (2_048, 8_192, 32_768)
            }

    matrices = timed(benchmark, run)
    first = matrices[2_048]
    for matrix in matrices.values():
        np.testing.assert_array_equal(matrix, first)
    report(f"=== ANA-KERN: chunk sweep (2k/8k/32k), 2^18 states ===\n"
           f"  all chunk sizes bitwise identical, "
           f"combined mean {benchmark.stats.stats.mean:.2f}s")


def test_enum_vectorized_2e20(benchmark, report):
    def run():
        with density_cache.disabled():
            return enumerate_density_matrix(BIG_TOPO, ENUM_P, ENUM_R)

    timed(benchmark, run)
    _STATE["enum_big_mean"] = benchmark.stats.stats.mean
    report(f"=== ANA-KERN: enumeration vectorized, 2^20 states ===\n"
           f"  mean {benchmark.stats.stats.mean:.2f}s")


def test_vote_scoring_reference(benchmark, report):
    sample = _StateSample(ring(SCORE_SITES), SEARCH_P, 0.85,
                          n_samples=SCORE_SAMPLES, seed=42)
    candidates = _candidates()
    _STATE["score_sample"] = sample

    def run():
        return [sample.density_matrix_reference(v) for v in candidates]

    matrices = timed(benchmark, run)
    _STATE["score_ref_mean"] = benchmark.stats.stats.mean
    _STATE["score_ref_matrices"] = matrices
    rate = SCORE_CANDIDATES / benchmark.stats.stats.mean
    report(f"=== ANA-KERN: vote scoring reference loop ===\n"
           f"  {SCORE_SAMPLES} states x {SCORE_CANDIDATES} candidates, "
           f"{rate:.0f} candidates/s")


def test_vote_scoring_batched(benchmark, report):
    sample = _STATE["score_sample"]
    candidates = _candidates()

    def run():
        return [sample.density_matrix(v) for v in candidates]

    matrices = timed(benchmark, run)
    _STATE["score_batched_mean"] = benchmark.stats.stats.mean
    for got, want in zip(matrices, _STATE["score_ref_matrices"]):
        np.testing.assert_array_equal(got, want)
    rate = SCORE_CANDIDATES / benchmark.stats.stats.mean
    report(f"=== ANA-KERN: vote scoring batched scatter-add ===\n"
           f"  bitwise identical, {rate:.0f} candidates/s")


def _search(scoring):
    return optimize_votes(ring(SCORE_SITES), alpha=0.5, p=SEARCH_P, r=0.85,
                          n_samples=SCORE_SAMPLES, seed=7, scoring=scoring)


def test_optimize_votes_reference(benchmark, report):
    result = timed(benchmark, lambda: _search("reference"))
    _STATE["search_ref_mean"] = benchmark.stats.stats.mean
    _STATE["search_ref_result"] = result
    report(f"=== ANA-KERN: optimize_votes, reference scoring ===\n"
           f"  votes {result.votes}, mean {benchmark.stats.stats.mean:.2f}s")


def test_optimize_votes_delta(benchmark, report):
    result = timed(benchmark, lambda: _search("delta"))
    _STATE["search_delta_mean"] = benchmark.stats.stats.mean
    ref = _STATE["search_ref_result"]
    assert result.votes == ref.votes
    assert result.availability == ref.availability
    assert result.candidates_evaluated == ref.candidates_evaluated
    report(f"=== ANA-KERN: optimize_votes, delta scoring ===\n"
           f"  identical search trajectory, "
           f"mean {benchmark.stats.stats.mean * 1e3:.0f}ms")


def test_kernel_summary(report):
    enum_speedup = _STATE["enum_ref_mean"] / _STATE["enum_vec_mean"]
    score_speedup = _STATE["score_ref_mean"] / _STATE["score_batched_mean"]
    search_speedup = _STATE["search_ref_mean"] / _STATE["search_delta_mean"]
    _BENCH_JSON.setdefault("analytic_kernels", []).append({
        "test": "kernel_summary",
        "enumeration_speedup_2e16": round(enum_speedup, 3),
        "enumeration_2e20_mean_s": round(_STATE["enum_big_mean"], 4),
        "vote_scoring_speedup": round(score_speedup, 3),
        "optimize_votes_speedup": round(search_speedup, 3),
        "bitwise_identical": True,
    })
    report(
        "=== ANA-KERN: summary ===\n"
        f"  enumeration speedup (2^16)    : {enum_speedup:.1f}x\n"
        f"  enumeration 2^20 wall-clock   : {_STATE['enum_big_mean']:.2f}s\n"
        f"  vote scoring speedup          : {score_speedup:.1f}x\n"
        f"  optimize_votes delta speedup  : {search_speedup:.1f}x"
    )
    # Pure vectorization: these floors must hold on any machine.
    assert enum_speedup >= 10.0, f"enumeration only {enum_speedup:.1f}x"
    assert search_speedup >= 5.0, f"vote search only {search_speedup:.1f}x"
