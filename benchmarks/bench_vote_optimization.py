"""ABL-VOTES: vote-assignment optimization on heterogeneous networks.

The paper evaluates uniform votes on symmetric topologies and defers
vote optimization to Cheung-Ahamad-Ammar. This extension bench runs our
hill-climbing vote optimizer on an asymmetric scenario — a chorded ring
where a third of the sites are flaky — and reports the availability of
(uniform votes, optimal quorums) vs (optimized votes, optimal quorums),
both scored on an independent held-out state sample so the comparison is
not biased by optimizing and evaluating on the same draws.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from conftest import timed
from repro.quorum.vote_optimizer import _StateSample, availability_of_votes, optimize_votes

N = 12
ALPHA = 0.5
GOOD_P, BAD_P = 0.95, 0.55
R = 0.95


def test_vote_optimization(benchmark, report, scale):
    from repro.topology.generators import ring_with_chords

    topo = ring_with_chords(N, 2)
    p = np.full(N, GOOD_P)
    p[::3] = BAD_P  # every third site is flaky

    search = timed(
        benchmark,
        lambda: optimize_votes(topo, alpha=ALPHA, p=p, r=R,
                               n_samples=2_000, seed=42),
    )

    # Held-out evaluation sample (different seed than the search used).
    holdout = _StateSample(topo, p, R, n_samples=6_000, seed=4242)
    uniform_votes = np.ones(N, dtype=np.int64)
    optimized_votes = np.asarray(search.votes, dtype=np.int64)
    uniform_value, uniform_quorum = availability_of_votes(holdout, uniform_votes, ALPHA)
    optimized_value, optimized_quorum = availability_of_votes(
        holdout, optimized_votes, ALPHA
    )

    report(
        "=== ABL-VOTES: vote optimization on a heterogeneous 12-site network ===\n"
        f"site reliabilities : {p.tolist()}\n"
        f"uniform votes      : A = {uniform_value:.4f} at {uniform_quorum.assignment} (held-out)\n"
        f"optimized votes    : A = {optimized_value:.4f} at {optimized_quorum.assignment} (held-out)\n"
        f"vote vector        : {list(search.votes)}\n"
        f"candidates scored  : {search.candidates_evaluated}"
    )

    # On held-out states the optimized vector must not lose to uniform
    # (allow a small MC tolerance), and typically wins outright.
    assert optimized_value >= uniform_value - 0.01
    # Flaky sites should not carry more votes than reliable ones.
    votes = optimized_votes
    assert votes[p == BAD_P].mean() <= votes[p == GOOD_P].mean() + 1e-9
