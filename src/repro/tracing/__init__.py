"""Cross-process tracing and phase-attributed profiling.

The package splits into three small modules:

- :mod:`repro.tracing.context` — deterministic trace-context
  propagation across the process pool and the serving loop.
- :mod:`repro.tracing.profiler` — named-phase wall/CPU accounting for
  the hot kernels, with a null twin for the disabled path.
- :mod:`repro.tracing.export` — Chrome Trace Format / JSONL exporters
  and the span-tree analysis helpers (digest, critical path).
"""

from repro.tracing.context import (
    SCOPE_BATCH,
    SCOPE_RUN,
    SCOPE_SERVE,
    BatchTracer,
    TraceContext,
)
from repro.tracing.export import (
    critical_path,
    span_tree_digest,
    to_chrome_trace,
    top_phases,
    write_chrome_trace,
    write_span_jsonl,
)
from repro.tracing.profiler import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    merge_phase_lists,
)

__all__ = [
    "SCOPE_RUN",
    "SCOPE_BATCH",
    "SCOPE_SERVE",
    "TraceContext",
    "BatchTracer",
    "PhaseProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "merge_phase_lists",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_span_jsonl",
    "span_tree_digest",
    "critical_path",
    "top_phases",
]
