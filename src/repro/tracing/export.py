"""Trace exporters and span-tree analysis.

Three consumers of the same :class:`~repro.telemetry.spans.SpanRecord`
plain data:

- :func:`to_chrome_trace` / :func:`write_chrome_trace` — Chrome Trace
  Format (the ``trace_event`` JSON schema), loadable in Perfetto /
  ``chrome://tracing``. Each span becomes a complete (``"X"``) event;
  ``tid`` lanes are *clock domains*: a span shares its parent's lane
  only while its interval nests inside the parent's, so a subtree
  merged from a pool worker — whose start offsets were measured
  against *that worker's* clock epoch — heads its own lane instead of
  being interleaved (mis-nested) on the dispatcher's timeline.
- :func:`write_span_jsonl` — one span per line, for ad-hoc ``jq``-style
  analysis and for round-tripping through the snapshot reader.
- :func:`span_tree_digest` / :func:`critical_path` /
  :func:`top_phases` — the analysis layer behind ``repro metrics`` and
  the determinism tests: the digest hashes only ``(id, parent, name)``
  triples, never timings, so it is bitwise stable across machines and
  worker counts.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional, Sequence, TextIO

from repro.telemetry.spans import SpanRecord

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "write_span_jsonl",
    "span_tree_digest",
    "critical_path",
    "top_phases",
]

_US = 1_000_000.0  # Chrome trace timestamps are microseconds.
_EPS_S = 1e-6  # Nesting slack: float round-trips through µs timestamps.


def _lane_assignment(records: Sequence[SpanRecord]) -> Dict[int, int]:
    """Map each span id to the id of the span heading its ``tid`` lane.

    A lane is a clock domain. A span joins its parent's lane only when
    its ``[start, start+wall]`` interval nests inside the parent's
    (small float tolerance); a child that escapes — a subtree merged
    from a pool worker, timed against that worker's clock epoch and
    re-parented under the dispatching span — heads a new lane, as does
    any root or orphan (a span whose parent was dropped by the cap
    stays visible instead of vanishing).
    """
    by_id = {r.span_id: r for r in records}
    lanes: Dict[int, int] = {}

    def nests(child: SpanRecord, parent: SpanRecord) -> bool:
        return (child.start >= parent.start - _EPS_S
                and child.start + child.wall
                <= parent.start + parent.wall + _EPS_S)

    def resolve(span_id: int) -> int:
        chain = []
        cursor = span_id
        while cursor not in lanes:
            chain.append(cursor)
            record = by_id[cursor]
            parent = record.parent_id
            if (parent is None or parent not in by_id
                    or not nests(record, by_id[parent])):
                lanes[cursor] = cursor
                break
            cursor = parent
        head = lanes[cursor]
        for sid in chain:
            lanes[sid] = head
        return head

    for record in records:
        resolve(record.span_id)
    return lanes


def to_chrome_trace(records: Sequence[SpanRecord],
                    phases: Optional[Sequence[Dict[str, object]]] = None,
                    meta: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """Render spans (and optionally a phase table) as a Chrome trace dict.

    Events are sorted by ``(tid, ts, -dur)`` so parents precede their
    children at equal timestamps and the output is deterministic for a
    deterministic record set.
    """
    lanes = _lane_assignment(records)
    # Deterministic tid per lane: lane heads ordered by earliest start
    # (comparable only within a domain, but stable), ties by span id.
    lane_order: Dict[int, int] = {}
    lane_starts: Dict[int, float] = {}
    lane_names: Dict[int, str] = {}
    for record in records:
        lane = lanes[record.span_id]
        if lane not in lane_starts or record.start < lane_starts[lane]:
            lane_starts[lane] = record.start
        if record.span_id == lane:
            lane_names[lane] = record.name
    for tid, lane in enumerate(
            sorted(lane_starts, key=lambda l: (lane_starts[l], l)), start=1):
        lane_order[lane] = tid

    events: List[Dict[str, object]] = []
    for lane, tid in sorted(lane_order.items(), key=lambda kv: kv[1]):
        events.append({
            "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
            "args": {"name": lane_names.get(lane, f"subtree {lane}")},
        })
    span_events: List[Dict[str, object]] = []
    for record in records:
        event: Dict[str, object] = {
            "ph": "X",
            "pid": 1,
            "tid": lane_order[lanes[record.span_id]],
            "name": record.name,
            "cat": "repro",
            "ts": record.start * _US,
            "dur": record.wall * _US,
            "args": {
                "span_id": record.span_id,
                "parent_id": record.parent_id,
                "cpu_s": record.cpu,
            },
        }
        if record.attrs:
            event["args"].update(
                {str(k): v for k, v in sorted(record.attrs.items())})
        span_events.append(event)
    span_events.sort(key=lambda e: (e["tid"], e["ts"], -e["dur"]))
    events.extend(span_events)

    other: Dict[str, object] = dict(meta or {})
    if phases:
        other["phases"] = list(phases)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(path: str, records: Sequence[SpanRecord],
                       phases: Optional[Sequence[Dict[str, object]]] = None,
                       meta: Optional[Dict[str, object]] = None) -> None:
    trace = to_chrome_trace(records, phases=phases, meta=meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=None, separators=(",", ":"))
        handle.write("\n")


def write_span_jsonl(stream: TextIO, records: Iterable[SpanRecord]) -> None:
    for record in records:
        stream.write(json.dumps(record.to_dict(), sort_keys=True))
        stream.write("\n")


def span_tree_digest(records: Sequence[SpanRecord]) -> str:
    """SHA-256 over the sorted ``(id, parent, name)`` structure.

    Timings are excluded on purpose: two runs with identical structure
    but different wall clocks digest identically, which is exactly the
    property the workers-1-vs-N determinism test asserts.
    """
    lines = sorted(
        f"{r.span_id}|{r.parent_id if r.parent_id is not None else 0}|{r.name}"
        for r in records
    )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def critical_path(records: Sequence[SpanRecord]) -> List[SpanRecord]:
    """The max-wall root-to-leaf chain through the span tree.

    At each level the child with the largest wall time is taken
    (ties broken by span id, so the path is deterministic). For serving
    runs this surfaces the dominating request/control chain; for batch
    runs it descends into the slowest batch.
    """
    if not records:
        return []
    by_id = {r.span_id: r for r in records}
    children: Dict[Optional[int], List[SpanRecord]] = {}
    for record in records:
        parent = record.parent_id if record.parent_id in by_id else None
        children.setdefault(parent, []).append(record)

    def pick(candidates: List[SpanRecord]) -> SpanRecord:
        return max(candidates, key=lambda r: (r.wall, -r.span_id))

    path: List[SpanRecord] = []
    cursor: Optional[SpanRecord] = pick(children.get(None, []))
    while cursor is not None:
        path.append(cursor)
        kids = children.get(cursor.span_id)
        cursor = pick(kids) if kids else None
    return path


def top_phases(phases: Sequence[Dict[str, object]],
               limit: int = 10) -> List[Dict[str, object]]:
    """The ``limit`` phases with the largest cumulative wall time."""
    ranked = sorted(phases, key=lambda p: (-float(p["wall"]), str(p["name"])))
    return list(ranked[: max(0, int(limit))])
