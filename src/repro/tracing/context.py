"""Trace-context propagation: deterministic span identity across processes.

PR 3's process-pool fan-out made batches independent by construction,
which also severed the span tree at the process boundary: every worker's
:class:`~repro.telemetry.spans.SpanCollector` restarted its sequential
span ids at 1, so merged snapshots carried colliding ids and orphaned
roots. A :class:`TraceContext` repairs both:

- **Deterministic ids.** While a context is active on a collector, span
  ids are derived from ``(seed, scope, index, ordinal)`` by a keyed
  64-bit hash instead of the sequential counter. The ordinal is the
  span's creation rank *within the context*, and the sequencing of every
  traced layer is already a pure function of the configuration, so the
  id of every span — and therefore the whole exported tree — is bitwise
  identical for any ``--workers`` / ``--clients`` value.
- **Re-parenting.** A context carries the span id of the dispatching
  span in the parent process; worker-local root spans adopt it as their
  parent, so merged snapshots reconstruct one tree spanning the fan-out.

:class:`BatchTracer` packages the idiom shared by the serial and
parallel twins of ``run_simulation`` / ``run_chaos_campaign``: one root
span under the run-scope context, one batch-scope context per batch.
Because both twins derive ids from the same ``(seed, batch_index)``
coordinates, the serial run and any parallel run produce the same tree
digest (:func:`repro.tracing.export.span_tree_digest`).
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = [
    "SCOPE_RUN",
    "SCOPE_BATCH",
    "SCOPE_SERVE",
    "TraceContext",
    "BatchTracer",
]

#: Context scopes (part of the id-derivation key, so scopes never collide).
SCOPE_RUN = "run"
SCOPE_BATCH = "batch"
SCOPE_SERVE = "serve"


@dataclass(frozen=True)
class TraceContext:
    """One deterministic id namespace; picklable, so it crosses the pool.

    ``seed`` is the run's configuration seed (``None`` hashes as the
    literal string ``"None"`` — unseeded runs still get *stable* ids,
    they are just shared across unseeded runs). ``scope``/``index``
    locate the namespace (e.g. ``("batch", 3)``), and
    ``parent_span_id`` is the dispatching span in the launching process
    that context-root spans re-parent under.
    """

    seed: Optional[int]
    scope: str
    index: int
    parent_span_id: Optional[int] = None

    def span_id(self, ordinal: int) -> int:
        """Deterministic 63-bit id of the ``ordinal``-th span opened here.

        Derived ids are uniform over ``[1, 2^63)``, so they never collide
        with the small sequential ids a collector assigns outside any
        context, and collide with each other only with negligible
        (birthday-bound) probability.
        """
        key = f"{self.seed}/{self.scope}/{self.index}/{ordinal}".encode()
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return (int.from_bytes(digest, "big") & ((1 << 63) - 1)) or 1

    def child(self, scope: str, index: int,
              parent_span_id: Optional[int]) -> "TraceContext":
        """A sub-namespace sharing this context's seed."""
        return TraceContext(self.seed, scope, index, parent_span_id)


class BatchTracer:
    """Scope a run-root span plus per-batch contexts; no-op when disabled.

    Usage (identical in the serial and parallel runners)::

        with BatchTracer(telemetry, config.seed, n_workers=n) as tracer:
            # serial twin:
            with tracer.batch(k):
                engine.run_batch(k)
            # parallel twin: ship tracer.root_id to the pool; workers
            # install TraceContext(seed, "batch", k, tracer.root_id).

    With a disabled recorder every method is a no-op, so the runners can
    call it unconditionally.
    """

    def __init__(self, telemetry, seed: Optional[int],
                 label: str = "run.batches", **attrs: object) -> None:
        self.telemetry = telemetry
        self.enabled = bool(getattr(telemetry, "enabled", False))
        self.seed = seed
        self.label = label
        self.attrs = attrs
        #: Span id the per-batch contexts re-parent under (None = disabled).
        self.root_id: Optional[int] = None
        self._scope = None
        self._root_span = None

    def __enter__(self) -> "BatchTracer":
        if self.enabled:
            run_ctx = TraceContext(self.seed, SCOPE_RUN, 0)
            self._scope = self.telemetry.spans.scoped(run_ctx)
            self._scope.__enter__()
            self._root_span = self.telemetry.span(self.label, **self.attrs)
            self._root_span.__enter__()
            self.root_id = self._root_span.span_id
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._root_span is not None:
            self._root_span.__exit__(exc_type, exc, tb)
            self._root_span = None
        if self._scope is not None:
            self._scope.__exit__(exc_type, exc, tb)
            self._scope = None

    def batch_context(self, batch_index: int) -> TraceContext:
        """The context a worker process installs for ``batch_index``."""
        return TraceContext(self.seed, SCOPE_BATCH, batch_index, self.root_id)

    @contextmanager
    def batch(self, batch_index: int) -> Iterator[None]:
        """Scope one serial batch under its deterministic context."""
        if not self.enabled:
            yield
            return
        with self.telemetry.spans.scoped(self.batch_context(batch_index)):
            yield
