"""Named-phase accounting for the hot paths (wall + CPU + call counts).

Spans answer *where did this run spend time* at the granularity of
whole operations; the phase profiler answers it at the granularity of
the inner kernels — enumeration chunk unpack/label/accumulate, the
Monte-Carlo labelling blocks, vote-search delta scoring, the serving
sequencer — where opening a span per invocation would distort the
measurement (millions of small sections) and overflow the span cap.

A phase is a named accumulator: entering it costs two clock reads, and
the profiler keeps only ``{name: (count, wall, cpu)}``, so recording a
million phase entries costs O(1) memory. The disabled path follows the
telemetry null-recorder pattern: :data:`NULL_PROFILER` hands out one
shared no-op context manager, so instrumented kernels pay a single
attribute lookup plus an empty ``with`` block — measured by
``scripts/check_telemetry_overhead.py`` against the same <5% budget as
the rest of the disabled recorder.

The live profiler rides on :class:`~repro.telemetry.recorder.Telemetry`
as ``telemetry.phases``; kernels without a plumbed recorder resolve it
through the module-level current recorder
(``repro.telemetry.recorder.current().phases``).
"""

from __future__ import annotations

import time
from typing import Dict, List

__all__ = [
    "PhaseProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "merge_phase_lists",
]


class _ActivePhase:
    """Context manager for one phase entry; created by ``profiler.phase``."""

    __slots__ = ("_profiler", "_name", "_wall0", "_cpu0")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_ActivePhase":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        self._profiler.add(self._name, wall, cpu)


class PhaseProfiler:
    """Accumulates (count, wall, cpu) per phase name."""

    enabled = True

    __slots__ = ("_acc",)

    def __init__(self) -> None:
        self._acc: Dict[str, List[float]] = {}

    def phase(self, name: str) -> _ActivePhase:
        return _ActivePhase(self, name)

    def add(self, name: str, wall: float, cpu: float,
            count: int = 1) -> None:
        entry = self._acc.get(name)
        if entry is None:
            self._acc[name] = [float(count), wall, cpu]
        else:
            entry[0] += count
            entry[1] += wall
            entry[2] += cpu

    def snapshot(self) -> List[Dict[str, object]]:
        """Plain-data phase table, sorted by name (deterministic)."""
        return [
            {"name": name, "count": int(entry[0]),
             "wall": entry[1], "cpu": entry[2]}
            for name, entry in sorted(self._acc.items())
        ]

    def reset(self) -> None:
        self._acc.clear()

    def __len__(self) -> int:
        return len(self._acc)


class _NullPhase:
    """Shared no-op phase: the disabled path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_PHASE = _NullPhase()


class NullProfiler:
    """The zero-overhead disabled profiler."""

    enabled = False

    __slots__ = ()

    def phase(self, name: str) -> _NullPhase:
        return _NULL_PHASE

    def add(self, name: str, wall: float, cpu: float, count: int = 1) -> None:
        pass

    def snapshot(self) -> List[Dict[str, object]]:
        return []

    def reset(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: The process-wide disabled profiler (NullTelemetry.phases).
NULL_PROFILER = NullProfiler()


def merge_phase_lists(phase_lists) -> List[Dict[str, object]]:
    """Sum plain-data phase tables by name (snapshot merging).

    Counts, wall, and cpu add; the result is sorted by name, so merging
    per-batch snapshots in batch order is deterministic.
    """
    acc: Dict[str, List[float]] = {}
    for phases in phase_lists:
        for entry in phases:
            name = str(entry["name"])
            slot = acc.get(name)
            if slot is None:
                acc[name] = [float(entry["count"]), float(entry["wall"]),
                             float(entry["cpu"])]
            else:
                slot[0] += float(entry["count"])
                slot[1] += float(entry["wall"])
                slot[2] += float(entry["cpu"])
    return [
        {"name": name, "count": int(slot[0]), "wall": slot[1], "cpu": slot[2]}
        for name, slot in sorted(acc.items())
    ]
