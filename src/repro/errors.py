"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still letting programming errors (``TypeError`` and friends raised by
numpy or the standard library) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "QuorumConstraintError",
    "VoteAssignmentError",
    "SimulationError",
    "ProtocolError",
    "DensityError",
    "OptimizationError",
    "SerializabilityError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class TopologyError(ReproError):
    """Raised for malformed network topologies (bad sites, links, votes)."""


class QuorumConstraintError(ReproError):
    """Raised when a quorum assignment violates the consistency constraints.

    The quorum consensus protocol requires ``q_r + q_w > T`` and
    ``q_w > T / 2`` (paper, section 2.1). Any assignment failing either
    condition could allow a stale read or two concurrent writes.
    """


class VoteAssignmentError(ReproError):
    """Raised for invalid vote assignments (negative votes, wrong length)."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulator is misconfigured."""


class ProtocolError(ReproError):
    """Raised when a replica-control protocol is driven illegally.

    Examples: installing a quorum reassignment from a component that does
    not hold a write quorum under the old assignment, or asking a protocol
    to evaluate an operation it does not know about.
    """


class DensityError(ReproError):
    """Raised for invalid probability densities (negative mass, wrong size)."""


class OptimizationError(ReproError):
    """Raised when a quorum optimizer is given an empty or infeasible range."""


class SerializabilityError(ReproError):
    """Raised when the replicated database detects a consistency violation.

    This should never fire when a valid quorum assignment is in force; it
    exists so that tests can prove the protocol machinery actually enforces
    one-copy serializability rather than assuming it.
    """
