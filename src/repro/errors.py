"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still letting programming errors (``TypeError`` and friends raised by
numpy or the standard library) propagate unchanged.

Fault-layer errors (:class:`FaultInjectionError`, :class:`InvariantViolation`,
:class:`BatchExecutionError`) additionally carry *structured context* — the
simulated time, a component snapshot, and the seed that reproduces the run —
via the :class:`ContextualError` mixin, so a chaos campaign can quarantine
and replay a failure instead of losing it in a formatted message string.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "ReproError",
    "ContextualError",
    "TopologyError",
    "QuorumConstraintError",
    "VoteAssignmentError",
    "SimulationError",
    "ShardingError",
    "ProtocolError",
    "DensityError",
    "OptimizationError",
    "SerializabilityError",
    "VerificationError",
    "FaultInjectionError",
    "InvariantViolation",
    "BatchExecutionError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ContextualError(ReproError):
    """A :class:`ReproError` carrying structured, machine-readable context.

    ``sim_time`` is the simulated time at which the error surfaced,
    ``seed`` whatever seed reproduces the run, and ``snapshot`` an
    arbitrary JSON-compatible dict (typically component labels plus
    site/link up-masks). All are optional; the formatted message appends
    whatever is present so plain ``str(exc)`` stays informative.
    """

    def __init__(
        self,
        message: str,
        *,
        sim_time: Optional[float] = None,
        seed: Optional[int] = None,
        snapshot: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.sim_time = sim_time
        self.seed = seed
        self.snapshot = dict(snapshot) if snapshot else {}
        parts = [message]
        if sim_time is not None:
            parts.append(f"[t={sim_time:.4g}]")
        if seed is not None:
            parts.append(f"[seed={seed}]")
        super().__init__(" ".join(parts))
        self.message = message

    def context(self) -> Dict[str, Any]:
        """The structured context as one JSON-compatible dict."""
        return {
            "message": self.message,
            "sim_time": self.sim_time,
            "seed": self.seed,
            "snapshot": self.snapshot,
        }

    def _pickle_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments that reconstruct this error via ``__init__``.

        Subclasses adding required keyword-only parameters must extend
        this, or the error cannot cross a process boundary: the default
        ``BaseException.__reduce__`` replays only positional ``args``,
        which loses keyword-only fields and raises ``TypeError`` on
        unpickle for any that are required.
        """
        return {
            "sim_time": self.sim_time,
            "seed": self.seed,
            "snapshot": self.snapshot or None,
        }

    def __reduce__(self):
        # The cause is pickled too (the default exception reduce drops
        # it): quarantine reporting reads ``__cause__`` for the original
        # error type and message.
        return (
            _rebuild_contextual,
            (type(self), self.message, self._pickle_kwargs(), self.__cause__),
        )


def _rebuild_contextual(
    cls: type,
    message: str,
    kwargs: Dict[str, Any],
    cause: Optional[BaseException],
) -> "ContextualError":
    """Unpickle helper for :class:`ContextualError` (see ``__reduce__``)."""
    exc = cls(message, **kwargs)
    exc.__cause__ = cause
    return exc


class TopologyError(ReproError):
    """Raised for malformed network topologies (bad sites, links, votes)."""


class QuorumConstraintError(ReproError):
    """Raised when a quorum assignment violates the consistency constraints.

    The quorum consensus protocol requires ``q_r + q_w > T`` and
    ``q_w > T / 2`` (paper, section 2.1). Any assignment failing either
    condition could allow a stale read or two concurrent writes.
    """


class VoteAssignmentError(ReproError):
    """Raised for invalid vote assignments (negative votes, wrong length)."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulator is misconfigured."""


class ShardingError(SimulationError):
    """Raised when the sharded multi-item engine is misconfigured."""


class ProtocolError(ReproError):
    """Raised when a replica-control protocol is driven illegally.

    Examples: installing a quorum reassignment from a component that does
    not hold a write quorum under the old assignment, or asking a protocol
    to evaluate an operation it does not know about.
    """


class DensityError(ReproError):
    """Raised for invalid probability densities (negative mass, wrong size)."""


class OptimizationError(ReproError):
    """Raised when a quorum optimizer is given an empty or infeasible range."""


class VerificationError(ReproError):
    """Raised when the differential-verification subsystem is misconfigured.

    Examples: an unknown verification profile or bug-injection name, a
    golden corpus file that is missing or structurally invalid, or a
    verification case whose parameters no engine can evaluate. Divergence
    between engines is *not* an error — it is reported as a failed check
    in the :class:`~repro.verification.differential.VerificationReport`.
    """


class SerializabilityError(ReproError):
    """Raised when the replicated database detects a consistency violation.

    This should never fire when a valid quorum assignment is in force; it
    exists so that tests can prove the protocol machinery actually enforces
    one-copy serializability rather than assuming it.
    """


class FaultInjectionError(ContextualError):
    """Raised when a fault schedule is malformed or cannot be applied.

    Examples: a scripted partition naming a site outside the topology, a
    flapping schedule with a non-positive period, or a correlated-failure
    group whose members overlap a component the stochastic processes were
    told to keep infallible.
    """


class InvariantViolation(ContextualError):
    """A broken safety invariant observed by the chaos monitor.

    During chaos runs the :class:`~repro.faults.monitor.InvariantMonitor`
    *records* these (with full event context) instead of raising them
    mid-batch; ``raise_on_violation=True`` turns them back into hard
    failures for tests. ``rule`` names the violated invariant
    (``"quorum-intersection"``, ``"write-write-intersection"``,
    ``"version-regression"``, ``"stale-assignment-grant"``,
    ``"concurrent-writes"``, ``"one-copy-serializability"``).
    """

    def __init__(self, message: str, *, rule: str = "unknown", **kwargs: Any) -> None:
        super().__init__(message, **kwargs)
        self.rule = rule

    def context(self) -> Dict[str, Any]:
        ctx = super().context()
        ctx["rule"] = self.rule
        return ctx

    def _pickle_kwargs(self) -> Dict[str, Any]:
        kwargs = super()._pickle_kwargs()
        kwargs["rule"] = self.rule
        return kwargs


class BatchExecutionError(ContextualError, SimulationError):
    """One simulated batch died mid-flight.

    Wraps whatever the protocol or accounting raised, annotated with the
    batch index, the seed that reproduces it, and the partial fault trace
    recorded up to the failure — everything the campaign runner needs to
    quarantine the batch for replay and keep the campaign going.
    Subclasses :class:`SimulationError` so existing ``except
    SimulationError`` call sites keep working.
    """

    def __init__(
        self,
        message: str,
        *,
        batch_index: int,
        trace: Optional[Any] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(message, **kwargs)
        self.batch_index = batch_index
        self.trace = trace

    def context(self) -> Dict[str, Any]:
        ctx = super().context()
        ctx["batch_index"] = self.batch_index
        ctx["trace_events"] = None if self.trace is None else len(self.trace)
        return ctx

    def _pickle_kwargs(self) -> Dict[str, Any]:
        kwargs = super()._pickle_kwargs()
        kwargs["batch_index"] = self.batch_index
        kwargs["trace"] = self.trace
        return kwargs
