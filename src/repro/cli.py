"""Command-line interface: ``python -m repro <command> ...``.

Commands mirror the paper's workflows so the library is usable without
writing Python:

- ``optimize``          — Figure-1 optimal quorum assignment from an
  analytic density (ring / complete / bus / tree), with an optional
  write-availability floor (section 5.4).
- ``simulate``          — run the discrete-event simulator for one
  protocol and print availability with confidence intervals.
- ``figure``            — regenerate one paper figure's series from a
  simulation run (the on-line density technique).
- ``rw-table``          — the section 5.5 read-write-ratio summary over
  several topologies.
- ``write-constraint``  — the section 5.4 floor sweep for one topology.
- ``chaos``             — scripted fault-injection campaign with invariant
  monitoring (DESIGN.md: "Chaos engineering the quorum layer").
- ``serve``             — the adaptive quorum serving layer: an asyncio
  service streaming client accesses against a replicated database while
  a scripted fault scenario runs, with online density estimation driving
  QR reassignments. Exit 0 = clean, 1 = SLO/invariant failure,
  2 = usage error.
- ``metrics``           — re-render a ``--telemetry`` JSONL stream as the
  human report (spans, phases, counters, quorum-decision audit).
- ``profile``           — run a canned workload (enumeration sweep,
  Monte-Carlo estimate, vote search, simulation, serving scenario) under
  the tracing recorder and export a Perfetto-loadable Chrome trace plus
  a span JSONL stream, with a phase table and critical path printed.
- ``shard``             — the vectorized N-item sharded simulation:
  Zipf/hotspot item skew, per-item vote vectors and read quorums, one
  shared component labelling per network state, optional per-class
  quorum optimization (``--optimize``), bitwise identical for any
  ``--workers``.
- ``verify``            — the differential-verification battery: every
  applicable engine pair, the metamorphic relations, and the golden
  regression corpus. Exit 0 = all checks pass, 1 = divergence,
  2 = configuration error.

``simulate`` and ``chaos`` accept ``--telemetry`` (and ``--telemetry-dir``)
to record metrics, spans, and the quorum-decision audit log, exporting a
Prometheus text file plus a JSON-lines stream after the run.

All commands accept ``--seed`` for exact reproducibility.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["main", "build_parser"]

_DENSITY_FAMILIES = ("ring", "complete", "bus")
_SCALES = ("test", "small", "paper", "bench")


def _scale(name: str):
    from repro.experiments.paper import PAPER_SCALE, SMALL_SCALE, TEST_SCALE
    from repro.experiments.paper import ExperimentScale

    if name == "bench":
        return ExperimentScale("bench", 101, 500.0, 12_000.0, 2,
                               initial_state="stationary")
    return {"test": TEST_SCALE, "small": SMALL_SCALE, "paper": PAPER_SCALE}[name]


def _analytic_density(family: str, sites: int, p: float, r: float) -> np.ndarray:
    # Route through the cached dispatcher so repeated CLI invocations of
    # the same operating point inside one process (sweeps, figures)
    # share density work with every other layer.
    from repro.analytic import closed_form_density

    return closed_form_density(family, sites, p, r)


# ----------------------------------------------------------------------
# Telemetry plumbing shared by simulate/chaos
# ----------------------------------------------------------------------

def _add_telemetry_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--telemetry", action="store_true",
                     help="record metrics, spans, and the quorum-decision "
                     "audit log; export Prometheus + JSONL after the run")
    sub.add_argument("--telemetry-dir", default=None, metavar="DIR",
                     help="where to write metrics.prom / events.jsonl "
                     "(implies --telemetry; default: ./telemetry)")


def _telemetry_from_args(args: argparse.Namespace):
    """A live recorder when requested, else None (the null path)."""
    if not (args.telemetry or args.telemetry_dir):
        return None
    from repro.telemetry.recorder import Telemetry

    return Telemetry()


def _export_telemetry(snapshot, args: argparse.Namespace) -> None:
    """Write the Prometheus + JSONL exports and say where they went."""
    from pathlib import Path

    from repro.telemetry.export import to_prometheus, write_jsonl

    directory = Path(args.telemetry_dir or "telemetry")
    directory.mkdir(parents=True, exist_ok=True)
    prom_path = directory / "metrics.prom"
    prom_path.write_text(to_prometheus(snapshot))
    jsonl_path = write_jsonl(snapshot, directory / "events.jsonl")
    print()
    print(f"telemetry : wrote {prom_path} and {jsonl_path}")
    print(f"telemetry : summarize with `repro metrics {jsonl_path}`")


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------

def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.quorum.availability import AvailabilityModel
    from repro.quorum.constraints import optimize_with_write_floor
    from repro.quorum.optimizer import optimal_read_quorum

    density = _analytic_density(args.family, args.sites, args.p, args.r)
    model = AvailabilityModel(density, density)
    if args.write_floor > 0.0:
        result = optimize_with_write_floor(model, args.alpha, args.write_floor)
    else:
        result = optimal_read_quorum(model, args.alpha, method=args.method)
    write = float(np.asarray(model.write_availability_at(result.read_quorum)))
    print(f"topology        : {args.family}-{args.sites} (p={args.p}, r={args.r})")
    print(f"alpha           : {args.alpha}")
    if args.write_floor > 0:
        print(f"write floor     : {args.write_floor}")
    print(f"optimal quorums : q_r={result.read_quorum}  q_w={result.write_quorum}")
    print(f"availability    : {result.availability:.4f}")
    print(f"write avail.    : {write:.4f}")
    print(f"method          : {result.method} ({result.evaluations} evaluations)")
    return 0


def _make_protocol(name: str, total_votes: int, read_quorum: Optional[int]):
    from repro.protocols.majority import MajorityConsensusProtocol
    from repro.protocols.primary_copy import PrimaryCopyProtocol
    from repro.protocols.quorum_consensus import QuorumConsensusProtocol
    from repro.protocols.read_one_write_all import ReadOneWriteAllProtocol
    from repro.quorum.assignment import QuorumAssignment

    if name == "majority":
        return MajorityConsensusProtocol(total_votes)
    if name == "rowa":
        return ReadOneWriteAllProtocol(total_votes)
    if name == "primary":
        return PrimaryCopyProtocol(0)
    if name == "quorum":
        if read_quorum is None:
            raise SystemExit("--read-quorum is required with --protocol quorum")
        return QuorumConsensusProtocol(
            QuorumAssignment.from_read_quorum(total_votes, read_quorum)
        )
    raise SystemExit(f"unknown protocol {name!r}")


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.simulation.runner import run_simulation
    from repro.telemetry.recorder import use as _use_telemetry

    scale = _scale(args.scale)
    config = scale.config(args.chords, alpha=args.alpha, seed=args.seed)
    protocol = _make_protocol(args.protocol, config.topology.total_votes,
                              args.read_quorum)
    telemetry = _telemetry_from_args(args)
    if telemetry is None:
        result = run_simulation(
            config,
            protocol,
            target_half_width=args.target_half_width,
            fail_fast=not args.keep_going,
            n_workers=args.workers,
        )
    else:
        # Scope the recorder so un-plumbed layers (the optimizer) see it.
        with _use_telemetry(telemetry):
            result = run_simulation(
                config,
                protocol,
                target_half_width=args.target_half_width,
                fail_fast=not args.keep_going,
                telemetry=telemetry,
                n_workers=args.workers,
            )
    print(result.summary())
    if result.telemetry is not None:
        _export_telemetry(result.telemetry, args)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures import figure_data
    from repro.experiments.report import render_figure

    fig = figure_data(chords=args.chords, scale=_scale(args.scale), seed=args.seed)
    if args.chart:
        from repro.experiments.charts import figure_chart

        print(figure_chart(fig))
    else:
        print(render_figure(fig, max_points=args.points))
    return 0


def _cmd_rw_table(args: argparse.Namespace) -> int:
    from repro.experiments.figures import figure_data
    from repro.experiments.paper import PAPER_ALPHAS
    from repro.experiments.report import render_rw_table
    from repro.experiments.tables import read_write_ratio_table

    models = []
    for chords in args.chords:
        fig = figure_data(chords=chords, scale=_scale(args.scale),
                          seed=args.seed + chords)
        models.append((fig.topology_name, fig.model))
    print(render_rw_table(read_write_ratio_table(models, PAPER_ALPHAS)))
    return 0


def _cmd_write_constraint(args: argparse.Namespace) -> int:
    from repro.experiments.figures import figure_data
    from repro.experiments.report import render_write_constraint_table
    from repro.experiments.tables import write_constraint_table

    fig = figure_data(chords=args.chords, scale=_scale(args.scale), seed=args.seed)
    rows = write_constraint_table(fig.model, args.alpha, write_floors=args.floors)
    print(render_write_constraint_table(rows, args.alpha, fig.topology_name))
    return 0


def _cmd_votes(args: argparse.Namespace) -> int:
    from repro.quorum.vote_optimizer import optimize_votes
    from repro.topology.generators import ring_with_chords

    topology = ring_with_chords(args.sites, args.chords)
    p = np.full(args.sites, args.p)
    if args.flaky_every > 0:
        p[:: args.flaky_every] = args.flaky_p
    result = optimize_votes(
        topology,
        alpha=args.alpha,
        p=p,
        r=args.r,
        total_votes=args.total_votes,
        method=args.method,
        n_samples=args.samples,
        seed=args.seed,
    )
    print(f"topology       : {topology.name}")
    print(f"site p         : {p.tolist()}")
    print(f"vote vector    : {list(result.votes)}")
    print(f"quorums        : {result.quorum.assignment}")
    print(f"availability   : {result.availability:.4f}")
    print(f"method         : {result.method} ({result.candidates_evaluated} candidates)")
    return 0


def _cmd_shootout(args: argparse.Namespace) -> int:
    from repro.protocols.dynamic_voting import DynamicVotingProtocol
    from repro.protocols.majority import MajorityConsensusProtocol
    from repro.protocols.primary_copy import PrimaryCopyProtocol
    from repro.protocols.read_one_write_all import ReadOneWriteAllProtocol
    from repro.simulation.engine import SimulationEngine
    from repro.simulation.trace import TraceReplayer
    from repro.topology.generators import paper_topology

    scale = _scale(args.scale)
    limit = scale.n_sites * (scale.n_sites - 3) // 2
    topology = paper_topology(min(args.chords, limit), n_sites=scale.n_sites)
    config = scale.config(args.chords, alpha=args.alpha, seed=args.seed,
                          topology=topology)
    T = topology.total_votes
    engine = SimulationEngine(config, MajorityConsensusProtocol(T), record_trace=True)
    batch = engine.run_batch(0)
    replayer = TraceReplayer(topology, batch.trace)
    print(f"recorded {len(batch.trace)} events over "
          f"{batch.trace.duration():.1f} time units on {topology.name}")
    print(f"time-weighted ACC at alpha = {args.alpha}, same history:")
    contenders = [
        ("majority", MajorityConsensusProtocol(T)),
        ("rowa", ReadOneWriteAllProtocol(T)),
        ("primary-copy", PrimaryCopyProtocol(0)),
        ("dynamic-voting", DynamicVotingProtocol(topology.n_sites)),
    ]
    for name, protocol in contenders:
        acc = replayer.availability_of(protocol, alpha=args.alpha)
        print(f"  {name:<16s} {acc:.4f}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import render_campaign, run_campaign

    result = run_campaign(
        scale=_scale(args.scale),
        seed=args.seed,
        include_fully_connected=args.full,
    )
    print(render_campaign(result))
    return 0


_CHAOS_SCENARIOS = ("partition", "flap", "cascade", "correlated", "mixed")


def _chaos_schedule(scenario: str, n_sites: int, horizon: float):
    """A canned adversarial scenario scaled to the batch horizon."""
    from repro.faults.schedule import (
        CascadingFailure,
        CorrelatedFailure,
        FaultSchedule,
        FlappingSite,
        ScriptedPartition,
    )

    half = list(range(n_sites // 2))
    injectors = {
        # Split half the sites off, merge back, then split differently —
        # the section-2.2 merge/split stressor.
        "partition": [
            ScriptedPartition(0.2 * horizon, [half], heal_at=0.45 * horizon),
            ScriptedPartition(0.55 * horizon, [half[::2]], heal_at=0.8 * horizon),
        ],
        "flap": [
            FlappingSite(0, period=horizon / 10.0, until=0.9 * horizon),
            FlappingSite(1, period=horizon / 7.0, until=0.9 * horizon),
        ],
        "cascade": [
            CascadingFailure(0.2 * horizon, half[:3] or [0],
                             delay=horizon / 20.0, heal_at=0.7 * horizon),
        ],
        "correlated": [
            CorrelatedFailure(sites=[0, 1], mean_interval=horizon / 4.0,
                              until=0.85 * horizon, down_time=horizon / 20.0),
        ],
    }
    injectors["mixed"] = (
        injectors["partition"][:1]
        + [FlappingSite(n_sites - 1, period=horizon / 8.0, until=0.9 * horizon)]
        + [CascadingFailure(0.5 * horizon, [n_sites - 2, n_sites - 3],
                            delay=horizon / 30.0, heal_at=0.85 * horizon)]
    )
    return FaultSchedule(injectors[scenario])


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import run_chaos_campaign, unchecked_assignment
    from repro.faults.monitor import InvariantMonitor
    from repro.protocols.quorum_consensus import QuorumConsensusProtocol

    scale = _scale(args.scale)
    config = scale.config(args.chords, alpha=args.alpha, seed=args.seed)
    topology = config.topology
    horizon = config.warmup_time + config.batch_time
    schedule = _chaos_schedule(args.scenario, topology.n_sites, horizon)
    config = config.with_fault_schedule(schedule)
    if args.broken:
        # Deliberately violate q_r + q_w > T (and q_w > T/2): the campaign
        # must FAIL with quorum-intersection violations, proving the
        # monitor catches what construction-time validation would.
        T = topology.total_votes
        protocol = QuorumConsensusProtocol(unchecked_assignment(T, 1, T // 2))
    else:
        protocol = _make_protocol(args.protocol, topology.total_votes,
                                  args.read_quorum)
    telemetry = _telemetry_from_args(args)
    monitor = InvariantMonitor(max_records=args.max_violations,
                               telemetry=telemetry)
    if telemetry is None:
        report = run_chaos_campaign(
            config,
            protocol,
            n_batches=args.batches,
            monitor=monitor,
            fail_fast=args.fail_fast,
            n_workers=args.workers,
        )
    else:
        from repro.telemetry.recorder import use as _use_telemetry

        with _use_telemetry(telemetry):
            report = run_chaos_campaign(
                config,
                protocol,
                n_batches=args.batches,
                monitor=monitor,
                fail_fast=args.fail_fast,
                telemetry=telemetry,
                n_workers=args.workers,
            )
    print(report.summary())
    if report.telemetry is not None:
        _export_telemetry(report.telemetry, args)
    if args.show_violations and report.violations:
        print()
        for record in report.violations[: args.show_violations]:
            print(f"  {record}")
        hidden = len(report.violations) - args.show_violations
        if hidden > 0:
            print(f"  ... and {hidden} more")
    return 0 if report.passed else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.quorum.assignment import QuorumAssignment
    from repro.serving import ServeConfig, run_serve, serving_schedule
    from repro.simulation.workload import AccessWorkload
    from repro.topology.generators import ring_with_chords

    if args.duration_short:
        # The CI smoke preset: small enough for seconds-scale runs, large
        # enough to cross the estimator's min-observation window and see
        # at least one reassignment under the correlated scenario.
        args.accesses = 20_000
        args.clients = 64
    topology = ring_with_chords(args.sites, args.chords)
    workload = AccessWorkload.uniform(args.sites, args.alpha)
    config = ServeConfig(
        topology=topology,
        workload=workload,
        initial_assignment=QuorumAssignment.from_read_quorum(
            topology.total_votes, args.read_quorum
        ),
        n_requests=args.accesses,
        n_clients=args.clients,
        seed=args.seed,
        scenario=args.scenario,
    )
    config.fault_schedule = serving_schedule(args.scenario, topology,
                                             config.horizon)
    telemetry = _telemetry_from_args(args)
    if telemetry is None:
        report = run_serve(config)
    else:
        from repro.telemetry.recorder import use as _use_telemetry

        with _use_telemetry(telemetry):
            report = run_serve(config, telemetry)
    report.min_availability = args.min_availability
    report.max_p99 = args.max_p99
    print(report.summary())
    if telemetry is not None:
        _export_telemetry(telemetry.snapshot(), args)
    return report.exit_code


def _cmd_metrics(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.errors import ReproError
    from repro.telemetry.export import load_snapshot_jsonl, render_report

    path = Path(args.path)
    if path.is_dir():
        path = path / "events.jsonl"
    if not path.exists():
        raise ReproError(
            f"no telemetry stream at {path}; run a command with --telemetry "
            "(or --telemetry-dir) first"
        )
    snapshot = load_snapshot_jsonl(path)
    print(render_report(snapshot))
    return 0


# ----------------------------------------------------------------------
# repro profile — canned workloads under a tracing recorder
# ----------------------------------------------------------------------

def _profile_enumeration(args: argparse.Namespace, telemetry) -> None:
    from repro.analytic import cache as density_cache
    from repro.analytic.enumeration import enumerate_density_matrix
    from repro.topology.generators import ring

    # Bypass the density cache so the kernel (and its phases) actually
    # run; a warm cache would profile a dictionary lookup.
    with density_cache.disabled():
        enumerate_density_matrix(ring(args.sites or 10), 0.96, 0.96,
                                 backend=args.backend)


def _profile_montecarlo(args: argparse.Namespace, telemetry) -> None:
    from repro.analytic.montecarlo import montecarlo_density_matrix
    from repro.topology.generators import ring_with_chords

    montecarlo_density_matrix(ring_with_chords(args.sites or 13, 2),
                              0.9, 0.9, n_samples=args.samples,
                              seed=args.seed)


def _profile_votes(args: argparse.Namespace, telemetry) -> None:
    from repro.quorum.vote_optimizer import optimize_votes
    from repro.topology.generators import ring_with_chords

    sites = args.sites or 12
    optimize_votes(ring_with_chords(sites, 2), alpha=0.5,
                   p=np.full(sites, 0.95), r=0.95, method="hillclimb",
                   n_samples=args.samples, seed=args.seed)


def _profile_simulate(args: argparse.Namespace, telemetry):
    from repro.simulation.runner import run_simulation

    config = _scale("test").config(2, alpha=0.5, seed=args.seed)
    protocol = _make_protocol("majority", config.topology.total_votes, None)
    result = run_simulation(config, protocol, telemetry=telemetry,
                            n_workers=args.workers)
    # Worker spans live only in the run's merged snapshot — the
    # dispatcher's live recorder never absorbs them. Hand the merge
    # back so the exported tree is identical for any --workers.
    return result.telemetry


def _profile_serve(args: argparse.Namespace, telemetry) -> None:
    from repro.quorum.assignment import QuorumAssignment
    from repro.serving import ServeConfig, run_serve, serving_schedule
    from repro.simulation.workload import AccessWorkload
    from repro.topology.generators import ring_with_chords

    # The `serve --duration-short` smoke preset, with phase profiling on.
    sites = args.sites or 13
    topology = ring_with_chords(sites, 2)
    config = ServeConfig(
        topology=topology,
        workload=AccessWorkload.uniform(sites, 0.7),
        initial_assignment=QuorumAssignment.from_read_quorum(
            topology.total_votes, 1
        ),
        n_requests=args.accesses,
        n_clients=64,
        seed=args.seed,
        scenario="correlated",
        profile_phases=True,
    )
    config.fault_schedule = serving_schedule("correlated", topology,
                                             config.horizon)
    run_serve(config, telemetry)


_PROFILE_TARGETS = {
    "enumeration": _profile_enumeration,
    "montecarlo": _profile_montecarlo,
    "votes": _profile_votes,
    "simulate": _profile_simulate,
    "serve": _profile_serve,
}


def _cmd_profile(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.telemetry.recorder import Telemetry
    from repro.telemetry.recorder import use as _use_telemetry
    from repro.telemetry.spans import SpanRecord
    from repro.tracing.export import (
        critical_path,
        span_tree_digest,
        top_phases,
        write_chrome_trace,
        write_span_jsonl,
    )

    runner = _PROFILE_TARGETS[args.target]
    telemetry = Telemetry(max_spans=50_000)
    with _use_telemetry(telemetry):
        with telemetry.span(f"profile.{args.target}", seed=args.seed):
            merged = runner(args, telemetry)
    # A runner may return a pre-merged snapshot (cross-process targets);
    # otherwise snapshot the recorder the workload ran under.
    snapshot = merged if merged is not None else telemetry.snapshot()
    records = [SpanRecord.from_dict(span) for span in snapshot.spans]

    out = Path(args.out)
    if out.parent != Path("."):
        out.parent.mkdir(parents=True, exist_ok=True)
    trace_path = out.with_name(out.name + ".trace.json")
    write_chrome_trace(trace_path, records, phases=snapshot.phases,
                       meta={"target": args.target, "seed": args.seed})
    spans_path = out.with_name(out.name + ".spans.jsonl")
    with spans_path.open("w", encoding="utf-8") as handle:
        write_span_jsonl(handle, records)

    print(f"profiled {args.target} (seed {args.seed}): "
          f"{len(records)} spans, {len(snapshot.phases)} phases")
    print(f"  chrome trace : {trace_path}  "
          "(load in Perfetto or chrome://tracing)")
    print(f"  span stream  : {spans_path}")
    print(f"  tree digest  : {span_tree_digest(records)}")
    if snapshot.phases:
        print()
        print("phases (top by cumulative wall time)")
        for entry in top_phases(snapshot.phases, limit=args.top):
            print(f"  {entry['name']:<28} calls={entry['count']:>8} "
                  f"wall={float(entry['wall']):.4f}s "
                  f"cpu={float(entry['cpu']):.4f}s")
    path = critical_path(records)
    if len(path) > 1:
        print()
        print("critical path (max-wall chain)")
        for depth, record in enumerate(path):
            print(f"  {'  ' * depth}{record.name}  wall={record.wall:.4f}s")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.analytic import cache as density_cache

    if args.exercise:
        from repro.analytic import closed_form_density
        from repro.analytic.enumeration import enumerate_density_matrix
        from repro.topology.generators import ring

        topo = ring(5)
        for _ in range(2):  # second pass hits what the first one filled
            for family in ("ring", "complete", "bus"):
                for rel in (0.9, 0.96):
                    closed_form_density(family, 6, rel, rel)
            enumerate_density_matrix(topo, 0.9, 0.9)

    stats = density_cache.stats()
    state = "enabled" if density_cache.enabled() else "disabled"
    print(f"density cache: {state} "
          f"(set {density_cache.ENV_KNOB}=0 to disable)")
    print(f"  entries: {stats.entries} (capacity {density_cache.get_cache().max_entries})")
    print(f"  hits:    {stats.hits}")
    print(f"  misses:  {stats.misses}")
    print(f"  hit rate: {stats.hit_rate:.1%}")
    if stats.by_layer:
        print("  by layer:")
        for layer, (hits, misses) in sorted(stats.by_layer.items()):
            print(f"    {layer:<12} hits={hits} misses={misses}")
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    from repro.engines import list_engines

    specs = list_engines(
        kind=args.kind,
        capability=args.capability,
    )
    if not specs:
        print("no engines match the given filters")
        return 0
    print(f"registered engines ({len(specs)}):")
    for spec in specs:
        caps = ", ".join(sorted(spec.capabilities)) or "-"
        backend = f" backend={spec.backend}" if spec.backend else ""
        print(f"  {spec.name:<16} kind={spec.kind:<14}{backend} caps=[{caps}]")
        print(f"    {spec.description}")
        if spec.cost_hint:
            print(f"    cost: {spec.cost_hint}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verification import run_profile, write_corpus

    if args.regenerate_golden:
        path = write_corpus()
        print(f"golden corpus regenerated at {path}")
        print("review the diff before committing: these values gate every "
              "future `repro verify` run")
        return 0
    telemetry = _telemetry_from_args(args)
    if telemetry is None:
        report = run_profile(args.profile, bug=args.inject_bug,
                             golden=not args.no_golden)
    else:
        from repro.telemetry.recorder import use as _use_telemetry

        with _use_telemetry(telemetry):
            report = run_profile(args.profile, bug=args.inject_bug,
                                 golden=not args.no_golden)
    print(report.summary(drift_top=args.drift_top))
    if telemetry is not None:
        _export_telemetry(telemetry.snapshot(), args)
    return 0 if report.passed else 1


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.errors import ShardingError
    from repro.sharding import (
        ItemWorkload,
        ShardConfig,
        optimize_shards,
        run_sharded,
    )
    from repro.topology.generators import bus, fully_connected, ring

    if args.items < 1:
        raise ShardingError(f"--items must be >= 1, got {args.items}")
    builders = {"ring": ring, "complete": fully_connected, "bus": bus}
    topology = builders[args.family](args.sites)
    n_sites = topology.n_sites

    if args.alpha_classes:
        alphas = np.resize(
            np.asarray(args.alpha_classes, dtype=np.float64), args.items
        )
    else:
        alphas = np.full(args.items, args.alpha)

    if args.dist == "zipf":
        workload = ItemWorkload.zipf(
            args.items, n_sites, alphas, exponent=args.exponent
        )
    elif args.dist == "hotspot":
        workload = ItemWorkload.hotspot(
            args.items, n_sites, alphas,
            hot_items=range(min(args.hot, args.items)),
            hot_fraction=args.hot_fraction,
        )
    else:
        workload = ItemWorkload.uniform(args.items, n_sites, alphas)

    read_quorums = None
    plan = None
    if args.optimize:
        plan = optimize_shards(
            topology, alphas, args.p, args.r, seed=args.seed
        )
        read_quorums = plan.read_quorums

    config = ShardConfig(
        topology=topology,
        workload=workload,
        read_quorums=read_quorums,
        warmup_accesses=args.warmup,
        accesses_per_batch=args.accesses,
        n_batches=args.batches,
        seed=args.seed,
    )
    stats: dict = {}
    result = run_sharded(
        config,
        engine=args.engine,
        n_workers=args.workers,
        chunk_size=args.chunk_size,
        transport_stats=stats,
    )

    print(f"sharded run     : {args.family}-{args.sites}, {args.items} items "
          f"({args.dist}), engine={args.engine}, workers={args.workers} "
          f"[{stats.get('transport', 'serial')}]")
    if plan is not None:
        print(f"optimization    : {plan.optimizations_run} per-class runs "
              f"for {plan.n_items} items")
        for group, best in zip(plan.groups, plan.group_results):
            print(f"  class alpha={group.alpha:g} ({group.size} items): "
                  f"q_r={best.read_quorum}, A*={best.availability:.4f}")
    print(f"batches         : {args.batches} x {args.accesses:g} accesses "
          f"(+ {args.warmup:g} warm-up)")
    submitted = int(result.reads_submitted.sum() + result.writes_submitted.sum())
    print(f"availability    : {result.availability:.4f} "
          f"(pooled ACC over {submitted} accesses)")
    item_acc = result.item_availability
    print(f"item ACC        : min {item_acc.min():.4f} / "
          f"mean {item_acc.mean():.4f} / max {item_acc.max():.4f}")
    print(f"SURV            : read {result.surv_read.mean():.4f}, "
          f"write {result.surv_write.mean():.4f} (item mean)")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validation import validate_reproduction

    report = validate_reproduction(seed=args.seed)
    print(report)
    return 0 if report.passed else 1


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal quorum assignments for replicated distributed databases "
        "(Johnson & Raab, ICPP 1991 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    opt = sub.add_parser("optimize", help="Figure-1 optimal quorum assignment")
    opt.add_argument("--family", choices=_DENSITY_FAMILIES, default="ring")
    opt.add_argument("--sites", type=int, default=101)
    opt.add_argument("--p", type=float, default=0.96, help="site reliability")
    opt.add_argument("--r", type=float, default=0.96, help="link/bus reliability")
    opt.add_argument("--alpha", type=float, default=0.5, help="read fraction")
    opt.add_argument("--write-floor", type=float, default=0.0,
                     help="minimum write availability A_w (section 5.4)")
    opt.add_argument("--method", default="exhaustive",
                     choices=("exhaustive", "endpoints", "golden", "brent"))
    opt.set_defaults(func=_cmd_optimize)

    sim = sub.add_parser("simulate", help="discrete-event availability simulation")
    sim.add_argument("--chords", type=int, default=2,
                     help="paper topology index (ring + this many chords)")
    sim.add_argument("--alpha", type=float, default=0.5)
    sim.add_argument("--protocol", default="majority",
                     choices=("majority", "rowa", "primary", "quorum"))
    sim.add_argument("--read-quorum", type=int, default=None,
                     help="q_r for --protocol quorum (q_w = T - q_r + 1)")
    sim.add_argument("--scale", choices=_SCALES, default="bench")
    sim.add_argument("--target-half-width", type=float, default=None,
                     help="add batches until the 95%% CI half-width reaches this")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--workers", type=int, default=1, metavar="N",
                     help="fan batches out over N worker processes; "
                     "aggregates are bitwise identical for any N")
    group = sim.add_mutually_exclusive_group()
    group.add_argument("--fail-fast", dest="keep_going", action="store_false",
                       help="abort the whole run on the first batch error (default)")
    group.add_argument("--keep-going", dest="keep_going", action="store_true",
                       help="quarantine failed batches (with seed + fault trace "
                       "for replay) and continue")
    _add_telemetry_args(sim)
    sim.set_defaults(func=_cmd_simulate, keep_going=False)

    fig = sub.add_parser("figure", help="regenerate one paper figure's series")
    fig.add_argument("--chords", type=int, default=0)
    fig.add_argument("--scale", choices=_SCALES, default="bench")
    fig.add_argument("--points", type=int, default=12)
    fig.add_argument("--chart", action="store_true",
                     help="render an ASCII line chart instead of the table")
    fig.add_argument("--seed", type=int, default=0)
    fig.set_defaults(func=_cmd_figure)

    rw = sub.add_parser("rw-table", help="section 5.5 read-write-ratio summary")
    rw.add_argument("--chords", type=int, nargs="+", default=[0, 2, 16, 256])
    rw.add_argument("--scale", choices=_SCALES, default="bench")
    rw.add_argument("--seed", type=int, default=0)
    rw.set_defaults(func=_cmd_rw_table)

    wc = sub.add_parser("write-constraint", help="section 5.4 floor sweep")
    wc.add_argument("--chords", type=int, default=2)
    wc.add_argument("--alpha", type=float, default=0.75)
    wc.add_argument("--floors", type=float, nargs="+",
                    default=[0.0, 0.05, 0.1, 0.2, 0.4])
    wc.add_argument("--scale", choices=_SCALES, default="bench")
    wc.add_argument("--seed", type=int, default=0)
    wc.set_defaults(func=_cmd_write_constraint)

    votes = sub.add_parser("votes", help="optimize the vote assignment too")
    votes.add_argument("--sites", type=int, default=12)
    votes.add_argument("--chords", type=int, default=2)
    votes.add_argument("--alpha", type=float, default=0.5)
    votes.add_argument("--p", type=float, default=0.95)
    votes.add_argument("--r", type=float, default=0.95)
    votes.add_argument("--flaky-every", type=int, default=0,
                       help="mark every k-th site flaky (0 = none)")
    votes.add_argument("--flaky-p", type=float, default=0.55)
    votes.add_argument("--total-votes", type=int, default=None)
    votes.add_argument("--method", choices=("hillclimb", "exhaustive"),
                       default="hillclimb")
    votes.add_argument("--samples", type=int, default=2_000)
    votes.add_argument("--seed", type=int, default=0)
    votes.set_defaults(func=_cmd_votes)

    shoot = sub.add_parser(
        "shootout",
        help="replay one failure trace under every protocol",
    )
    shoot.add_argument("--chords", type=int, default=2)
    shoot.add_argument("--alpha", type=float, default=0.5)
    shoot.add_argument("--scale", choices=_SCALES, default="test")
    shoot.add_argument("--seed", type=int, default=0)
    shoot.set_defaults(func=_cmd_shootout)

    camp = sub.add_parser(
        "campaign",
        help="regenerate the paper's whole evaluation section",
    )
    camp.add_argument("--scale", choices=_SCALES, default="bench")
    camp.add_argument("--seed", type=int, default=0)
    camp.add_argument("--full", action="store_true",
                      help="include the fully-connected topology (slow)")
    camp.set_defaults(func=_cmd_campaign)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection campaign with invariant monitoring",
    )
    chaos.add_argument("--scenario", choices=_CHAOS_SCENARIOS, default="mixed")
    chaos.add_argument("--chords", type=int, default=2)
    chaos.add_argument("--alpha", type=float, default=0.5)
    chaos.add_argument("--protocol", default="majority",
                       choices=("majority", "rowa", "primary", "quorum"))
    chaos.add_argument("--read-quorum", type=int, default=None)
    chaos.add_argument("--broken", action="store_true",
                       help="inject a deliberately invalid quorum assignment "
                       "(q_r + q_w <= T); the campaign must FAIL")
    chaos.add_argument("--batches", type=int, default=None,
                       help="batches to run (default: the scale's n_batches)")
    chaos.add_argument("--scale", choices=_SCALES, default="test")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--workers", type=int, default=1, metavar="N",
                       help="fan batches out over N worker processes; the "
                       "report is deterministic for any N")
    chaos.add_argument("--max-violations", type=int, default=1000,
                       help="cap on recorded violation records")
    chaos.add_argument("--show-violations", type=int, default=5,
                       help="print up to this many violation records")
    chaos_group = chaos.add_mutually_exclusive_group()
    chaos_group.add_argument("--fail-fast", dest="fail_fast", action="store_true",
                             help="abort on the first batch error instead of "
                             "quarantining it")
    chaos_group.add_argument("--keep-going", dest="fail_fast", action="store_false",
                             help="quarantine failed batches and continue (default)")
    _add_telemetry_args(chaos)
    chaos.set_defaults(func=_cmd_chaos, fail_fast=False)

    serve = sub.add_parser(
        "serve",
        help="adaptive quorum serving: asyncio service + chaos + online "
        "QR reassignment (exit 0 clean / 1 SLO or invariant failure / "
        "2 usage error)",
    )
    serve.add_argument("--sites", type=int, default=13)
    serve.add_argument("--chords", type=int, default=2,
                       help="ring chords (paper topology family)")
    serve.add_argument("--alpha", type=float, default=0.7,
                       help="read fraction of the client stream")
    serve.add_argument("--read-quorum", type=int, default=1,
                       help="initial q_r (q_w = T - q_r + 1); the adaptive "
                       "loop reassigns from here")
    serve.add_argument("--accesses", type=int, default=1_000_000,
                       help="total client accesses to stream")
    serve.add_argument("--clients", type=int, default=1_000,
                       help="concurrent client feeders (pacing only; results "
                       "are bitwise identical for any value)")
    from repro.serving.scenarios import SERVE_SCENARIOS as _SERVE_SCENARIOS

    serve.add_argument("--scenario", choices=_SERVE_SCENARIOS,
                       default="correlated",
                       help="scripted fault scenario injected during serving")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--duration-short", action="store_true",
                       help="CI smoke preset: 20k accesses, 64 clients")
    serve.add_argument("--min-availability", type=float, default=None,
                       metavar="A",
                       help="SLO gate: fail (exit 1) if request-level "
                       "availability ends below A")
    serve.add_argument("--max-p99", type=float, default=None, metavar="SECS",
                       help="SLO gate: fail (exit 1) if p99 grant latency "
                       "(simulated seconds) exceeds SECS")
    _add_telemetry_args(serve)
    serve.set_defaults(func=_cmd_serve)

    metrics = sub.add_parser(
        "metrics",
        help="summarize a --telemetry JSONL stream (spans, counters, audit)",
    )
    metrics.add_argument("path", help="events.jsonl file, or the directory "
                         "--telemetry-dir wrote it to")
    metrics.set_defaults(func=_cmd_metrics)

    profile = sub.add_parser(
        "profile",
        help="run a canned workload under the tracing recorder and export "
        "a Chrome trace (Perfetto-loadable) plus a span JSONL stream",
    )
    profile.add_argument("target", choices=sorted(_PROFILE_TARGETS),
                         help="which hot path to profile")
    profile.add_argument("--out", default="profile", metavar="PREFIX",
                         help="output prefix; writes PREFIX.trace.json and "
                         "PREFIX.spans.jsonl (default: profile)")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--sites", type=int, default=None,
                         help="topology size (default: per-target preset)")
    profile.add_argument("--samples", type=int, default=20_000,
                         help="Monte-Carlo / vote-search sample budget")
    profile.add_argument("--accesses", type=int, default=20_000,
                         help="client accesses for the serve target")
    profile.add_argument("--workers", type=int, default=1, metavar="N",
                         help="worker processes for the simulate target; "
                         "the span-tree digest is identical for any N")
    profile.add_argument("--backend", default=None,
                         choices=["auto", "compiled", "vectorized",
                                  "reference"],
                         help="enumeration backend for the enumeration "
                         "target (default: REPRO_ENUM_BACKEND, then auto)")
    profile.add_argument("--top", type=int, default=10, metavar="N",
                         help="phases to print in the summary table")
    profile.set_defaults(func=_cmd_profile)

    cache_p = sub.add_parser(
        "cache", help="cross-layer density cache statistics"
    )
    cache_p.add_argument(
        "--exercise", action="store_true",
        help="run a small closed-form + enumeration workload twice first, "
        "so the printed statistics show warm-cache behaviour",
    )
    cache_p.set_defaults(func=_cmd_cache)

    val = sub.add_parser(
        "validate",
        help="run the reproduction-fidelity check battery (EXPERIMENTS.md)",
    )
    val.add_argument("--seed", type=int, default=0)
    val.set_defaults(func=_cmd_validate)

    verify = sub.add_parser(
        "verify",
        help="differential verification: cross-engine pairs, metamorphic "
        "relations, golden corpus (exit 0 pass / 1 divergence / 2 config "
        "error)",
    )
    verify.add_argument("--profile", choices=("quick", "full"), default="quick",
                        help="case battery to run (quick = per-PR gate)")
    verify.add_argument("--inject-bug", default=None, metavar="NAME",
                        help="wire a deliberate defect (e.g. "
                        "'quorum-off-by-one') into the closed-form engine; "
                        "a healthy harness must then exit 1")
    verify.add_argument("--regenerate-golden", action="store_true",
                        help="recompute and overwrite the locked golden "
                        "corpus instead of checking against it")
    verify.add_argument("--no-golden", action="store_true",
                        help="skip the golden-corpus drift check")
    verify.add_argument("--drift-top", type=int, default=5, metavar="N",
                        help="show the N checks closest to their tolerance")
    _add_telemetry_args(verify)
    verify.set_defaults(func=_cmd_verify)

    shard = sub.add_parser(
        "shard",
        help="vectorized N-item sharded simulation with per-shard "
        "quorum optimization",
    )
    shard.add_argument("--family", choices=_DENSITY_FAMILIES, required=True,
                       help="topology family (required)")
    shard.add_argument("--sites", type=int, default=9)
    shard.add_argument("--items", type=int, default=100, metavar="N",
                       help="number of replicated items")
    shard.add_argument("--dist", choices=("uniform", "zipf", "hotspot"),
                       default="zipf", help="item-access skew")
    shard.add_argument("--exponent", type=float, default=1.0,
                       help="Zipf exponent for --dist zipf")
    shard.add_argument("--hot", type=int, default=1,
                       help="number of hot items for --dist hotspot")
    shard.add_argument("--hot-fraction", type=float, default=0.8,
                       help="traffic share of the hot items")
    shard.add_argument("--alpha", type=float, default=0.5,
                       help="read fraction for every item")
    shard.add_argument("--alpha-classes", type=float, nargs="+", default=None,
                       metavar="A", help="per-class read fractions, tiled "
                       "over the items (defines the workload classes)")
    shard.add_argument("--batches", type=int, default=3)
    shard.add_argument("--accesses", type=float, default=5_000.0,
                       help="accesses per measured batch")
    shard.add_argument("--warmup", type=float, default=500.0)
    shard.add_argument("--engine", choices=("vectorized", "reference"),
                       default="vectorized")
    shard.add_argument("--chunk-size", type=int, default=None, metavar="N",
                       help="vectorized item-chunk bound (any value is "
                       "bitwise identical)")
    shard.add_argument("--workers", type=int, default=1, metavar="N",
                       help="fan batches over N processes; bitwise "
                       "identical for any N")
    shard.add_argument("--optimize", action="store_true",
                       help="run the per-class quorum optimization and "
                       "simulate the optimized assignment")
    shard.add_argument("--p", type=float, default=0.96,
                       help="site reliability for --optimize")
    shard.add_argument("--r", type=float, default=0.96,
                       help="link reliability for --optimize")
    shard.add_argument("--seed", type=int, default=0)
    shard.set_defaults(func=_cmd_shard)

    engines_p = sub.add_parser(
        "engines",
        help="list the registered availability engines with capability "
        "flags and cost hints",
    )
    engines_p.add_argument(
        "--kind", choices=("model", "simulation", "density-model"),
        default=None, help="only engines of this kind",
    )
    engines_p.add_argument(
        "--capability", default=None, metavar="FLAG",
        help="only engines carrying this capability flag (e.g. 'exact', "
        "'variance-reduced')",
    )
    engines_p.set_defaults(func=_cmd_engines)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code (2 on library errors)."""
    from repro.errors import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
