"""The dynamic quorum reassignment protocol, QR (paper, section 2.2).

Each copy of the data item carries a quorum assignment and a *version
number*, initially 1 and incremented with every assignment change.
Two rules make reassignment safe:

1. **Installation rule.** A new assignment may be installed only from a
   component that possesses at least a write quorum of votes *under the
   effective (old) assignment*. Since write quorums pairwise intersect and
   a write quorum dominates every read quorum, that component is the only
   one currently able to grant any access at all.
2. **Propagation rule.** The assignment in effect for an access submitted
   to site ``x`` is the one with the highest version number in ``x``'s
   component; whenever components merge, every member adopts that newest
   assignment. Hence no component can regain access without first learning
   the newest assignment — a component lacking it holds fewer than
   ``q_r^{old}`` votes, and since ``q_w^{old} > q_r^{old}``, fewer than a
   write quorum too.

This class keeps per-site ``(assignment, version)`` state, propagates on
every network change, evaluates grant masks per component under the
effective assignment, and exposes :meth:`try_reassign` for policy layers
(e.g. the Figure-1 optimizer fed by an on-line density estimator) to call.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.connectivity.dynamic import ComponentTracker
from repro.errors import ProtocolError
from repro.protocols.base import ReplicaControlProtocol
from repro.quorum.assignment import QuorumAssignment

__all__ = ["QuorumReassignmentProtocol"]


class QuorumReassignmentProtocol(ReplicaControlProtocol):
    """Quorum consensus with versioned, dynamically replaceable assignments."""

    #: Grants are a pure function of each component's effective assignment
    #: and vote total, so the invariant monitor may replay them
    #: (grant-mask-consistency / grant-monotonicity metamorphic checks).
    declarative_grants = True

    def __init__(self, n_sites: int, initial_assignment: QuorumAssignment) -> None:
        if n_sites <= 0:
            raise ProtocolError(f"need at least one site, got {n_sites}")
        self.n_sites = int(n_sites)
        self._initial = initial_assignment
        self.name = f"quorum-reassignment(T={initial_assignment.total_votes})"
        self.reset()

    def reset(self) -> None:
        """Return every site to version 1 with the initial assignment."""
        self.site_version = np.ones(self.n_sites, dtype=np.int64)
        self.site_assignment: List[QuorumAssignment] = [self._initial] * self.n_sites
        #: Count of successful installations (observability for benches).
        self.installs = 0

    # ------------------------------------------------------------------
    # Effective assignment lookup
    # ------------------------------------------------------------------
    def effective_assignment(
        self, tracker: ComponentTracker, site: int
    ) -> Optional[QuorumAssignment]:
        """The assignment in effect for accesses submitted at ``site``.

        ``None`` when the site is down (no component, no access anyway).
        """
        members = tracker.component_of(site)
        if members.size == 0:
            return None
        best = members[np.argmax(self.site_version[members])]
        return self.site_assignment[int(best)]

    def _component_views(
        self, tracker: ComponentTracker
    ) -> List[Tuple[np.ndarray, QuorumAssignment, int]]:
        """Per component: (member sites, effective assignment, votes)."""
        labels = tracker.labels
        totals = tracker.vote_totals
        views = []
        up = labels >= 0
        if not up.any():
            return views
        for label in range(int(labels.max()) + 1):
            members = np.nonzero(labels == label)[0]
            best = members[np.argmax(self.site_version[members])]
            views.append(
                (members, self.site_assignment[int(best)], int(totals[members[0]]))
            )
        return views

    def component_views(
        self, tracker: ComponentTracker
    ) -> List[Tuple[np.ndarray, QuorumAssignment, int]]:
        """Public view of the per-component effective state.

        Consumed by the invariant monitor's metamorphic grant checks and
        the verification subsystem's protocol differential.
        """
        return self._component_views(tracker)

    # ------------------------------------------------------------------
    # ReplicaControlProtocol interface
    # ------------------------------------------------------------------
    def on_network_change(self, tracker: ComponentTracker) -> None:
        """Propagate: every site adopts its component's newest assignment.

        Models the version-vector exchange that happens when sites
        communicate; in the real protocol this rides on ordinary message
        traffic, so by the time any access is evaluated the component has
        converged — which is exactly the state this method establishes.
        """
        propagated = 0
        for members, assignment, _votes in self._component_views(tracker):
            newest = int(self.site_version[members].max())
            for site in members:
                if self.site_version[site] != newest:
                    propagated += 1
                self.site_version[site] = newest
                self.site_assignment[int(site)] = assignment
        if propagated and self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "repro_protocol_propagations_total",
                "sites that adopted a newer assignment version on merge",
            ).inc(propagated, protocol=self.name)

    def grant_masks(self, tracker: ComponentTracker) -> Tuple[np.ndarray, np.ndarray]:
        read_mask = np.zeros(self.n_sites, dtype=bool)
        write_mask = np.zeros(self.n_sites, dtype=bool)
        for members, assignment, votes in self._component_views(tracker):
            if assignment.allows_read(votes):
                read_mask[members] = True
            if assignment.allows_write(votes):
                write_mask[members] = True
        return read_mask, write_mask

    # ------------------------------------------------------------------
    # Reassignment
    # ------------------------------------------------------------------
    def can_reassign(self, tracker: ComponentTracker, site: int) -> bool:
        """May ``site``'s component install a new assignment right now?"""
        members = tracker.component_of(site)
        if members.size == 0:
            return False
        effective = self.effective_assignment(tracker, site)
        assert effective is not None
        votes = int(tracker.vote_totals[site])
        return effective.allows_write(votes)

    def try_reassign(
        self,
        tracker: ComponentTracker,
        site: int,
        new_assignment: QuorumAssignment,
    ) -> bool:
        """Attempt to install ``new_assignment`` from ``site``'s component.

        Returns ``True`` and bumps the version on success; returns
        ``False`` when the component lacks a write quorum under the old
        assignment (the paper's installation rule). Raises
        :class:`~repro.errors.ProtocolError` if the new assignment is for
        a different vote total than the current one.
        """
        if new_assignment.total_votes != self._initial.total_votes:
            raise ProtocolError(
                f"new assignment is for T={new_assignment.total_votes}, "
                f"system has T={self._initial.total_votes}"
            )
        if not self.can_reassign(tracker, site):
            return False
        members = tracker.component_of(site)
        new_version = int(self.site_version.max()) + 1
        for member in members:
            self.site_version[member] = new_version
            self.site_assignment[int(member)] = new_assignment
        self.installs += 1
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "repro_protocol_reassignments_total",
                "successful quorum reassignment installs",
            ).inc(protocol=self.name)
        return True

    def max_version(self) -> int:
        """The highest version number installed anywhere."""
        return int(self.site_version.max())
