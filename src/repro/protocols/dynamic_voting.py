"""Dynamic voting (Jajodia & Mutchler), the paper's reference [12, 13].

The QR protocol of section 2.2 borrows its version-number machinery from
the dynamic *vote* reassignment literature; this module implements the
best-known member of that family as a comparison protocol.

State per copy ``i``:

- ``VN_i`` — version number: how many (reconfiguring) writes copy ``i``
  has seen;
- ``SC_i`` — update-sites cardinality: the size of the participant set
  of the most recent write copy ``i`` knows about;
- for the *dynamic-linear* variant, ``DS_i`` — the distinguished site of
  that write (the highest site id among its participants), used to break
  exact-half ties.

A component ``C`` is **distinguished** iff, with ``M = max VN over C``,
``I = {i in C : VN_i = M}`` and ``N = SC`` of any member of ``I``:

- ``|I| > N/2``, or
- (linear variant) ``|I| = N/2`` and the distinguished site ``DS`` is in
  ``I`` — the classic tie-breaker that lets *half* of the previous
  participant set continue.

Accesses (reads and writes alike — the dynamic voting literature does
not split the quorum) are granted only in the distinguished component.
A write there installs ``VN = M+1``, ``SC = |C|``, ``DS = max(C)`` at
every member.

**Timing model.** Real dynamic voting updates state on every write; the
engine's epoch accounting instead lets the protocol refresh its state at
every topology change via :meth:`on_network_change`. With the paper's
access-to-failure ratio (``rho = 1/128`` at 101 sites, i.e. hundreds of
accesses per epoch and ``alpha < 1``) at least one write lands in every
epoch with overwhelming probability, so "a write happens once per epoch
in the distinguished component" is the standard Markov-model treatment
of dynamic voting (state transitions at reconfiguration instants). Set
``refresh_on_change=False`` to drive writes explicitly instead (the
replicated-database layer does this).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.connectivity.dynamic import ComponentTracker
from repro.errors import ProtocolError
from repro.protocols.base import ReplicaControlProtocol

__all__ = ["DynamicVotingProtocol"]


class DynamicVotingProtocol(ReplicaControlProtocol):
    """Dynamic(-linear) voting over one copy per site."""

    def __init__(self, n_sites: int, linear: bool = True,
                 refresh_on_change: bool = True) -> None:
        if n_sites <= 0:
            raise ProtocolError(f"need at least one site, got {n_sites}")
        self.n_sites = int(n_sites)
        self.linear = bool(linear)
        self.refresh_on_change = bool(refresh_on_change)
        self.name = f"dynamic-{'linear-' if linear else ''}voting(n={n_sites})"
        self.reset()

    def reset(self) -> None:
        """All copies participated in a notional initial write."""
        self.version = np.zeros(self.n_sites, dtype=np.int64)
        self.cardinality = np.full(self.n_sites, self.n_sites, dtype=np.int64)
        self.distinguished_site = np.full(self.n_sites, self.n_sites - 1,
                                          dtype=np.int64)
        #: Writes that changed the participant set (observability).
        self.reconfigurations = 0

    # ------------------------------------------------------------------
    def distinguished_component(self, tracker: ComponentTracker) -> Optional[np.ndarray]:
        """Member sites of the distinguished component, or ``None``.

        At most one component can satisfy the rule: two disjoint sets
        cannot both hold more than half (or the tie-breaking half) of the
        same last participant set, and components with stale versions
        lack the newest participants entirely.
        """
        labels = tracker.labels
        up = labels >= 0
        if not up.any():
            return None
        for label in range(int(labels.max()) + 1):
            members = np.nonzero(labels == label)[0]
            if self._is_distinguished(members):
                return members
        return None

    def _is_distinguished(self, members: np.ndarray) -> bool:
        versions = self.version[members]
        newest = versions.max()
        current = members[versions == newest]
        n_participants = int(self.cardinality[current[0]])
        have = current.shape[0]
        if 2 * have > n_participants:
            return True
        if self.linear and 2 * have == n_participants:
            return bool(
                (current == self.distinguished_site[current[0]]).any()
            )
        return False

    # ------------------------------------------------------------------
    def on_network_change(self, tracker: ComponentTracker) -> None:
        """Optionally perform one write in the distinguished component.

        Note there is deliberately *no* state propagation here: unlike
        the QR protocol's quorum assignments, dynamic voting's version
        numbers certify **write participation** — a copy may only reach
        version ``M`` by being updated by write ``M``. Copying versions
        between communicating sites would let stale copies impersonate
        participants and break the at-most-one-distinguished-component
        invariant. Stale copies catch up exactly when a write in a
        distinguished component that contains them re-bases the
        participant set (:meth:`perform_write`).
        """
        if self.refresh_on_change:
            self.perform_write(tracker)

    def perform_write(self, tracker: ComponentTracker) -> bool:
        """Execute one write in the distinguished component (if any).

        Returns whether a write happened. Re-bases the participant set
        when the membership changed.
        """
        members = self.distinguished_component(tracker)
        if members is None:
            return False
        newest = int(self.version[members].max())
        if (
            members.shape[0] != int(self.cardinality[members[0]])
            or (self.version[members] != newest).any()
        ):
            self.reconfigurations += 1
        self.version[members] = newest + 1
        self.cardinality[members] = members.shape[0]
        self.distinguished_site[members] = int(members.max())
        return True

    def grant_masks(self, tracker: ComponentTracker) -> Tuple[np.ndarray, np.ndarray]:
        mask = np.zeros(self.n_sites, dtype=bool)
        members = self.distinguished_component(tracker)
        if members is not None:
            mask[members] = True
        return mask, mask.copy()
