"""On-line measurement of the workload parameters (Figure 1, step 1).

The optimal-assignment algorithm assumes ``alpha`` (read fraction) and
the per-site submission distributions ``r_i``, ``w_i`` are known; the
paper notes they "are likely to be explicit in the model or can be
directly measured by the system". This estimator is that measurement:
count read and write submissions per site, with optional exponential
forgetting so shifting access patterns (section 4.3) show up quickly.

Smoothing: a symmetric pseudocount prior keeps early estimates sane
(``alpha`` starts at 0.5, site weights start uniform) and guarantees the
weight vectors stay strictly positive, which the availability model
requires of probability vectors.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import SimulationError

__all__ = ["WorkloadEstimator"]


class WorkloadEstimator:
    """Per-site read/write submission counters with forgetting."""

    def __init__(
        self,
        n_sites: int,
        forgetting_factor: float = 1.0,
        pseudocount: float = 1.0,
    ) -> None:
        if n_sites <= 0:
            raise SimulationError(f"need at least one site, got {n_sites}")
        if not 0.0 < forgetting_factor <= 1.0:
            raise SimulationError(
                f"forgetting factor must be in (0, 1], got {forgetting_factor}"
            )
        if pseudocount <= 0:
            raise SimulationError(f"pseudocount must be positive, got {pseudocount}")
        self.n_sites = int(n_sites)
        self.forgetting_factor = float(forgetting_factor)
        self.pseudocount = float(pseudocount)
        self._reads = np.zeros(self.n_sites, dtype=np.float64)
        self._writes = np.zeros(self.n_sites, dtype=np.float64)

    # ------------------------------------------------------------------
    def observe(self, site: int, is_read: bool, weight: float = 1.0) -> None:
        """Record one submitted access (granted or not — submission is
        what defines the workload)."""
        if not 0 <= site < self.n_sites:
            raise SimulationError(f"unknown site {site}")
        if weight < 0:
            raise SimulationError(f"weight must be non-negative, got {weight}")
        self._decay()
        (self._reads if is_read else self._writes)[site] += weight

    def observe_counts(self, reads: np.ndarray, writes: np.ndarray) -> None:
        """Record one epoch's per-site submission counts in bulk."""
        reads = np.asarray(reads, dtype=np.float64)
        writes = np.asarray(writes, dtype=np.float64)
        if reads.shape != (self.n_sites,) or writes.shape != (self.n_sites,):
            raise SimulationError(
                f"counts must both have shape ({self.n_sites},), got "
                f"{reads.shape} and {writes.shape}"
            )
        if (reads < 0).any() or (writes < 0).any():
            raise SimulationError("counts must be non-negative")
        self._decay()
        self._reads += reads
        self._writes += writes

    def _decay(self) -> None:
        if self.forgetting_factor < 1.0:
            self._reads *= self.forgetting_factor
            self._writes *= self.forgetting_factor

    # ------------------------------------------------------------------
    @property
    def total_observed(self) -> float:
        """Accumulated (post-decay) access mass, excluding pseudocounts."""
        return float(self._reads.sum() + self._writes.sum())

    @property
    def alpha(self) -> float:
        """Estimated read fraction (prior-smoothed toward 0.5)."""
        r = self._reads.sum() + self.pseudocount
        w = self._writes.sum() + self.pseudocount
        return float(r / (r + w))

    @property
    def read_weights(self) -> np.ndarray:
        """Estimated ``r_i`` (prior-smoothed toward uniform)."""
        smoothed = self._reads + self.pseudocount / self.n_sites
        return smoothed / smoothed.sum()

    @property
    def write_weights(self) -> np.ndarray:
        """Estimated ``w_i`` (prior-smoothed toward uniform)."""
        smoothed = self._writes + self.pseudocount / self.n_sites
        return smoothed / smoothed.sum()

    def snapshot(self) -> Tuple[float, np.ndarray, np.ndarray]:
        """``(alpha, r_i, w_i)`` — exactly Figure 1 step 1's inputs."""
        return self.alpha, self.read_weights, self.write_weights

    def reset(self) -> None:
        self._reads[:] = 0.0
        self._writes[:] = 0.0
