"""The paper's complete on-line loop as one protocol.

Sections 2.2 + 4.2 + 4.3 compose into a single self-tuning system:

1. during normal processing, measure the workload (``alpha``, ``r_i``,
   ``w_i`` — :class:`~repro.protocols.workload_estimator.WorkloadEstimator`)
   and the component-size densities ``f_i``
   (:class:`~repro.protocols.estimator.OnlineDensityEstimator`);
2. periodically run the Figure-1 algorithm on those estimates;
3. "when a site finds that the current quorum assignment differs
   significantly from the optimal quorum assignment, the site attempts
   to install the new assignment using the QR protocol".

:class:`AdaptiveQuorumProtocol` is that loop packaged as an ordinary
:class:`~repro.protocols.base.ReplicaControlProtocol`: drop it into the
simulator or the replicated database and it converges to (and tracks)
the optimal assignment with no off-line model at all.

Policy knobs mirror the paper's language:

- ``min_observation_weight`` — don't trust the estimates until this much
  evidence has accumulated;
- ``improvement_threshold`` — "differs significantly": reassign only
  when the estimated availability gain exceeds this (hysteresis, so
  estimate noise does not thrash assignments);
- ``check_interval`` — re-optimize every k-th network change (the
  optimization itself is cheap; the knob exists to model real systems
  that piggyback on coarser maintenance cycles);
- optional ``write_floor`` — route the optimization through the section
  5.4 constrained optimizer instead of the unconstrained one.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.connectivity.dynamic import ComponentTracker
from repro.errors import OptimizationError, ProtocolError
from repro.protocols.base import ReplicaControlProtocol
from repro.protocols.estimator import OnlineDensityEstimator
from repro.protocols.reassignment import QuorumReassignmentProtocol
from repro.protocols.workload_estimator import WorkloadEstimator
from repro.quorum.assignment import QuorumAssignment
from repro.quorum.availability import AvailabilityModel
from repro.quorum.constraints import optimize_with_write_floor
from repro.quorum.optimizer import optimal_read_quorum

__all__ = ["AdaptiveQuorumProtocol"]


class AdaptiveQuorumProtocol(ReplicaControlProtocol):
    """Self-tuning quorum consensus: QR + on-line estimation + Figure 1."""

    def __init__(
        self,
        n_sites: int,
        total_votes: int,
        initial_assignment: Optional[QuorumAssignment] = None,
        alpha_hint: Optional[float] = None,
        min_observation_weight: float = 200.0,
        improvement_threshold: float = 0.01,
        check_interval: int = 1,
        write_floor: float = 0.0,
        forgetting_factor: float = 1.0,
        optimizer_method: str = "exhaustive",
    ) -> None:
        if check_interval < 1:
            raise ProtocolError(f"check_interval must be >= 1, got {check_interval}")
        if improvement_threshold < 0:
            raise ProtocolError(
                f"improvement_threshold must be non-negative, got {improvement_threshold}"
            )
        if min_observation_weight < 0:
            raise ProtocolError(
                f"min_observation_weight must be non-negative, got {min_observation_weight}"
            )
        if alpha_hint is not None and not 0.0 <= alpha_hint <= 1.0:
            raise ProtocolError(f"alpha_hint must be in [0, 1], got {alpha_hint}")
        self.n_sites = int(n_sites)
        self.total_votes = int(total_votes)
        self._initial = initial_assignment or QuorumAssignment.majority(total_votes)
        self.alpha_hint = alpha_hint
        self.min_observation_weight = float(min_observation_weight)
        self.improvement_threshold = float(improvement_threshold)
        self.check_interval = int(check_interval)
        self.write_floor = float(write_floor)
        self.forgetting_factor = float(forgetting_factor)
        self.optimizer_method = optimizer_method
        self.name = f"adaptive-quorum(T={total_votes})"
        self.reset()

    def bind_telemetry(self, telemetry) -> None:
        super().bind_telemetry(telemetry)
        self.qr.bind_telemetry(telemetry)

    def reset(self) -> None:
        self.qr = QuorumReassignmentProtocol(self.n_sites, self._initial)
        self.qr.bind_telemetry(self.telemetry)
        self.density = OnlineDensityEstimator(
            self.n_sites, self.total_votes, forgetting_factor=self.forgetting_factor
        )
        self.workload = WorkloadEstimator(
            self.n_sites, forgetting_factor=self.forgetting_factor
        )
        self._changes_seen = 0
        #: Successful reassignments and skipped-below-threshold counters.
        self.installs = 0
        self.deferrals = 0

    # ------------------------------------------------------------------
    # Measurement feeds (called by the host: simulator observer or DB)
    # ------------------------------------------------------------------
    def record_epoch(
        self,
        tracker: ComponentTracker,
        duration: float,
        reads: Optional[np.ndarray] = None,
        writes: Optional[np.ndarray] = None,
    ) -> None:
        """Feed one epoch's observations.

        ``duration`` weights the density estimate (time-weighted f_i);
        per-site submission counts, when available, feed the workload
        estimator. Hosts without counts can pass only durations and rely
        on ``alpha_hint``.
        """
        if duration < 0:
            raise ProtocolError(f"duration must be non-negative, got {duration}")
        if duration > 0:
            self.density.observe_all(tracker.vote_totals, weight=duration)
        if reads is not None and writes is not None:
            self.workload.observe_counts(np.asarray(reads), np.asarray(writes))
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "repro_adaptive_estimator_updates_total",
                "epoch observations fed to the adaptive density/workload estimators",
            ).inc(protocol=self.name)

    def record_access(self, tracker: ComponentTracker, site: int, is_read: bool) -> None:
        """Feed one access observation (the paper's literal scheme)."""
        self.workload.observe(site, is_read)
        self.density.observe(site, int(tracker.vote_totals[site]))

    # ------------------------------------------------------------------
    # Estimation + reassignment
    # ------------------------------------------------------------------
    def _enough_evidence(self) -> bool:
        return self.density.total_weight >= self.min_observation_weight

    def current_model(self) -> Optional[AvailabilityModel]:
        """Figure-1 model from the current estimates (None if starved)."""
        if not self._enough_evidence():
            return None
        try:
            matrix = self.density.density_matrix()
        except Exception:
            return None
        _, r_i, w_i = self.workload.snapshot()
        return AvailabilityModel.from_density_matrix(
            matrix, read_weights=r_i, write_weights=w_i
        )

    def effective_alpha(self) -> float:
        """Measured alpha, unless a hint pins it."""
        return self.alpha_hint if self.alpha_hint is not None else self.workload.alpha

    def maybe_reassign(self, tracker: ComponentTracker) -> bool:
        """Run Figure 1 and attempt a QR install if it pays enough."""
        model = self.current_model()
        if model is None:
            return False
        alpha = self.effective_alpha()
        try:
            if self.write_floor > 0.0:
                best = optimize_with_write_floor(model, alpha, self.write_floor)
            else:
                best = optimal_read_quorum(model, alpha, method=self.optimizer_method)
        except OptimizationError:
            return False

        # Compare against the assignment currently in effect at some up
        # site (they all agree within a component; across components the
        # newest is what a successful install would extend anyway).
        up_sites = np.nonzero(tracker.labels >= 0)[0]
        if up_sites.size == 0:
            return False
        site = int(up_sites[np.argmax(self.qr.site_version[up_sites])])
        current = self.qr.effective_assignment(tracker, site)
        if current is None or current == best.assignment:
            return False
        current_value = float(model.availability(alpha, current.read_quorum))
        if best.availability - current_value < self.improvement_threshold:
            self.deferrals += 1
            return False
        if self.qr.try_reassign(tracker, site, best.assignment):
            self.installs += 1
            if self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    "repro_adaptive_installs_total",
                    "adaptive reassignments actually installed",
                ).inc(protocol=self.name)
            return True
        return False

    # ------------------------------------------------------------------
    # ReplicaControlProtocol interface (delegates to the QR core)
    # ------------------------------------------------------------------
    def on_network_change(self, tracker: ComponentTracker) -> None:
        self.qr.on_network_change(tracker)
        self._changes_seen += 1
        if self._changes_seen % self.check_interval == 0:
            self.maybe_reassign(tracker)

    def grant_masks(self, tracker: ComponentTracker) -> Tuple[np.ndarray, np.ndarray]:
        return self.qr.grant_masks(tracker)

    def current_assignment(self, tracker: ComponentTracker, site: int = 0):
        """The assignment in effect at ``site`` (observability)."""
        return self.qr.effective_assignment(tracker, site)
