"""On-line estimation of the component-size densities (paper, section 4.2).

Exact computation of ``f_i(v)`` is #P-complete in general, but each site
can *observe* its component's vote total whenever it communicates —
"rather than performing broadcasts solely to acquire this vote total,
site i can record the totals received while performing other functions
required by the consistency control algorithm". If past history is
indicative of future behaviour, the empirical distribution of those
observations converges to ``f_i``.

:class:`OnlineDensityEstimator` accumulates weighted observations per
``(site, vote total)`` cell. Weights support both accounting styles used
by the simulator: per-access counts (the paper's scheme) and
time-integration (each network epoch contributes its duration — the
variance-reduced estimator described in DESIGN.md). An optional
exponential *forgetting factor* discounts old observations so the
estimate tracks temporal shifts in reliability or topology, which is what
lets the dynamic reassignment protocol adapt (section 4.3).

Note on semantics: densities estimated this way approximate the paper's
``f_i`` including the "down site = component of zero votes" convention
only when the caller also records observations for down sites (vote
total 0). The simulator does; a deployment would instead estimate the
conditional density ``A'`` and rely on the paper's footnote 4 argument
(``p A' = A``) that the optimal quorum is unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analytic.density import normalize_density
from repro.errors import DensityError

__all__ = ["OnlineDensityEstimator"]


class OnlineDensityEstimator:
    """Per-site histogram of observed component vote totals."""

    def __init__(
        self,
        n_sites: int,
        total_votes: int,
        forgetting_factor: float = 1.0,
    ) -> None:
        if n_sites <= 0:
            raise DensityError(f"need at least one site, got {n_sites}")
        if total_votes <= 0:
            raise DensityError(f"total votes must be positive, got {total_votes}")
        if not 0.0 < forgetting_factor <= 1.0:
            raise DensityError(
                f"forgetting factor must be in (0, 1], got {forgetting_factor}"
            )
        self.n_sites = int(n_sites)
        self.total_votes = int(total_votes)
        self.forgetting_factor = float(forgetting_factor)
        self._weights = np.zeros((self.n_sites, self.total_votes + 1), dtype=np.float64)
        self._site_ids = np.arange(self.n_sites)

    @classmethod
    def from_weights(
        cls,
        weights: np.ndarray,
        total_votes: int,
        forgetting_factor: float = 1.0,
    ) -> "OnlineDensityEstimator":
        """Rebuild an estimator from a raw ``(n_sites, T+1)`` weight matrix.

        The shared-memory pool transport ships estimators across process
        boundaries as their weight matrices alone; this is the
        dispatcher-side inverse. The matrix is adopted as float64
        (copying only if a cast is needed), so round-tripping is bitwise.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2 or weights.shape[1] != total_votes + 1:
            raise DensityError(
                f"weights must have shape (n_sites, {total_votes + 1}), "
                f"got {weights.shape}"
            )
        estimator = cls(weights.shape[0], total_votes,
                        forgetting_factor=forgetting_factor)
        estimator._weights = weights
        return estimator

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe(self, site: int, component_votes: int, weight: float = 1.0) -> None:
        """Record one observation at one site."""
        if not 0 <= site < self.n_sites:
            raise DensityError(f"unknown site {site}")
        if not 0 <= component_votes <= self.total_votes:
            raise DensityError(
                f"component votes must be in 0..{self.total_votes}, got {component_votes}"
            )
        if weight < 0:
            raise DensityError(f"weight must be non-negative, got {weight}")
        self._decay()
        self._weights[site, component_votes] += weight

    def observe_all(self, vote_totals: np.ndarray, weight: float = 1.0) -> None:
        """Record one observation per site (a full network snapshot).

        ``vote_totals`` is the per-site component vote vector the
        connectivity tracker produces; ``weight`` is 1 for a count-style
        observation or the epoch duration for time-weighted estimation.
        """
        totals = np.asarray(vote_totals, dtype=np.int64)
        if totals.shape != (self.n_sites,):
            raise DensityError(
                f"vote_totals must have shape ({self.n_sites},), got {totals.shape}"
            )
        if (totals < 0).any() or (totals > self.total_votes).any():
            raise DensityError(f"vote totals must be in 0..{self.total_votes}")
        if weight < 0:
            raise DensityError(f"weight must be non-negative, got {weight}")
        self._decay()
        self._weights[self._site_ids, totals] += weight

    def observe_counts(self, vote_totals: np.ndarray, counts: np.ndarray) -> None:
        """Record per-site observation weights in one call.

        This is the access-count accounting mode: ``counts[i]`` is how
        many accesses site ``i`` processed during an epoch in which its
        component held ``vote_totals[i]`` votes. Cheaper than calling
        :meth:`observe` per access and identical in effect.
        """
        totals = np.asarray(vote_totals, dtype=np.int64)
        weights = np.asarray(counts, dtype=np.float64)
        if totals.shape != (self.n_sites,) or weights.shape != (self.n_sites,):
            raise DensityError(
                f"vote_totals and counts must both have shape ({self.n_sites},), "
                f"got {totals.shape} and {weights.shape}"
            )
        if (totals < 0).any() or (totals > self.total_votes).any():
            raise DensityError(f"vote totals must be in 0..{self.total_votes}")
        if (weights < 0).any():
            raise DensityError("counts must be non-negative")
        self._decay()
        np.add.at(self._weights, (self._site_ids, totals), weights)

    def _decay(self) -> None:
        if self.forgetting_factor < 1.0:
            self._weights *= self.forgetting_factor

    # ------------------------------------------------------------------
    # Reading out
    # ------------------------------------------------------------------
    @property
    def total_weight(self) -> float:
        """Total accumulated (post-decay) observation weight."""
        return float(self._weights.sum())

    def site_weight(self, site: int) -> float:
        """Accumulated weight at one site."""
        return float(self._weights[site].sum())

    def density(self, site: int) -> np.ndarray:
        """Estimated ``f_site(v)``, normalized. Raises if nothing observed."""
        if not 0 <= site < self.n_sites:
            raise DensityError(f"unknown site {site}")
        return normalize_density(self._weights[site])

    def density_matrix(self) -> np.ndarray:
        """Estimated densities for all sites, shape ``(n_sites, T+1)``.

        Every site must have at least one observation; the simulator's
        snapshot-based recording guarantees this after the first epoch.
        """
        row_mass = self._weights.sum(axis=1)
        if (row_mass <= 0).any():
            missing = int(np.nonzero(row_mass <= 0)[0][0])
            raise DensityError(f"site {missing} has no observations yet")
        return self._weights / row_mass[:, None]

    def merge(self, other: "OnlineDensityEstimator") -> None:
        """Fold another estimator's observations into this one.

        Supports distributed estimation: each site keeps a local
        estimator and periodically exchanges summaries.
        """
        if (other.n_sites, other.total_votes) != (self.n_sites, self.total_votes):
            raise DensityError(
                "cannot merge estimators with different shapes: "
                f"({self.n_sites}, {self.total_votes}) vs ({other.n_sites}, {other.total_votes})"
            )
        self._weights += other._weights

    def reset(self) -> None:
        """Drop all accumulated observations."""
        self._weights[:] = 0.0

    def __repr__(self) -> str:
        return (
            f"OnlineDensityEstimator(n_sites={self.n_sites}, T={self.total_votes}, "
            f"weight={self.total_weight:.3g})"
        )
