"""The primary copy protocol (Alsberg & Day '76; paper, section 2.1).

Accesses — reads and writes alike — are permitted only from the component
containing a designated *primary site*. In vote terms this is the
degenerate assignment placing all votes at the primary with
``q_r = q_w = 1``; we implement it natively on component labels so it
works unchanged alongside any uniform vote assignment the rest of a study
uses.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.connectivity.dynamic import ComponentTracker
from repro.errors import ProtocolError
from repro.protocols.base import ReplicaControlProtocol

__all__ = ["PrimaryCopyProtocol"]


class PrimaryCopyProtocol(ReplicaControlProtocol):
    """Grant accesses only inside the primary site's component."""

    def __init__(self, primary_site: int) -> None:
        if primary_site < 0:
            raise ProtocolError(f"primary site must be non-negative, got {primary_site}")
        self.primary_site = int(primary_site)
        self.name = f"primary-copy(primary={self.primary_site})"

    def grant_masks(self, tracker: ComponentTracker) -> Tuple[np.ndarray, np.ndarray]:
        labels = tracker.labels
        n = labels.shape[0]
        if self.primary_site >= n:
            raise ProtocolError(
                f"primary site {self.primary_site} outside network of {n} sites"
            )
        primary_label = labels[self.primary_site]
        if primary_label < 0:
            # Primary down: nobody may access the item.
            mask = np.zeros(n, dtype=bool)
        else:
            mask = labels == primary_label
        return mask, mask.copy()
