"""Majority consensus (Thomas '79) as a quorum-consensus instance.

The paper (section 2.1): with ``q_r = floor(T/2)`` and
``q_w = floor(T/2) + 1`` the quorum consensus protocol is equivalent to
majority consensus — reads and writes are treated (nearly) alike, which
is the regime all of a topology's availability curves converge to at the
right edge of the paper's figures.
"""

from __future__ import annotations

from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.quorum.assignment import QuorumAssignment

__all__ = ["MajorityConsensusProtocol"]


class MajorityConsensusProtocol(QuorumConsensusProtocol):
    """Quorum consensus pinned to the majority assignment."""

    def __init__(self, total_votes: int) -> None:
        super().__init__(QuorumAssignment.majority(total_votes))
        self.name = f"majority-consensus(T={total_votes})"
