"""The quorum consensus protocol (Gifford '79; paper, section 2.1).

When an access is submitted to a site, that site collects the votes of
every site in its current component; a read proceeds iff the collected
votes reach ``q_r``, a write iff they reach ``q_w``. Since the component
tracker already exposes per-site component vote totals, the whole
decision is two vectorized comparisons.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.connectivity.dynamic import ComponentTracker
from repro.errors import ProtocolError
from repro.protocols.base import ReplicaControlProtocol
from repro.quorum.assignment import QuorumAssignment

__all__ = ["QuorumConsensusProtocol"]


class QuorumConsensusProtocol(ReplicaControlProtocol):
    """Static quorum consensus with a fixed, validated assignment."""

    #: Grants are a pure function of (assignment, component votes), so the
    #: invariant monitor may replay them against the declared assignment
    #: (grant-mask-consistency / grant-monotonicity metamorphic checks).
    declarative_grants = True

    def __init__(self, assignment: QuorumAssignment) -> None:
        if not isinstance(assignment, QuorumAssignment):
            raise ProtocolError(
                f"expected a QuorumAssignment, got {type(assignment).__name__}"
            )
        self._assignment = assignment
        self.name = f"quorum-consensus{assignment}"

    @property
    def assignment(self) -> QuorumAssignment:
        return self._assignment

    def grant_masks(self, tracker: ComponentTracker) -> Tuple[np.ndarray, np.ndarray]:
        totals = tracker.vote_totals
        tracker_total = int(tracker.votes.sum())
        if tracker_total != self._assignment.total_votes:
            raise ProtocolError(
                f"assignment is for T={self._assignment.total_votes} votes but the "
                f"network carries T={tracker_total}"
            )
        # Down sites have component total 0 < 1 <= q_r, so both masks are
        # automatically False there.
        read_mask = totals >= self._assignment.read_quorum
        write_mask = totals >= self._assignment.write_quorum
        return read_mask, write_mask
