"""Protocol interface shared by the simulator and the replication layer.

A replica control protocol answers one question: *may this access proceed
in the submitting site's current component?* The simulator asks it in
bulk — one boolean per site per operation kind — so the interface is
mask-based, with a scalar convenience wrapper. Dynamic protocols
additionally react to network changes via :meth:`on_network_change`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

from repro.connectivity.dynamic import ComponentTracker
from repro.telemetry.recorder import NULL as _NULL_TELEMETRY

__all__ = ["ReplicaControlProtocol"]


class ReplicaControlProtocol(ABC):
    """Decides which sites may currently read or write the data item."""

    #: Human-readable protocol name for reports.
    name: str = "protocol"

    #: Telemetry recorder; the engine (or any harness) rebinds this via
    #: :meth:`bind_telemetry`. The class-level default is the no-op null
    #: recorder, so protocol instrumentation costs nothing un-bound.
    telemetry = _NULL_TELEMETRY

    def bind_telemetry(self, telemetry) -> None:
        """Attach a telemetry recorder for protocol-level metrics."""
        if telemetry is not None:
            self.telemetry = telemetry

    @abstractmethod
    def grant_masks(self, tracker: ComponentTracker) -> Tuple[np.ndarray, np.ndarray]:
        """Per-site grant decisions under the current network state.

        Returns ``(read_mask, write_mask)``: boolean arrays over sites
        where entry ``i`` says whether an access submitted at site ``i``
        would be granted. A down site must be ``False`` in both masks
        (the ACC metric counts submissions to down sites as denials).
        """

    def on_network_change(self, tracker: ComponentTracker) -> None:
        """Hook invoked after every site/link failure or recovery.

        Static protocols ignore it; the dynamic reassignment protocol uses
        it to propagate new quorum assignments to sites that just merged
        into a better-informed component.
        """

    def decide(self, site: int, is_read: bool, tracker: ComponentTracker) -> bool:
        """Scalar form of :meth:`grant_masks` for one access."""
        read_mask, write_mask = self.grant_masks(tracker)
        mask = read_mask if is_read else write_mask
        return bool(mask[site])

    def survivability(self, tracker: ComponentTracker) -> Tuple[bool, bool]:
        """SURV ingredients: does *some* site currently have read/write access?"""
        read_mask, write_mask = self.grant_masks(tracker)
        return bool(read_mask.any()), bool(write_mask.any())

    def reset(self) -> None:
        """Restore any protocol state to its initial value (new batch)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
