"""Coterie-based replica control: strictly more general than voting.

The paper's footnote 1: "Coteries provide a single mechanism, more
general than voting, for specifying both vote assignments and quorum
assignments". Garcia-Molina & Barbara proved that for six or more sites
there exist coteries no vote assignment can express, so a coterie-native
protocol is a real generalization, not a convenience wrapper.

:class:`CoterieProtocol` grants a write at a site iff the site's
component contains some group of the write coterie, and a read iff the
component contains some *read group*. Safety requires:

- write groups pairwise intersect (the :class:`~repro.quorum.coterie.Coterie`
  constructor enforces this), and
- every read group intersects every write group (checked here) — the
  set-level form of ``q_r + q_w > T``.

Vote-based quorum consensus is recovered exactly via
:meth:`CoterieProtocol.from_votes`, and the tests verify the two
implementations produce identical grant masks on random partitions.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.connectivity.dynamic import ComponentTracker
from repro.errors import ProtocolError, QuorumConstraintError
from repro.protocols.base import ReplicaControlProtocol
from repro.quorum.coterie import Coterie, coterie_from_votes, read_groups_from_votes
from repro.quorum.votes import VoteAssignment

__all__ = ["CoterieProtocol"]


class CoterieProtocol(ReplicaControlProtocol):
    """Replica control from explicit read groups and a write coterie."""

    def __init__(
        self,
        read_groups: Iterable[AbstractSet[int]],
        write_coterie: Coterie,
        n_sites: Optional[int] = None,
    ) -> None:
        groups = [frozenset(int(s) for s in g) for g in read_groups]
        if not groups:
            raise QuorumConstraintError("need at least one read group")
        if any(not g for g in groups):
            raise QuorumConstraintError("read groups must be non-empty")
        # Set-level condition 1: every read sees the latest write.
        for rg in groups:
            for wg in write_coterie:
                if not rg & wg:
                    raise QuorumConstraintError(
                        f"read group {sorted(rg)} misses write group "
                        f"{sorted(wg)}: a read could return stale data"
                    )
        members = frozenset().union(*groups, *write_coterie.groups)
        inferred = max(members) + 1
        self.n_sites = int(n_sites) if n_sites is not None else inferred
        if inferred > self.n_sites:
            raise ProtocolError(
                f"groups reference site {max(members)}, outside "
                f"0..{self.n_sites - 1}"
            )
        self.read_groups: Tuple[frozenset, ...] = tuple(sorted(groups, key=sorted))
        self.write_coterie = write_coterie
        self.name = (
            f"coterie(reads={len(self.read_groups)}, "
            f"writes={len(write_coterie)})"
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_votes(
        cls, votes: VoteAssignment, read_quorum: int, write_quorum: int
    ) -> "CoterieProtocol":
        """The coterie rendering of a vote-based quorum assignment."""
        if read_quorum + write_quorum <= votes.total:
            raise QuorumConstraintError(
                f"need q_r + q_w > T, got {read_quorum} + {write_quorum} "
                f"<= {votes.total}"
            )
        return cls(
            read_groups_from_votes(votes, read_quorum),
            coterie_from_votes(votes, write_quorum),
            n_sites=votes.n_sites,
        )

    # ------------------------------------------------------------------
    def grant_masks(self, tracker: ComponentTracker) -> Tuple[np.ndarray, np.ndarray]:
        labels = tracker.labels
        n = labels.shape[0]
        if self.n_sites > n:
            raise ProtocolError(
                f"protocol covers {self.n_sites} sites but the network has {n}"
            )
        read_mask = np.zeros(n, dtype=bool)
        write_mask = np.zeros(n, dtype=bool)
        up = labels >= 0
        if not up.any():
            return read_mask, write_mask
        for label in range(int(labels.max()) + 1):
            members = frozenset(np.nonzero(labels == label)[0].tolist())
            idx = np.asarray(sorted(members), dtype=np.int64)
            if any(g <= members for g in self.read_groups):
                read_mask[idx] = True
            if self.write_coterie.permits(members):
                write_mask[idx] = True
        return read_mask, write_mask
