"""Replica control protocols (paper, section 2).

Static protocols evaluate every access against fixed criteria:

- :class:`QuorumConsensusProtocol` — Gifford's weighted voting with an
  arbitrary valid ``(q_r, q_w)`` assignment;
- :class:`MajorityConsensusProtocol` — the ``q_r = floor(T/2)``,
  ``q_w = floor(T/2)+1`` instance (Thomas '79);
- :class:`ReadOneWriteAllProtocol` — the ``q_r = 1``, ``q_w = T`` instance;
- :class:`PrimaryCopyProtocol` — accesses allowed only in the component
  containing a designated primary site (Alsberg & Day '76).

Dynamic protocols:

- :class:`QuorumReassignmentProtocol` (section 2.2) — quorum assignments
  carry version numbers and may be replaced, but only from within a
  component holding a write quorum under the *old* assignment;
- :class:`DynamicVotingProtocol` (the paper's refs [12, 13]) — the
  Jajodia-Mutchler comparison protocol whose participant set re-bases on
  every write;
- :class:`AdaptiveQuorumProtocol` — the paper's complete on-line loop:
  QR plus the estimators plus the Figure-1 optimizer with hysteresis.

Generalization: :class:`CoterieProtocol` runs replica control from
explicit read groups and a write coterie (footnote 1: coteries are
strictly more general than voting).

Estimators: :class:`OnlineDensityEstimator` (section 4.2 — ``f_i`` from
component vote totals observed during normal processing) and
:class:`WorkloadEstimator` (Figure 1 step 1 — ``alpha``, ``r_i``,
``w_i`` from submitted accesses).
"""

from repro.protocols.base import ReplicaControlProtocol
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.protocols.majority import MajorityConsensusProtocol
from repro.protocols.read_one_write_all import ReadOneWriteAllProtocol
from repro.protocols.primary_copy import PrimaryCopyProtocol
from repro.protocols.reassignment import QuorumReassignmentProtocol
from repro.protocols.dynamic_voting import DynamicVotingProtocol
from repro.protocols.estimator import OnlineDensityEstimator
from repro.protocols.workload_estimator import WorkloadEstimator
from repro.protocols.adaptive import AdaptiveQuorumProtocol
from repro.protocols.coterie_protocol import CoterieProtocol

__all__ = [
    "AdaptiveQuorumProtocol",
    "CoterieProtocol",
    "DynamicVotingProtocol",
    "MajorityConsensusProtocol",
    "OnlineDensityEstimator",
    "PrimaryCopyProtocol",
    "QuorumConsensusProtocol",
    "QuorumReassignmentProtocol",
    "ReadOneWriteAllProtocol",
    "ReplicaControlProtocol",
    "WorkloadEstimator",
]
