"""Read-one/write-all as a quorum-consensus instance.

``q_r = 1``, ``q_w = T`` (paper, section 2.1): any up site may read —
giving availability exactly ``p * alpha`` regardless of topology, the
paper's left-edge observation — while a write requires every vote in one
component, i.e. every copy reachable.
"""

from __future__ import annotations

from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.quorum.assignment import QuorumAssignment

__all__ = ["ReadOneWriteAllProtocol"]


class ReadOneWriteAllProtocol(QuorumConsensusProtocol):
    """Quorum consensus pinned to ``q_r = 1``, ``q_w = T``."""

    def __init__(self, total_votes: int) -> None:
        super().__init__(QuorumAssignment.read_one_write_all(total_votes))
        self.name = f"read-one-write-all(T={total_votes})"
