"""Vectorized sharded engine plus its per-item ``multidb`` reference.

Both engines drive the *same* epoch loop — the event sequence, the
warm-up split, and the access sampling are cloned from
:class:`~repro.simulation.engine.SimulationEngine` so the random streams
are consumed identically (batch ``k`` derives from
``stream_for(seed, k)`` exactly as the single-item engine does). They
differ only in how one epoch is accounted:

- :class:`ShardedEngine` computes ONE component labelling per network
  state (the shared :class:`ComponentTracker`) and evaluates every
  item's quorum decision against it via ``bincount``/gather over an
  ``(n_items, n_sites)`` vote matrix — the PR 5 discipline applied to
  items instead of enumeration states.
- :class:`ReferenceShardEngine` drives a
  :class:`~repro.replication.multidb.MultiItemDatabase` — one
  :class:`ComponentTracker` and one protocol *per item*, evaluated in a
  Python loop. This is the retained reference path.

Every accumulator is either an int64 count or a float updated by the
same sequence of additions in both engines, so the two are **bitwise**
equal — for any chunk size, any worker count, and any topology. The
differential battery in ``tests/sharding/`` and
``verification/differential.py`` enforces exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.errors import ShardingError, SimulationError
from repro.quorum.assignment import QuorumAssignment
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.replication.item import ReplicatedItem
from repro.replication.multidb import ItemBinding, MultiItemDatabase
from repro.rng import spawn, stream_for
from repro.sharding.config import ShardConfig
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.processes import FailureProcesses
from repro.telemetry.recorder import current as _current_recorder

__all__ = [
    "ShardBatchResult",
    "ShardedEngine",
    "ReferenceShardEngine",
]


@dataclass
class ShardBatchResult:
    """Per-item accounting of one measured batch.

    Count arrays are int64 (exact); ``surv_*_time`` accumulate measured
    epoch durations during which *some* site could assemble the item's
    quorum; densities are ``(n_items, max_total_votes + 1)`` histograms
    of per-site component vote totals, weighted by time and by access
    count respectively.
    """

    batch_index: int
    reads_submitted: np.ndarray
    reads_granted: np.ndarray
    writes_submitted: np.ndarray
    writes_granted: np.ndarray
    surv_read_time: np.ndarray
    surv_write_time: np.ndarray
    measured_time: float
    n_epochs: int
    n_events: int
    density_time: np.ndarray
    density_access: np.ndarray

    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        return int(self.reads_submitted.shape[0])

    @property
    def item_availability(self) -> np.ndarray:
        """Per-item ACC = granted / submitted (1.0 for idle items)."""
        submitted = self.reads_submitted + self.writes_submitted
        granted = self.reads_granted + self.writes_granted
        out = np.ones(self.n_items, dtype=np.float64)
        active = submitted > 0
        out[active] = granted[active] / submitted[active]
        return out

    @property
    def availability(self) -> float:
        """Overall ACC pooled across items."""
        submitted = int(self.reads_submitted.sum() + self.writes_submitted.sum())
        granted = int(self.reads_granted.sum() + self.writes_granted.sum())
        return granted / submitted if submitted > 0 else 1.0

    @property
    def surv_read(self) -> np.ndarray:
        if self.measured_time <= 0:
            return np.zeros(self.n_items, dtype=np.float64)
        return self.surv_read_time / self.measured_time

    @property
    def surv_write(self) -> np.ndarray:
        if self.measured_time <= 0:
            return np.zeros(self.n_items, dtype=np.float64)
        return self.surv_write_time / self.measured_time

    def bitwise_equal(self, other: "ShardBatchResult") -> bool:
        """True iff every payload array and scalar matches exactly."""
        return (
            self.batch_index == other.batch_index
            and self.measured_time == other.measured_time
            and self.n_epochs == other.n_epochs
            and self.n_events == other.n_events
            and np.array_equal(self.reads_submitted, other.reads_submitted)
            and np.array_equal(self.reads_granted, other.reads_granted)
            and np.array_equal(self.writes_submitted, other.writes_submitted)
            and np.array_equal(self.writes_granted, other.writes_granted)
            and np.array_equal(self.surv_read_time, other.surv_read_time)
            and np.array_equal(self.surv_write_time, other.surv_write_time)
            and np.array_equal(self.density_time, other.density_time)
            and np.array_equal(self.density_access, other.density_access)
        )


class _ShardEngineBase:
    """The shared epoch driver; subclasses implement per-epoch accounting."""

    def __init__(self, config: ShardConfig, chunk_size: Optional[int] = None):
        self.config = config
        if chunk_size is not None and chunk_size < 1:
            raise ShardingError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size

    # -- subclass hooks -------------------------------------------------
    def _begin_batch(self) -> object:
        """Build and return the per-batch network handle."""
        raise NotImplementedError

    def _account_epoch(
        self,
        network: object,
        result: ShardBatchResult,
        duration: float,
        reads: np.ndarray,
        writes: np.ndarray,
    ) -> None:
        raise NotImplementedError

    # -- driver ---------------------------------------------------------
    def run_batch(self, batch_index: int) -> ShardBatchResult:
        """Warm-up plus one measured batch, streams per (seed, batch_index)."""
        cfg = self.config
        topo = cfg.topology
        batch_seed = (
            stream_for(cfg.seed, batch_index) if cfg.seed is not None else None
        )
        # Three substreams for parity with the single-item engine's
        # (failure, access, chaos) split; chaos is unused here but keeps
        # the first two streams identical for the same seed.
        failure_rng, access_rng, _chaos_rng = spawn(batch_seed, 3)

        network = self._begin_batch()
        queue = EventQueue()
        processes = FailureProcesses(
            topo,
            cfg.mean_time_to_failure,
            cfg.mean_time_to_repair,
            seed=failure_rng,
            fallible_sites=cfg.fallible_sites,
            fallible_links=cfg.fallible_links,
        )
        if cfg.initial_state == "stationary":
            site_up, link_up = processes.prime_stationary(queue)
            for site in np.nonzero(~site_up)[0]:
                network.fail_site(int(site))
            for link in np.nonzero(~link_up)[0]:
                network.fail_link(int(link))
        else:
            processes.prime(queue)

        warmup_end = cfg.warmup_time
        horizon = warmup_end + cfg.batch_time
        n_items = cfg.n_items
        width = cfg.max_total_votes + 1
        result = ShardBatchResult(
            batch_index=batch_index,
            reads_submitted=np.zeros(n_items, dtype=np.int64),
            reads_granted=np.zeros(n_items, dtype=np.int64),
            writes_submitted=np.zeros(n_items, dtype=np.int64),
            writes_granted=np.zeros(n_items, dtype=np.int64),
            surv_read_time=np.zeros(n_items, dtype=np.float64),
            surv_write_time=np.zeros(n_items, dtype=np.float64),
            measured_time=horizon - warmup_end,
            n_epochs=0,
            n_events=0,
            density_time=np.zeros((n_items, width), dtype=np.float64),
            density_access=np.zeros((n_items, width), dtype=np.float64),
        )

        workload = cfg.workload
        now = 0.0
        while now < horizon:
            epoch_end = min(queue.peek_time(), horizon) if queue else horizon
            # Split an epoch straddling the warm-up boundary so the
            # measured part is accounted exactly (same rule as the
            # single-item engine).
            if now < warmup_end < epoch_end:
                epoch_end = warmup_end
            duration = epoch_end - now
            measuring = now >= warmup_end

            if duration > 0 and measuring:
                reads, writes = workload.sample_epoch(duration, access_rng)
                self._account_epoch(network, result, duration, reads, writes)
                result.n_epochs += 1

            now = epoch_end
            if now >= horizon:
                break
            while queue and queue.peek_time() <= now:
                event = queue.pop()
                self._apply(event, network, processes, queue)
                result.n_events += 1
        return result

    @staticmethod
    def _apply(
        event: Event,
        network: object,
        processes: FailureProcesses,
        queue: EventQueue,
    ) -> None:
        kind = event.kind
        if kind is EventKind.SITE_FAIL:
            network.fail_site(event.target)
            processes.schedule_repair(queue, event.time, kind, event.target)
        elif kind is EventKind.SITE_REPAIR:
            network.repair_site(event.target)
            processes.schedule_failure(queue, event.time, kind, event.target)
        elif kind is EventKind.LINK_FAIL:
            network.fail_link(event.target)
            processes.schedule_repair(queue, event.time, kind, event.target)
        elif kind is EventKind.LINK_REPAIR:
            network.repair_link(event.target)
            processes.schedule_failure(queue, event.time, kind, event.target)
        else:
            raise SimulationError(f"sharded engine cannot apply event kind {kind}")

    # -- common helpers -------------------------------------------------
    def _chunks(self) -> Iterator[Tuple[int, int]]:
        n_items = self.config.n_items
        step = self.chunk_size or n_items
        for start in range(0, n_items, step):
            yield start, min(start + step, n_items)


class _VectorNetwork:
    """NetworkState plus the single shared tracker (labels only)."""

    def __init__(self, topology):
        self.state = NetworkState(topology)
        self.tracker = ComponentTracker(self.state)

    def fail_site(self, site: int) -> None:
        self.state.fail_site(site)

    def repair_site(self, site: int) -> None:
        self.state.repair_site(site)

    def fail_link(self, link_id: int) -> None:
        self.state.fail_link(link_id)

    def repair_link(self, link_id: int) -> None:
        self.state.repair_link(link_id)


class ShardedEngine(_ShardEngineBase):
    """The vectorized engine: one labelling per state, all items at once.

    ``chunk_size`` bounds the ``(chunk, n_sites)`` working set for very
    large item counts; results are bitwise identical for every choice
    because all accumulators are integers or per-cell float additions.
    """

    def _begin_batch(self) -> _VectorNetwork:
        return _VectorNetwork(self.config.topology)

    def _account_epoch(
        self,
        network: _VectorNetwork,
        result: ShardBatchResult,
        duration: float,
        reads: np.ndarray,
        writes: np.ndarray,
    ) -> None:
        cfg = self.config
        phases = _current_recorder().phases
        with phases.phase("shard.label"):
            labels = network.tracker.labels
        up = labels >= 0
        lab = labels[up]
        n_comps = int(lab.max()) + 1 if lab.size else 0
        width = result.density_time.shape[1]
        q_r = cfg.read_quorums
        q_w = cfg.write_quorums

        with phases.phase("shard.account"):
            for start, stop in self._chunks():
                chunk = stop - start
                votes = cfg.votes[start:stop]
                # One bincount turns the shared labelling into per-item
                # component vote sums: cell (i, c) accumulates item i's
                # votes over the up sites labelled c. Sums of small
                # integers in float64 are exact, so the cast back to
                # int64 is lossless.
                totals = np.zeros((chunk, cfg.topology.n_sites), dtype=np.int64)
                if n_comps:
                    flat = lab[None, :] + n_comps * np.arange(chunk)[:, None]
                    comp_sums = np.bincount(
                        flat.ravel(),
                        weights=votes[:, up].ravel(),
                        minlength=chunk * n_comps,
                    ).reshape(chunk, n_comps).astype(np.int64)
                    totals[:, up] = comp_sums[:, lab]
                read_mask = totals >= q_r[start:stop, None]
                write_mask = totals >= q_w[start:stop, None]

                r_chunk = reads[start:stop]
                w_chunk = writes[start:stop]
                result.reads_submitted[start:stop] += r_chunk.sum(axis=1)
                result.writes_submitted[start:stop] += w_chunk.sum(axis=1)
                result.reads_granted[start:stop] += (
                    r_chunk * read_mask
                ).sum(axis=1)
                result.writes_granted[start:stop] += (
                    w_chunk * write_mask
                ).sum(axis=1)
                result.surv_read_time[start:stop][read_mask.any(axis=1)] += duration
                result.surv_write_time[start:stop][write_mask.any(axis=1)] += duration

                dens_flat = (
                    totals + width * np.arange(chunk, dtype=np.int64)[:, None]
                ).ravel()
                counts = np.bincount(
                    dens_flat, minlength=chunk * width
                ).reshape(chunk, width)
                result.density_time[start:stop] += counts * duration
                access_w = np.bincount(
                    dens_flat,
                    weights=(r_chunk + w_chunk).ravel().astype(np.float64),
                    minlength=chunk * width,
                ).reshape(chunk, width)
                result.density_access[start:stop] += access_w


class _MultiDbNetwork:
    """Adapter driving a :class:`MultiItemDatabase` from link-id events."""

    def __init__(self, config: ShardConfig):
        topo = config.topology
        totals = config.total_votes
        bindings: List[ItemBinding] = []
        for i in range(config.n_items):
            votes_row = config.votes[i]
            sites = tuple(int(s) for s in np.nonzero(votes_row)[0])
            item = ReplicatedItem(
                f"item-{i:05d}",
                sites,
                tuple(int(votes_row[s]) for s in sites),
            )
            assignment = QuorumAssignment.from_read_quorum(
                int(totals[i]), int(config.read_quorums[i])
            )
            bindings.append(ItemBinding(item, QuorumConsensusProtocol(assignment)))
        self.db = MultiItemDatabase(topo, bindings)
        self.item_ids = [b.item.item_id for b in bindings]
        self._links = topo.links

    def fail_site(self, site: int) -> None:
        self.db.fail_site(site)

    def repair_site(self, site: int) -> None:
        self.db.repair_site(site)

    def fail_link(self, link_id: int) -> None:
        link = self._links[link_id]
        self.db.fail_link(link.a, link.b)

    def repair_link(self, link_id: int) -> None:
        link = self._links[link_id]
        self.db.repair_link(link.a, link.b)


class ReferenceShardEngine(_ShardEngineBase):
    """The retained per-item loop: a ``MultiItemDatabase`` evaluated item
    by item with one tracker and one protocol each. Slow on purpose —
    this is the oracle the vectorized engine must match bitwise."""

    def _begin_batch(self) -> _MultiDbNetwork:
        return _MultiDbNetwork(self.config)

    def _account_epoch(
        self,
        network: _MultiDbNetwork,
        result: ShardBatchResult,
        duration: float,
        reads: np.ndarray,
        writes: np.ndarray,
    ) -> None:
        db = network.db
        width = result.density_time.shape[1]
        for i, item_id in enumerate(network.item_ids):
            tracker = db.tracker_for(item_id)
            protocol = db.binding_for(item_id).protocol
            read_mask, write_mask = protocol.grant_masks(tracker)
            r_row = reads[i]
            w_row = writes[i]
            result.reads_submitted[i] += int(r_row.sum())
            result.writes_submitted[i] += int(w_row.sum())
            result.reads_granted[i] += int(r_row[read_mask].sum())
            result.writes_granted[i] += int(w_row[write_mask].sum())
            if read_mask.any():
                result.surv_read_time[i] += duration
            if write_mask.any():
                result.surv_write_time[i] += duration
            totals = tracker.vote_totals
            counts = np.bincount(totals, minlength=width)
            result.density_time[i] += counts * duration
            result.density_access[i] += np.bincount(
                totals,
                weights=(r_row + w_row).astype(np.float64),
                minlength=width,
            )
