"""Batch fan-out and aggregation for the sharded engine.

:func:`run_sharded` mirrors the single-item campaign runner: batch ``k``
derives its streams from ``(seed, k)`` inside the engine, so fanning the
batches over a process pool (``n_workers > 1``) is bitwise identical to
a serial run — and to any other worker count. Results cross the pool
through preallocated shared-memory slots
(:class:`~repro.sharding.transport.ShardSlotLayout`) when the platform
supports them, with the same ``REPRO_POOL_TRANSPORT`` override and
OSError-to-pickle degradation as the single-item transport.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ShardingError
from repro.sharding.config import ShardConfig
from repro.sharding.engine import (
    ReferenceShardEngine,
    ShardBatchResult,
    ShardedEngine,
)
from repro.sharding.transport import ShardSlotLayout
from repro.simulation.parallel import resolve_transport
from repro.simulation.shm import SlotPool

__all__ = ["ShardRunResult", "run_sharded", "ENGINE_KINDS"]

#: Selectable accounting paths: the vectorized engine and the retained
#: per-item multidb reference it must match bitwise.
ENGINE_KINDS = ("vectorized", "reference")


def _make_engine(config: ShardConfig, engine: str, chunk_size: Optional[int]):
    if engine == "vectorized":
        return ShardedEngine(config, chunk_size=chunk_size)
    if engine == "reference":
        return ReferenceShardEngine(config, chunk_size=chunk_size)
    raise ShardingError(
        f"unknown sharded engine {engine!r}; choose from {ENGINE_KINDS}"
    )


@dataclass
class ShardRunResult:
    """Pooled per-item accounting across all batches."""

    config: ShardConfig
    batches: List[ShardBatchResult]

    # ------------------------------------------------------------------
    def _pooled_int(self, name: str) -> np.ndarray:
        out = np.zeros(self.config.n_items, dtype=np.int64)
        for batch in self.batches:
            out += getattr(batch, name)
        return out

    @property
    def reads_submitted(self) -> np.ndarray:
        return self._pooled_int("reads_submitted")

    @property
    def reads_granted(self) -> np.ndarray:
        return self._pooled_int("reads_granted")

    @property
    def writes_submitted(self) -> np.ndarray:
        return self._pooled_int("writes_submitted")

    @property
    def writes_granted(self) -> np.ndarray:
        return self._pooled_int("writes_granted")

    @property
    def measured_time(self) -> float:
        return sum(batch.measured_time for batch in self.batches)

    @property
    def item_availability(self) -> np.ndarray:
        """Per-item pooled ACC (integer-count ratio; 1.0 for idle items)."""
        submitted = (
            self._pooled_int("reads_submitted")
            + self._pooled_int("writes_submitted")
        )
        granted = (
            self._pooled_int("reads_granted")
            + self._pooled_int("writes_granted")
        )
        out = np.ones(self.config.n_items, dtype=np.float64)
        active = submitted > 0
        out[active] = granted[active] / submitted[active]
        return out

    @property
    def availability(self) -> float:
        submitted = int(
            (self._pooled_int("reads_submitted")
             + self._pooled_int("writes_submitted")).sum()
        )
        granted = int(
            (self._pooled_int("reads_granted")
             + self._pooled_int("writes_granted")).sum()
        )
        return granted / submitted if submitted > 0 else 1.0

    @property
    def surv_read(self) -> np.ndarray:
        total = self.measured_time
        if total <= 0:
            return np.zeros(self.config.n_items, dtype=np.float64)
        out = np.zeros(self.config.n_items, dtype=np.float64)
        for batch in self.batches:
            out += batch.surv_read_time
        return out / total

    @property
    def surv_write(self) -> np.ndarray:
        total = self.measured_time
        if total <= 0:
            return np.zeros(self.config.n_items, dtype=np.float64)
        out = np.zeros(self.config.n_items, dtype=np.float64)
        for batch in self.batches:
            out += batch.surv_write_time
        return out / total

    def density_time(self) -> np.ndarray:
        """Summed ``(n_items, width)`` time-weighted density table."""
        out = np.zeros_like(self.batches[0].density_time)
        for batch in self.batches:
            out += batch.density_time
        return out

    def density_access(self) -> np.ndarray:
        out = np.zeros_like(self.batches[0].density_access)
        for batch in self.batches:
            out += batch.density_access
        return out

    def bitwise_equal(self, other: "ShardRunResult") -> bool:
        return len(self.batches) == len(other.batches) and all(
            a.bitwise_equal(b) for a, b in zip(self.batches, other.batches)
        )


# ----------------------------------------------------------------------
# Worker-side state (standard ProcessPoolExecutor module-global idiom).
# ----------------------------------------------------------------------

_WORKER: Dict[str, object] = {}


def _init_worker(
    config: ShardConfig,
    engine: str,
    chunk_size: Optional[int],
    shm_spec: Optional[Tuple[str, int, int]],
) -> None:
    _WORKER["config"] = config
    _WORKER["engine"] = engine
    _WORKER["chunk_size"] = chunk_size
    _WORKER["shm_spec"] = shm_spec
    _WORKER.pop("slot_pool", None)


def _worker_slot_pool() -> Optional[SlotPool]:
    spec = _WORKER.get("shm_spec")
    if spec is None:
        return None
    pool = _WORKER.get("slot_pool")
    if pool is None:
        name, slot_floats, n_slots = spec  # type: ignore[misc]
        pool = SlotPool.attach(name, slot_floats, n_slots)
        _WORKER["slot_pool"] = pool
    return pool  # type: ignore[return-value]


def _run_one_batch(task: Tuple[int, int]):
    slot_index, batch_index = task
    config: ShardConfig = _WORKER["config"]  # type: ignore[assignment]
    engine = _make_engine(
        config,
        _WORKER["engine"],  # type: ignore[arg-type]
        _WORKER["chunk_size"],  # type: ignore[arg-type]
    )
    batch = engine.run_batch(batch_index)
    pool = _worker_slot_pool()
    if pool is None:
        return (batch_index, batch, None)
    layout = ShardSlotLayout(config.n_items, config.max_total_votes + 1)
    layout.pack(pool.slot(slot_index), batch)
    return (batch_index, None, slot_index)


# ----------------------------------------------------------------------
def run_sharded(
    config: ShardConfig,
    engine: str = "vectorized",
    n_workers: int = 1,
    chunk_size: Optional[int] = None,
    transport: Optional[str] = None,
    transport_stats: Optional[dict] = None,
) -> ShardRunResult:
    """Run every batch of ``config``; bitwise identical for any ``n_workers``.

    ``engine`` selects the vectorized path or the per-item multidb
    reference; ``chunk_size`` bounds the vectorized working set (any
    value gives identical results). ``transport_stats``, when given a
    dict, is filled with the pool transport used and the pickled bytes
    that crossed the pipe.
    """
    indices = list(range(config.n_batches))
    if n_workers <= 1:
        runner = _make_engine(config, engine, chunk_size)
        batches = [runner.run_batch(i) for i in indices]
        if transport_stats is not None:
            transport_stats.update(
                transport="serial", pickled_bytes=0,
                n_batches=len(batches), slot_bytes=0,
            )
        return ShardRunResult(config=config, batches=batches)

    mode = resolve_transport(transport)
    layout = ShardSlotLayout(config.n_items, config.max_total_votes + 1)
    slot_pool: Optional[SlotPool] = None
    shm_spec: Optional[Tuple[str, int, int]] = None
    if mode == "shm" and indices:
        try:
            slot_pool = SlotPool.create(layout.slot_floats, len(indices))
            shm_spec = (slot_pool.name, layout.slot_floats, len(indices))
        except OSError:
            mode = "pickle"
            slot_pool = None
            shm_spec = None

    tasks = list(enumerate(indices))
    batches: List[ShardBatchResult] = []
    try:
        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(indices)),
            initializer=_init_worker,
            initargs=(config, engine, chunk_size, shm_spec),
        ) as pool:
            outcomes = list(pool.map(_run_one_batch, tasks))
        if transport_stats is not None:
            transport_stats["transport"] = mode
            transport_stats["pickled_bytes"] = sum(
                len(pickle.dumps(o, protocol=pickle.HIGHEST_PROTOCOL))
                for o in outcomes
            )
            transport_stats["n_batches"] = len(outcomes)
            transport_stats["slot_bytes"] = (
                layout.slot_bytes * len(indices) if slot_pool is not None else 0
            )
        for batch_index, batch, slot in outcomes:
            if batch is None:
                batch = layout.unpack(slot_pool.slot(slot), batch_index)
            batches.append(batch)
    finally:
        if slot_pool is not None:
            slot_pool.close()
    batches.sort(key=lambda batch: batch.batch_index)
    return ShardRunResult(config=config, batches=batches)
