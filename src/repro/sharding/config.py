"""Configuration for the sharded multi-item engine.

A :class:`ShardConfig` is the sharded analogue of
:class:`~repro.simulation.config.SimulationConfig`: one network, one
failure/repair process, but N replicated items with per-item vote
vectors (an ``(n_items, n_sites)`` matrix) and per-item read quorums
(an ``(n_items,)`` vector). Accounting is restricted to the paper's
``"sampled"`` mode — integer access counts are what make the vectorized
engine bitwise-equal to the per-item ``multidb`` reference loop
regardless of chunking or worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import ShardingError
from repro.sharding.workload import ItemWorkload
from repro.simulation.config import SimulationConfig
from repro.topology.model import Topology

__all__ = ["ShardConfig"]

#: Supported batch initial states (same semantics as SimulationConfig).
INITIAL_STATES = ("all_up", "stationary")


@dataclass(frozen=True)
class ShardConfig:
    """Everything one sharded batch needs.

    ``votes`` defaults to every item fully replicated with the topology's
    vote assignment (the paper's setting, repeated per item); the default
    ``read_quorums`` is the write-favouring majority ``max(T_i // 2, 1)``
    so that both quorum sides are feasible for every item.
    """

    topology: Topology
    workload: ItemWorkload
    votes: Optional[np.ndarray] = None
    read_quorums: Optional[np.ndarray] = None
    mean_time_to_failure: Union[float, np.ndarray] = 128.0
    mean_time_to_repair: Union[float, np.ndarray] = 128.0 * (1 - 0.96) / 0.96
    warmup_accesses: float = 1_000.0
    accesses_per_batch: float = 10_000.0
    n_batches: int = 5
    initial_state: str = "stationary"
    fallible_sites: Optional[np.ndarray] = None
    fallible_links: Optional[np.ndarray] = None
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        topo = self.topology
        wl = self.workload
        if wl.n_sites != topo.n_sites:
            raise ShardingError(
                f"workload covers {wl.n_sites} sites but the topology has "
                f"{topo.n_sites}"
            )
        n_items = wl.n_items
        votes = self.votes
        if votes is None:
            votes = np.broadcast_to(
                np.asarray(topo.votes, dtype=np.int64), (n_items, topo.n_sites)
            ).copy()
        votes = np.asarray(votes, dtype=np.int64)
        if votes.shape != (n_items, topo.n_sites):
            raise ShardingError(
                f"votes must have shape ({n_items}, {topo.n_sites}), "
                f"got {votes.shape}"
            )
        if (votes < 0).any():
            raise ShardingError("per-item votes must be non-negative")
        totals = votes.sum(axis=1)
        if (totals <= 0).any():
            bad = int(np.nonzero(totals <= 0)[0][0])
            raise ShardingError(
                f"item {bad} has no votes; every item needs positive total votes"
            )
        object.__setattr__(self, "votes", votes)

        read_quorums = self.read_quorums
        if read_quorums is None:
            read_quorums = np.maximum(totals // 2, 1)
        read_quorums = np.asarray(read_quorums, dtype=np.int64)
        if read_quorums.ndim == 0:
            read_quorums = np.full(n_items, int(read_quorums), dtype=np.int64)
        if read_quorums.shape != (n_items,):
            raise ShardingError(
                f"read_quorums must have shape ({n_items},), got {read_quorums.shape}"
            )
        if ((read_quorums < 1) | (read_quorums > totals)).any():
            bad = int(
                np.nonzero((read_quorums < 1) | (read_quorums > totals))[0][0]
            )
            raise ShardingError(
                f"item {bad}: read quorum {int(read_quorums[bad])} outside "
                f"1..{int(totals[bad])}"
            )
        object.__setattr__(self, "read_quorums", read_quorums)

        n_components = topo.n_sites + topo.n_links
        for label, value in (
            ("mean_time_to_failure", self.mean_time_to_failure),
            ("mean_time_to_repair", self.mean_time_to_repair),
        ):
            arr = np.asarray(value, dtype=np.float64)
            if arr.ndim == 1 and arr.shape != (n_components,):
                raise ShardingError(
                    f"{label} vector must have length n_sites + n_links = "
                    f"{n_components}, got {arr.shape[0]}"
                )
            if arr.ndim > 1 or (arr <= 0).any():
                raise ShardingError(f"{label} must be positive")
        if self.warmup_accesses < 0:
            raise ShardingError(
                f"warmup_accesses must be non-negative, got {self.warmup_accesses}"
            )
        if self.accesses_per_batch <= 0:
            raise ShardingError(
                f"accesses_per_batch must be positive, got {self.accesses_per_batch}"
            )
        if self.n_batches <= 0:
            raise ShardingError(f"n_batches must be positive, got {self.n_batches}")
        if self.initial_state not in INITIAL_STATES:
            raise ShardingError(
                f"initial_state must be one of {INITIAL_STATES}, "
                f"got {self.initial_state!r}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_simulation(
        cls,
        sim: SimulationConfig,
        workload: ItemWorkload,
        votes: Optional[np.ndarray] = None,
        read_quorums: Optional[Union[np.ndarray, Sequence[int]]] = None,
        **overrides,
    ) -> "ShardConfig":
        """Borrow network/failure/accounting knobs from a single-item config."""
        fields = dict(
            topology=sim.topology,
            workload=workload,
            votes=votes,
            read_quorums=(
                None if read_quorums is None
                else np.asarray(read_quorums, dtype=np.int64)
            ),
            mean_time_to_failure=sim.mean_time_to_failure,
            mean_time_to_repair=sim.mean_time_to_repair,
            warmup_accesses=sim.warmup_accesses,
            accesses_per_batch=sim.accesses_per_batch,
            n_batches=sim.n_batches,
            initial_state=sim.initial_state,
            fallible_sites=sim.fallible_sites,
            fallible_links=sim.fallible_links,
            seed=sim.seed,
        )
        fields.update(overrides)
        return cls(**fields)

    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        return self.workload.n_items

    @property
    def total_votes(self) -> np.ndarray:
        """Per-item total votes ``T_i``, shape ``(n_items,)``."""
        return self.votes.sum(axis=1)

    @property
    def write_quorums(self) -> np.ndarray:
        """Per-item ``q_w = T_i - q_r + 1`` (the paper's coupling)."""
        return self.total_votes - self.read_quorums + 1

    @property
    def max_total_votes(self) -> int:
        """Largest per-item vote total — the density histogram width - 1."""
        return int(self.total_votes.max())

    @property
    def warmup_time(self) -> float:
        return self.warmup_accesses / self.workload.aggregate_rate

    @property
    def batch_time(self) -> float:
        return self.accesses_per_batch / self.workload.aggregate_rate

    def with_seed(self, seed: Optional[int]) -> "ShardConfig":
        return replace(self, seed=seed)

    def with_read_quorums(
        self, read_quorums: Union[np.ndarray, Sequence[int]]
    ) -> "ShardConfig":
        return replace(
            self, read_quorums=np.asarray(read_quorums, dtype=np.int64)
        )
