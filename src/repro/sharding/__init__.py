"""Sharded multi-item simulation: N items, one network, no Python loops.

The package generalizes the paper's single replicated item to the
multi-tenant workload the ROADMAP's north star describes: ``(n_items,
n_sites)`` vote matrices, ``(n_items,)`` read-quorum vectors, Zipf- or
hotspot-skewed item access, and per-shard quorum optimization grouped by
``(alpha, votes)`` workload class. See DESIGN.md §14.

- :mod:`repro.sharding.workload` — the joint (item, site) access sampler;
- :mod:`repro.sharding.config` — :class:`ShardConfig`;
- :mod:`repro.sharding.engine` — the vectorized engine and the per-item
  ``multidb`` reference it matches bitwise;
- :mod:`repro.sharding.optimizer` — per-class quorum/vote optimization;
- :mod:`repro.sharding.runner` — batch fan-out (bitwise for any
  ``--workers``) over the shared-memory slot transport.
"""

from repro.sharding.config import ShardConfig
from repro.sharding.engine import (
    ReferenceShardEngine,
    ShardBatchResult,
    ShardedEngine,
)
from repro.sharding.optimizer import (
    ShardGroup,
    ShardPlan,
    ShardVotePlan,
    group_items,
    optimize_shard_votes,
    optimize_shards,
)
from repro.sharding.runner import ENGINE_KINDS, ShardRunResult, run_sharded
from repro.sharding.transport import ShardSlotLayout
from repro.sharding.workload import ItemWorkload

__all__ = [
    "ENGINE_KINDS",
    "ItemWorkload",
    "ReferenceShardEngine",
    "ShardBatchResult",
    "ShardConfig",
    "ShardGroup",
    "ShardPlan",
    "ShardRunResult",
    "ShardSlotLayout",
    "ShardVotePlan",
    "ShardedEngine",
    "group_items",
    "optimize_shard_votes",
    "optimize_shards",
    "run_sharded",
]
