"""Per-shard quorum optimization, grouped by workload signature.

The paper optimizes one item; a sharded database holds 10^4-10^6. The
saving grace is that items cluster: a catalog of a million entries might
carry twenty distinct ``(alpha, vote-vector)`` workload classes, and the
optimal assignment depends on the item only through that signature. So:

1. group items by identical ``(alpha_i, votes_i)`` signatures — an exact
   partition (property-tested);
2. run the paper's Figure-1 optimization ONCE per group (density from
   the closed form, exact enumeration, or seeded Monte Carlo — all
   groups share the same seed, so results are invariant under item
   permutation and class duplication);
3. scatter the per-group ``q_r*`` / ``A*`` back to the items.

``optimize_shard_votes`` rides the same grouping on top of the PR 5
vote-vector search — 10^5 items with 20 classes cost 20 vote searches,
not 10^5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ShardingError
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import OptimizationResult, optimal_read_quorum
from repro.topology.model import Topology

__all__ = [
    "ShardGroup",
    "ShardPlan",
    "ShardVotePlan",
    "group_items",
    "optimize_shards",
    "optimize_shard_votes",
]

#: Free-component cap above which the exact enumeration density is
#: replaced by seeded Monte Carlo (2^24 states is already seconds).
_ENUMERATION_MAX_COMPONENTS = 22


@dataclass(frozen=True)
class ShardGroup:
    """One workload class: items sharing ``(alpha, votes)`` exactly."""

    index: int
    alpha: float
    votes: Tuple[int, ...]
    item_indices: np.ndarray

    @property
    def size(self) -> int:
        return int(self.item_indices.shape[0])

    @property
    def total_votes(self) -> int:
        return int(sum(self.votes))


@dataclass(frozen=True)
class ShardPlan:
    """Per-item assignments scattered back from per-group optimizations."""

    groups: Tuple[ShardGroup, ...]
    group_of: np.ndarray
    read_quorums: np.ndarray
    availabilities: np.ndarray
    group_results: Tuple[OptimizationResult, ...]

    @property
    def n_items(self) -> int:
        return int(self.group_of.shape[0])

    @property
    def optimizations_run(self) -> int:
        return len(self.groups)


def group_items(
    alphas: Union[np.ndarray, Sequence[float]],
    votes: np.ndarray,
) -> Tuple[np.ndarray, Tuple[ShardGroup, ...]]:
    """Partition items by exact ``(alpha, votes-row)`` signature.

    Returns ``(group_of, groups)``: ``group_of[i]`` is the index into
    ``groups`` of item ``i``'s class. Groups are ordered by first
    occurrence, so the partition is stable under appending items and
    permutes predictably with the items themselves.
    """
    alphas = np.asarray(alphas, dtype=np.float64)
    votes = np.asarray(votes, dtype=np.int64)
    if alphas.ndim != 1:
        raise ShardingError(f"alphas must be 1-D, got shape {alphas.shape}")
    n_items = alphas.shape[0]
    if votes.ndim != 2 or votes.shape[0] != n_items:
        raise ShardingError(
            f"votes must have shape ({n_items}, n_sites), got {votes.shape}"
        )
    group_of = np.empty(n_items, dtype=np.int64)
    index_of: Dict[Tuple[float, bytes], int] = {}
    members: List[List[int]] = []
    keys: List[Tuple[float, Tuple[int, ...]]] = []
    for i in range(n_items):
        key = (float(alphas[i]), votes[i].tobytes())
        g = index_of.get(key)
        if g is None:
            g = len(members)
            index_of[key] = g
            members.append([])
            keys.append((float(alphas[i]), tuple(int(v) for v in votes[i])))
        members[g].append(i)
        group_of[i] = g
    groups = tuple(
        ShardGroup(
            index=g,
            alpha=keys[g][0],
            votes=keys[g][1],
            item_indices=np.asarray(ids, dtype=np.int64),
        )
        for g, ids in enumerate(members)
    )
    return group_of, groups


def _group_density(
    topology: Topology,
    group: ShardGroup,
    p: Optional[float],
    r: Optional[float],
    engine: str,
    n_samples: int,
    seed: int,
) -> np.ndarray:
    """Density matrix for one vote class, under the chosen engine.

    All groups receive the same ``seed`` (common random numbers): the
    optimization of a class must not depend on how many other classes
    exist or where its items sit in the id space.
    """
    if p is None or r is None:
        raise ShardingError(
            "optimize_shards needs site reliability p and link reliability r "
            "unless a precomputed density is supplied"
        )
    revoted = Topology(
        topology.n_sites,
        [(link.a, link.b) for link in topology.links],
        votes=group.votes,
    )
    if engine == "auto":
        free = topology.n_sites + topology.n_links
        engine = (
            "enumeration" if free <= _ENUMERATION_MAX_COMPONENTS else "monte-carlo"
        )
    if engine == "enumeration":
        from repro.analytic.enumeration import enumerate_density_matrix

        # Pinned to the reference backend: these densities feed golden
        # corpus entries and the bitwise sharded|multidb-reference pair,
        # so they must not move with whatever REPRO_ENUM_BACKEND (or a
        # numba install) makes the ambient default resolve to.
        return enumerate_density_matrix(
            revoted,
            np.full(topology.n_sites, p),
            np.full(topology.n_links, r),
            backend="reference",
        )
    if engine == "monte-carlo":
        from repro.analytic.montecarlo import montecarlo_density_matrix

        return montecarlo_density_matrix(
            revoted,
            np.full(topology.n_sites, p),
            np.full(topology.n_links, r),
            n_samples=n_samples,
            seed=seed,
        )
    raise ShardingError(
        f"unknown density engine {engine!r}; "
        "choose from ('auto', 'enumeration', 'monte-carlo')"
    )


def optimize_shards(
    topology: Topology,
    alphas: Union[np.ndarray, Sequence[float]],
    p: Optional[float] = None,
    r: Optional[float] = None,
    *,
    votes: Optional[np.ndarray] = None,
    engine: str = "auto",
    n_samples: int = 4000,
    seed: int = 0,
    density: Optional[np.ndarray] = None,
    method: str = "exhaustive",
    model_transform=None,
) -> ShardPlan:
    """Optimal per-item read quorums via one optimization per class.

    ``density`` short-circuits the density computation with a precomputed
    row or matrix (e.g. a closed form) — only valid when every item
    shares one vote class. ``model_transform`` lets the verification
    battery inject a bugged model wrapper.
    """
    alphas = np.asarray(alphas, dtype=np.float64)
    if alphas.ndim != 1 or alphas.shape[0] < 1:
        raise ShardingError("alphas must be a non-empty 1-D array")
    if np.any((alphas < 0.0) | (alphas > 1.0)):
        raise ShardingError("every item alpha must lie in [0, 1]")
    n_items = alphas.shape[0]
    if votes is None:
        votes = np.broadcast_to(
            np.asarray(topology.votes, dtype=np.int64),
            (n_items, topology.n_sites),
        ).copy()
    votes = np.asarray(votes, dtype=np.int64)
    group_of, groups = group_items(alphas, votes)

    if density is not None:
        vote_classes = {g.votes for g in groups}
        if len(vote_classes) > 1:
            raise ShardingError(
                "a precomputed density applies to a single vote class; "
                f"got {len(vote_classes)} distinct vote vectors"
            )

    # One model per distinct vote class, one optimizer sweep per group.
    models: Dict[Tuple[int, ...], AvailabilityModel] = {}
    read_quorums = np.empty(n_items, dtype=np.int64)
    availabilities = np.empty(n_items, dtype=np.float64)
    results: List[OptimizationResult] = []
    for group in groups:
        model = models.get(group.votes)
        if model is None:
            if density is not None:
                matrix = np.asarray(density, dtype=np.float64)
                if matrix.ndim == 1:
                    model = AvailabilityModel(matrix, matrix)
                else:
                    model = AvailabilityModel.from_density_matrix(matrix)
            else:
                matrix = _group_density(
                    topology, group, p, r, engine, n_samples, seed
                )
                model = AvailabilityModel.from_density_matrix(matrix)
            if model_transform is not None:
                model = model_transform(model)
            models[group.votes] = model
        best = optimal_read_quorum(model, group.alpha, method=method)
        results.append(best)
        read_quorums[group.item_indices] = best.read_quorum
        availabilities[group.item_indices] = best.availability
    return ShardPlan(
        groups=groups,
        group_of=group_of,
        read_quorums=read_quorums,
        availabilities=availabilities,
        group_results=tuple(results),
    )


@dataclass(frozen=True)
class ShardVotePlan:
    """Per-item vote vectors + read quorums from per-class vote search."""

    groups: Tuple[ShardGroup, ...]
    group_of: np.ndarray
    votes: np.ndarray
    read_quorums: np.ndarray
    availabilities: np.ndarray
    searches_run: int


def optimize_shard_votes(
    topology: Topology,
    alphas: Union[np.ndarray, Sequence[float]],
    p,
    r,
    *,
    total_votes: Optional[int] = None,
    method: str = "hillclimb",
    n_samples: int = 2_000,
    seed: int = 0,
    scoring: str = "delta",
) -> ShardVotePlan:
    """Run the PR 5 vote search once per distinct alpha class.

    The full ``optimize_votes`` search (vote vector + quorum, common
    random numbers) costs the same for 10 items as for 10^6 — it runs
    once per class and the winning ``(votes, q_r)`` pair is scattered to
    every member. Every class shares the same ``seed``, so the outcome
    of a class never depends on which other classes exist.
    """
    alphas = np.asarray(alphas, dtype=np.float64)
    if alphas.ndim != 1 or alphas.shape[0] < 1:
        raise ShardingError("alphas must be a non-empty 1-D array")
    n_items = alphas.shape[0]
    # For the vote search the signature is alpha alone — the search
    # chooses the vote vector, so incoming votes do not split classes.
    placeholder = np.zeros((n_items, 1), dtype=np.int64)
    group_of, raw_groups = group_items(alphas, placeholder)

    from repro.quorum.vote_optimizer import optimize_votes

    votes_matrix = np.zeros((n_items, topology.n_sites), dtype=np.int64)
    read_quorums = np.empty(n_items, dtype=np.int64)
    availabilities = np.empty(n_items, dtype=np.float64)
    groups: List[ShardGroup] = []
    for group in raw_groups:
        best = optimize_votes(
            topology,
            group.alpha,
            p,
            r,
            total_votes=total_votes,
            method=method,
            n_samples=n_samples,
            seed=seed,
            scoring=scoring,
        )
        votes_matrix[group.item_indices] = np.asarray(best.votes, dtype=np.int64)
        read_quorums[group.item_indices] = best.quorum.read_quorum
        availabilities[group.item_indices] = best.availability
        groups.append(
            ShardGroup(
                index=group.index,
                alpha=group.alpha,
                votes=tuple(int(v) for v in best.votes),
                item_indices=group.item_indices,
            )
        )
    return ShardVotePlan(
        groups=tuple(groups),
        group_of=group_of,
        votes=votes_matrix,
        read_quorums=read_quorums,
        availabilities=availabilities,
        searches_run=len(groups),
    )
