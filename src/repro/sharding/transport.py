"""Shared-memory slot layout for sharded batch results.

The sharded analogue of :class:`repro.simulation.shm.BatchSlotLayout`:
one preallocated ``float64`` slot per batch carrying the *per-item*
payload — four count vectors, two survivability-time vectors, and two
``(n_items, width)`` density tables::

    [ scalars (3: measured_time, n_epochs, n_events)
      | reads_submitted (n) | reads_granted (n)
      | writes_submitted (n) | writes_granted (n)
      | surv_read_time (n) | surv_write_time (n)
      | density_time (n * width) | density_access (n * width) ]

Counts cross as float64 (exact well past 2**53) and are cast back to
int64 on unpack, so the rehydrated :class:`ShardBatchResult` is bitwise
identical to the worker's — the same guarantee the single-item pool
transport ships under. The :class:`~repro.simulation.shm.SlotPool`
itself is reused unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sharding.engine import ShardBatchResult

__all__ = ["ShardSlotLayout"]

_N_SCALARS = 3


@dataclass(frozen=True)
class ShardSlotLayout:
    """Fixed slot layout for one :class:`ShardBatchResult`."""

    n_items: int
    width: int  # max_total_votes + 1

    @property
    def density_floats(self) -> int:
        return self.n_items * self.width

    @property
    def slot_floats(self) -> int:
        return _N_SCALARS + 6 * self.n_items + 2 * self.density_floats

    @property
    def slot_bytes(self) -> int:
        return self.slot_floats * 8

    # ------------------------------------------------------------------
    def pack(self, view: np.ndarray, batch: ShardBatchResult) -> None:
        """Write ``batch``'s numeric payload into one slot (worker side)."""
        n = self.n_items
        d = self.density_floats
        view[0] = batch.measured_time
        view[1] = float(batch.n_epochs)
        view[2] = float(batch.n_events)
        offset = _N_SCALARS
        for arr in (
            batch.reads_submitted,
            batch.reads_granted,
            batch.writes_submitted,
            batch.writes_granted,
            batch.surv_read_time,
            batch.surv_write_time,
        ):
            view[offset: offset + n] = arr
            offset += n
        view[offset: offset + d] = batch.density_time.ravel()
        view[offset + d: offset + 2 * d] = batch.density_access.ravel()

    def unpack(self, view: np.ndarray, batch_index: int) -> ShardBatchResult:
        """Rebuild a :class:`ShardBatchResult` from one slot (dispatcher)."""
        n = self.n_items
        d = self.density_floats
        shape = (n, self.width)
        offset = _N_SCALARS
        vectors = []
        for _ in range(6):
            vectors.append(view[offset: offset + n].copy())
            offset += n
        return ShardBatchResult(
            batch_index=batch_index,
            reads_submitted=vectors[0].astype(np.int64),
            reads_granted=vectors[1].astype(np.int64),
            writes_submitted=vectors[2].astype(np.int64),
            writes_granted=vectors[3].astype(np.int64),
            surv_read_time=vectors[4],
            surv_write_time=vectors[5],
            measured_time=float(view[0]),
            n_epochs=int(view[1]),
            n_events=int(view[2]),
            density_time=view[offset: offset + d].reshape(shape).copy(),
            density_access=view[offset + d: offset + 2 * d].reshape(shape).copy(),
        )
