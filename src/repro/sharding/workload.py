"""Item-access workloads: who touches which item from which site.

The single-item :class:`~repro.simulation.workload.AccessWorkload` models
*per-site* skew — where accesses are submitted. A sharded database also
needs *per-item* skew: a few hot catalog entries absorb most of the
traffic while the long tail idles. :class:`ItemWorkload` composes the
two: a probability vector over items (uniform, Zipf, or hotspot —
mirroring the per-site constructors), a per-item read fraction
``alpha_i``, and the per-site submission weights of the single-item API.

Sampling is exact Poisson thinning, arranged so that the ``n_items=1``
case consumes the random stream in *exactly* the same order as
``AccessWorkload.sample_epoch``:

1. ``total ~ Poisson(rate * duration)``;
2. ``n_reads ~ Binomial(total, mean_alpha)`` with
   ``mean_alpha = sum_i w_i alpha_i`` (for one item this is its alpha);
3. ``reads ~ Multinomial(n_reads, read_item_weights (x) read_site_weights)``
   over the flattened ``(item, site)`` grid, where
   ``read_item_weights_i = w_i alpha_i / mean_alpha`` (for one item the
   flattened grid *is* the per-site weight vector);
4. the same for writes with ``w_i (1 - alpha_i) / (1 - mean_alpha)``.

That makes the N=1 sharded run bitwise identical to the existing
single-item engine — a property test locks it down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SimulationError

__all__ = ["ItemWorkload"]


def _normalize_weights(
    weights: Union[np.ndarray, Sequence[float]], count: int, label: str
) -> np.ndarray:
    arr = np.asarray(weights, dtype=np.float64)
    if arr.shape != (count,):
        raise SimulationError(
            f"{label} must have shape ({count},), got {arr.shape}"
        )
    if np.any(arr < 0) or not np.all(np.isfinite(arr)):
        raise SimulationError(f"{label} must be finite and non-negative")
    total = arr.sum()
    if total <= 0:
        raise SimulationError(f"{label} must have positive total mass")
    return arr / total


def _alpha_vector(
    alpha: Union[float, np.ndarray, Sequence[float]], n_items: int
) -> np.ndarray:
    arr = np.asarray(alpha, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(n_items, float(arr))
    if arr.shape != (n_items,):
        raise SimulationError(
            f"alphas must be scalar or shape ({n_items},), got {arr.shape}"
        )
    if np.any(arr < 0.0) or np.any(arr > 1.0):
        raise SimulationError("every item alpha must lie in [0, 1]")
    return arr


@dataclass(frozen=True)
class ItemWorkload:
    """Joint (item, site) access distribution for a sharded database.

    ``item_weights`` is the marginal over items, ``read_site_weights`` /
    ``write_site_weights`` the (shared) per-site submission skew, and
    ``alphas`` the per-item read fraction. ``rate_per_site`` scales the
    aggregate Poisson rate exactly like the single-item workload.
    """

    n_items: int
    n_sites: int
    item_weights: np.ndarray
    alphas: np.ndarray
    read_site_weights: np.ndarray
    write_site_weights: np.ndarray
    rate_per_site: float = 1.0

    def __post_init__(self) -> None:
        if self.n_items < 1:
            raise SimulationError(
                f"need at least one item, got n_items={self.n_items}"
            )
        if self.n_sites < 1:
            raise SimulationError(
                f"need at least one site, got n_sites={self.n_sites}"
            )
        if self.rate_per_site <= 0:
            raise SimulationError("rate_per_site must be positive")
        object.__setattr__(
            self, "item_weights",
            _normalize_weights(self.item_weights, self.n_items, "item_weights"),
        )
        object.__setattr__(
            self, "alphas", _alpha_vector(self.alphas, self.n_items)
        )
        object.__setattr__(
            self, "read_site_weights",
            _normalize_weights(
                self.read_site_weights, self.n_sites, "read_site_weights"
            ),
        )
        object.__setattr__(
            self, "write_site_weights",
            _normalize_weights(
                self.write_site_weights, self.n_sites, "write_site_weights"
            ),
        )

    # ------------------------------------------------------------------
    # Constructors (mirroring AccessWorkload's per-site skew API)
    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        n_items: int,
        n_sites: int,
        alpha: Union[float, Sequence[float]],
        rate_per_site: float = 1.0,
    ) -> "ItemWorkload":
        """Every item equally popular, every site submitting equally."""
        return cls(
            n_items=n_items,
            n_sites=n_sites,
            item_weights=np.full(max(n_items, 1), 1.0),
            alphas=np.asarray(alpha, dtype=np.float64),
            # 1/n before normalization, matching AccessWorkload.uniform
            # bit for bit (the N=1 parity contract).
            read_site_weights=np.full(max(n_sites, 1), 1.0 / max(n_sites, 1)),
            write_site_weights=np.full(max(n_sites, 1), 1.0 / max(n_sites, 1)),
            rate_per_site=rate_per_site,
        )

    @classmethod
    def zipf(
        cls,
        n_items: int,
        n_sites: int,
        alpha: Union[float, Sequence[float]],
        exponent: float = 1.0,
        rate_per_site: float = 1.0,
    ) -> "ItemWorkload":
        """Item ``i`` weighted ``1 / (i + 1) ** exponent`` (hot head at 0)."""
        if exponent < 0:
            raise SimulationError(
                f"zipf exponent must be non-negative, got {exponent}"
            )
        if n_items < 1:
            raise SimulationError(
                f"need at least one item, got n_items={n_items}"
            )
        ranks = np.arange(1, n_items + 1, dtype=np.float64)
        return cls(
            n_items=n_items,
            n_sites=n_sites,
            item_weights=ranks ** -float(exponent),
            alphas=np.asarray(alpha, dtype=np.float64),
            # 1/n before normalization, matching AccessWorkload.uniform
            # bit for bit (the N=1 parity contract).
            read_site_weights=np.full(max(n_sites, 1), 1.0 / max(n_sites, 1)),
            write_site_weights=np.full(max(n_sites, 1), 1.0 / max(n_sites, 1)),
            rate_per_site=rate_per_site,
        )

    @classmethod
    def hotspot(
        cls,
        n_items: int,
        n_sites: int,
        alpha: Union[float, Sequence[float]],
        hot_items: Sequence[int],
        hot_fraction: float = 0.8,
        rate_per_site: float = 1.0,
    ) -> "ItemWorkload":
        """``hot_fraction`` of traffic lands on ``hot_items``, rest uniform."""
        if not 0.0 < hot_fraction < 1.0:
            raise SimulationError(
                f"hot_fraction must lie in (0, 1), got {hot_fraction}"
            )
        hot = sorted(set(int(i) for i in hot_items))
        if not hot:
            raise SimulationError("hotspot workload needs at least one hot item")
        if hot[0] < 0 or hot[-1] >= n_items:
            raise SimulationError(
                f"hot items {hot} outside the 0..{n_items - 1} item range"
            )
        cold = n_items - len(hot)
        if cold == 0:
            raise SimulationError("hotspot workload needs at least one cold item")
        weights = np.full(n_items, (1.0 - hot_fraction) / cold)
        weights[hot] = hot_fraction / len(hot)
        return cls(
            n_items=n_items,
            n_sites=n_sites,
            item_weights=weights,
            alphas=np.asarray(alpha, dtype=np.float64),
            # 1/n before normalization, matching AccessWorkload.uniform
            # bit for bit (the N=1 parity contract).
            read_site_weights=np.full(max(n_sites, 1), 1.0 / max(n_sites, 1)),
            write_site_weights=np.full(max(n_sites, 1), 1.0 / max(n_sites, 1)),
            rate_per_site=rate_per_site,
        )

    def with_site_weights(
        self,
        read_site_weights: Sequence[float],
        write_site_weights: Optional[Sequence[float]] = None,
    ) -> "ItemWorkload":
        """Replace the per-site submission skew (per-item mix unchanged)."""
        writes = (
            read_site_weights if write_site_weights is None else write_site_weights
        )
        return ItemWorkload(
            n_items=self.n_items,
            n_sites=self.n_sites,
            item_weights=self.item_weights,
            alphas=self.alphas,
            read_site_weights=np.asarray(read_site_weights, dtype=np.float64),
            write_site_weights=np.asarray(writes, dtype=np.float64),
            rate_per_site=self.rate_per_site,
        )

    def with_alphas(
        self, alpha: Union[float, Sequence[float]]
    ) -> "ItemWorkload":
        return ItemWorkload(
            n_items=self.n_items,
            n_sites=self.n_sites,
            item_weights=self.item_weights,
            alphas=np.asarray(alpha, dtype=np.float64),
            read_site_weights=self.read_site_weights,
            write_site_weights=self.write_site_weights,
            rate_per_site=self.rate_per_site,
        )

    # ------------------------------------------------------------------
    @property
    def aggregate_rate(self) -> float:
        """Total access rate across all sites (items share the budget)."""
        return self.n_sites * self.rate_per_site

    @property
    def mean_alpha(self) -> float:
        """Traffic-weighted read fraction (the Poisson-thinning split)."""
        return float((self.item_weights * self.alphas).sum())

    def _joint_weights(self) -> Tuple[float, np.ndarray, np.ndarray]:
        """(mean_alpha, read pvals, write pvals) over the (item, site) grid.

        For a single item the outer product with its weight-1 marginal
        reproduces the per-site vector bitwise, which is what keeps the
        N=1 run identical to the single-item engine.
        """
        mean_alpha = self.mean_alpha
        if mean_alpha > 0.0:
            read_items = self.item_weights * self.alphas / mean_alpha
        else:
            read_items = self.item_weights
        if mean_alpha < 1.0:
            write_items = (
                self.item_weights * (1.0 - self.alphas) / (1.0 - mean_alpha)
            )
        else:
            write_items = self.item_weights
        read_p = np.outer(read_items, self.read_site_weights).ravel()
        write_p = np.outer(write_items, self.write_site_weights).ravel()
        return mean_alpha, read_p, write_p

    def sample_epoch(
        self, duration: float, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sampled ``(reads, writes)`` counts, shape ``(n_items, n_sites)``."""
        if duration < 0:
            raise SimulationError(f"epoch duration must be >= 0, got {duration}")
        total = int(rng.poisson(self.aggregate_rate * duration))
        shape = (self.n_items, self.n_sites)
        if total == 0:
            # Same short-circuit as AccessWorkload: no thinning draws are
            # consumed for an empty epoch, keeping the N=1 stream aligned.
            zero = np.zeros(shape, dtype=np.int64)
            return zero, zero.copy()
        mean_alpha, read_p, write_p = self._joint_weights()
        n_reads = int(rng.binomial(total, mean_alpha))
        n_writes = total - n_reads
        reads = rng.multinomial(n_reads, read_p).astype(np.int64).reshape(shape)
        writes = rng.multinomial(n_writes, write_p).astype(np.int64).reshape(shape)
        return reads, writes

    def expected_epoch(self, duration: float) -> Tuple[np.ndarray, np.ndarray]:
        """Expected counts over the ``(item, site)`` grid (no sampling)."""
        if duration < 0:
            raise SimulationError(f"epoch duration must be >= 0, got {duration}")
        total = self.aggregate_rate * duration
        mean_alpha, read_p, write_p = self._joint_weights()
        shape = (self.n_items, self.n_sites)
        reads = (total * mean_alpha) * read_p.reshape(shape)
        writes = (total * (1.0 - mean_alpha)) * write_p.reshape(shape)
        return reads, writes
