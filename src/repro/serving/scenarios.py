"""Canned fault scenarios for serving runs, scaled to the stream horizon.

Unlike the chaos-campaign scenarios (which may sample Poisson occurrence
times from the batch stream), every serving scenario here is *fully
scripted*: occurrence times are fixed fractions of the horizon, so a
seeded ``repro serve`` run — and the golden-corpus entry locked on one —
is exactly reproducible with no dependence on schedule randomness.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.faults.schedule import (
    CascadingFailure,
    CorrelatedFailure,
    FaultSchedule,
    FlappingSite,
    ScriptedPartition,
)
from repro.topology.model import Topology

__all__ = ["SERVE_SCENARIOS", "serving_schedule"]

SERVE_SCENARIOS = ("none", "correlated", "partition", "flap", "cascade", "mixed")


def serving_schedule(scenario: str, topology: Topology,
                     horizon: float) -> FaultSchedule:
    """A deterministic fault schedule for ``scenario`` over ``horizon``."""
    if horizon <= 0:
        raise ReproError(f"horizon must be positive, got {horizon}")
    n = topology.n_sites
    if scenario == "none":
        return FaultSchedule([])

    half = list(range(n // 2))
    # A shared-risk group (rack / power feed): a handful of sites that
    # fail together, repeatedly, holding the degraded regime long enough
    # for the online estimator to see it and react.
    group = list(range(max(2, n // 6)))
    if scenario == "correlated":
        return FaultSchedule([
            CorrelatedFailure(
                sites=group,
                at_times=[0.15 * horizon, 0.45 * horizon, 0.72 * horizon],
                down_time=0.18 * horizon,
            ),
        ])
    if scenario == "partition":
        return FaultSchedule([
            ScriptedPartition(0.2 * horizon, [half], heal_at=0.45 * horizon),
            ScriptedPartition(0.55 * horizon, [half[::2]], heal_at=0.8 * horizon),
        ])
    if scenario == "flap":
        return FaultSchedule([
            FlappingSite(0, period=horizon / 10.0, until=0.9 * horizon),
            FlappingSite(1 % n, period=horizon / 7.0, until=0.9 * horizon),
        ])
    if scenario == "cascade":
        return FaultSchedule([
            CascadingFailure(0.2 * horizon, half[:3] or [0],
                             delay=horizon / 20.0, heal_at=0.7 * horizon),
        ])
    if scenario == "mixed":
        return FaultSchedule([
            ScriptedPartition(0.2 * horizon, [half], heal_at=0.4 * horizon),
            CorrelatedFailure(
                sites=group,
                at_times=[0.5 * horizon, 0.75 * horizon],
                down_time=0.15 * horizon,
            ),
            FlappingSite(n - 1, period=horizon / 8.0, until=0.9 * horizon),
        ])
    raise ReproError(
        f"unknown serving scenario {scenario!r}; choose from {SERVE_SCENARIOS}"
    )
