"""Per-site circuit breakers for the serving layer.

A site whose accesses keep failing (its component lost quorum, or the
site itself is down) should stop absorbing retry budget: the breaker
*opens* after ``failure_threshold`` consecutive failures and fast-fails
subsequent requests for ``cooldown`` simulated seconds. After the
cooldown one probe request is let through (*half-open*); success closes
the breaker, failure re-opens it for another cooldown.

All state transitions run on simulated time inside the single-sequencer
engine, so breaker behaviour is deterministic for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List

from repro.errors import ReproError

__all__ = ["BreakerState", "CircuitBreakerConfig", "CircuitBreaker", "BreakerBoard"]


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class CircuitBreakerConfig:
    """Breaker policy shared by every site's breaker."""

    failure_threshold: int = 8
    cooldown: float = 20.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown <= 0.0:
            raise ReproError(f"cooldown must be positive, got {self.cooldown}")


class CircuitBreaker:
    """One site's breaker state machine."""

    __slots__ = ("config", "state", "failures", "opened_at", "probing", "trips")

    def __init__(self, config: CircuitBreakerConfig) -> None:
        self.config = config
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False
        self.trips = 0

    def allow(self, now: float) -> bool:
        """May a request proceed at simulated time ``now``?"""
        if not self.config.enabled or self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self.opened_at >= self.config.cooldown:
                self.state = BreakerState.HALF_OPEN
                self.probing = False
            else:
                return False
        # HALF_OPEN: exactly one probe at a time.
        if self.probing:
            return False
        self.probing = True
        return True

    def on_success(self) -> None:
        self.failures = 0
        self.probing = False
        self.state = BreakerState.CLOSED

    def on_failure(self, now: float) -> None:
        if not self.config.enabled:
            return
        if self.state is BreakerState.HALF_OPEN:
            self._trip(now)
            return
        self.failures += 1
        if self.failures >= self.config.failure_threshold:
            self._trip(now)

    def _trip(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self.opened_at = now
        self.failures = 0
        self.probing = False
        self.trips += 1


class BreakerBoard:
    """The per-site breaker array plus aggregate accounting."""

    def __init__(self, n_sites: int, config: CircuitBreakerConfig) -> None:
        if n_sites <= 0:
            raise ReproError(f"need at least one site, got {n_sites}")
        self.config = config
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(config) for _ in range(n_sites)
        ]
        #: Requests fast-failed by an open breaker.
        self.rejections = 0

    def allow(self, site: int, now: float) -> bool:
        allowed = self.breakers[site].allow(now)
        if not allowed:
            self.rejections += 1
        return allowed

    def on_success(self, site: int) -> None:
        self.breakers[site].on_success()

    def on_failure(self, site: int, now: float) -> None:
        self.breakers[site].on_failure(now)

    @property
    def trips(self) -> int:
        return sum(b.trips for b in self.breakers)

    def open_sites(self) -> List[int]:
        return [
            i for i, b in enumerate(self.breakers)
            if b.state is not BreakerState.CLOSED
        ]

    def states(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for breaker in self.breakers:
            counts[breaker.state.value] = counts.get(breaker.state.value, 0) + 1
        return counts
