"""The adaptive quorum serving engine: asyncio transport, sim-time sequencer.

``repro serve`` is a long-running service in miniature: thousands of
client coroutines push access requests at a :class:`ReplicatedDatabase`
while a scripted chaos schedule breaks the network underneath, an online
density estimator watches component sizes, and a control loop installs
better quorum assignments through the QR protocol — with an invariant
monitor attached end-to-end.

**Determinism architecture.** The acceptance bar is bitwise-identical
results for any client-concurrency setting at a fixed seed, which no
naive asyncio design can meet (task scheduling order is not part of the
seed). The design splits the service in two:

- *Transport* (async, nondeterministic): ``n_clients`` feeder tasks push
  precomputed request chunks through a bounded :class:`asyncio.Queue`.
  This layer provides genuine backpressure and concurrency but carries
  only *chunk ids* — it cannot influence outcomes.
- *Sequencer* (deterministic): a single engine coroutine reassembles
  chunks into global id order and interleaves them with a sim-time event
  heap (scripted faults, retry timers, control ticks, watchdog ticks).
  Every outcome-affecting decision — shedding, breaker transitions,
  retry backoff draws, degradation-mode changes, reassignments — happens
  here, keyed on simulated time only.

Heap ties at equal simulated time break by event kind (faults before
retries before control before watchdog) and then by insertion sequence,
so the processing order is a pure function of the configuration.
"""

from __future__ import annotations

import asyncio
import heapq
import math
import time as _walltime
from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import DensityError, OptimizationError
from repro.faults.monitor import InvariantMonitor
from repro.protocols.base import ReplicaControlProtocol
from repro.protocols.estimator import OnlineDensityEstimator
from repro.protocols.reassignment import QuorumReassignmentProtocol
from repro.protocols.workload_estimator import WorkloadEstimator
from repro.quorum.optimizer import optimal_read_quorum
from repro.replication.database import ReplicatedDatabase
from repro.rng import stream_for
from repro.serving.breakers import BreakerBoard
from repro.serving.config import ServeConfig
from repro.serving.report import ReassignmentEvent, ServeReport, outcome_code
from repro.serving.requests import RequestStream
from repro.simulation.events import EventKind
from repro.telemetry.recorder import Telemetry
from repro.telemetry.recorder import current as _current_telemetry
from repro.telemetry.spans import NULL_SPAN
from repro.tracing.context import SCOPE_SERVE, TraceContext
from repro.tracing.profiler import NULL_PROFILER

__all__ = ["AdaptiveQuorumService", "run_serve"]

#: Substream index for the retry-backoff jitter stream.
_STREAM_RETRY = 201
#: Substream index handed to the fault schedule (stochastic injectors).
_STREAM_CHAOS = 202

# Heap event kinds, in tie-break priority order at equal simulated time.
_FAULT, _RETRY, _CONTROL, _WATCHDOG = 0, 1, 2, 3

_CODE_UNSERVED = outcome_code("unserved")
_CODE_GRANTED = outcome_code("granted")
_CODE_STALE_READ = outcome_code("stale_read")
_CODE_TIMEOUT = outcome_code("timeout")
_CODE_READ_ONLY = outcome_code("read_only")
_CODE_OVERLOAD = outcome_code("overload")
_CODE_CIRCUIT_OPEN = outcome_code("circuit_open")

#: Audit denial causes map 1:1 onto terminal outcome codes.
_CODE_BY_CAUSE = {
    "site_down": outcome_code("site_down"),
    "no_quorum": outcome_code("no_quorum"),
    "stale_assignment": outcome_code("stale_assignment"),
}

#: Latency buckets on the simulated clock (backoff-scale, not µs-scale).
_LATENCY_BUCKETS = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 30.0, 60.0)


class _MaskCachingProtocol(ReplicaControlProtocol):
    """Memoizes the inner protocol's grant masks between state changes.

    ``QuorumReassignmentProtocol.grant_masks`` walks every component; at
    ~10⁶ accesses per run that is the hot path. Masks only change when
    the network state version moves or an assignment is installed, so
    the cache key is ``(state version, max assignment version,
    installs)``. Everything else delegates to the inner protocol, so the
    monitor and audit layers see the QR state unchanged.
    """

    def __init__(self, inner: QuorumReassignmentProtocol) -> None:
        self._inner = inner
        self._key: Optional[Tuple[int, int, int]] = None
        self._masks: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self.name = inner.name
        self.declarative_grants = getattr(inner, "declarative_grants", False)

    def grant_masks(self, tracker):
        inner = self._inner
        key = (
            tracker.state.version,
            int(inner.site_version.max()),
            inner.installs,
        )
        if key != self._key:
            self._masks = inner.grant_masks(tracker)
            self._key = key
        return self._masks

    def on_network_change(self, tracker) -> None:
        self._inner.on_network_change(tracker)
        self._key = None

    def invalidate(self) -> None:
        self._key = None

    def bind_telemetry(self, telemetry) -> None:
        super().bind_telemetry(telemetry)
        self._inner.bind_telemetry(telemetry)

    def reset(self) -> None:
        self._inner.reset()
        self._key = None

    def __getattr__(self, attr):
        return getattr(self._inner, attr)


class _Pending:
    """One in-flight request between its first attempt and its outcome."""

    __slots__ = ("rid", "site", "is_read", "submit", "attempts")

    def __init__(self, rid: int, site: int, is_read: bool, submit: float) -> None:
        self.rid = rid
        self.site = site
        self.is_read = is_read
        self.submit = submit
        self.attempts = 0


class AdaptiveQuorumService:
    """One serving run: build it, ``await run_async()`` (or use run_serve)."""

    def __init__(self, config: ServeConfig, telemetry=None) -> None:
        self.config = config
        # Reconciliation requires THIS run's exact audit totals, so the
        # service only adopts a recorder handed over *explicitly*; the
        # ambient recorder may span several runs (a benchmark loop, a
        # verification battery) and its cumulative audit would never
        # reconcile. Without an explicit recorder the service records
        # into a live private one.
        explicit = telemetry is not None and getattr(telemetry, "enabled", False)
        tel = telemetry if explicit else Telemetry()
        self.telemetry = tel
        # Phase attribution has no per-run reconciliation, so it *does*
        # flow to the ambient recorder when one is installed — that is
        # how benchmark rounds accumulate their serve.* phase tables.
        ambient = _current_telemetry()
        self._profiling = (explicit or ambient.enabled
                           or config.profile_phases)
        if explicit:
            self._prof = tel.phases
        elif ambient.enabled:
            self._prof = ambient.phases
        elif config.profile_phases:
            self._prof = tel.phases
        else:
            self._prof = NULL_PROFILER

        topology = config.topology
        self.n_sites = topology.n_sites
        self.qr = QuorumReassignmentProtocol(self.n_sites, config.initial_assignment)
        self.protocol = _MaskCachingProtocol(self.qr)
        self.monitor = InvariantMonitor(record_snapshots=False, telemetry=tel)
        self.db = ReplicatedDatabase(
            topology,
            self.protocol,
            initial_value=0,
            check_serializability=config.check_serializability,
            monitor=self.monitor,
            telemetry=tel,
            record_history=False,
        )
        self.stream = RequestStream(
            config.workload, config.n_requests, config.seed, config.chunk_size
        )
        self.density = OnlineDensityEstimator(
            self.n_sites, topology.total_votes,
            forgetting_factor=config.forgetting_factor,
        )
        self.workload_est = WorkloadEstimator(
            self.n_sites, forgetting_factor=config.forgetting_factor
        )
        self.breakers = BreakerBoard(self.n_sites, config.breaker)
        self._retry_rng = stream_for(config.seed, _STREAM_RETRY)

        n = config.n_requests
        self._codes = np.full(n, _CODE_UNSERVED, dtype=np.int8)
        self._attempts = np.zeros(n, dtype=np.int16)
        self._db_counts: Dict[Tuple[str, str], int] = {}

        metrics = tel.metrics
        self._latency = metrics.histogram(
            "repro_serve_latency_seconds",
            "time from submission to grant, simulated seconds",
            buckets=_LATENCY_BUCKETS,
        )
        self._c_retry_attempts = metrics.counter(
            "repro_retry_attempts_total",
            "retry attempts scheduled, by op and denial cause",
        )
        self._c_retry_exhausted = metrics.counter(
            "repro_retry_exhausted_total",
            "accesses failed after their retry budget, by op and last cause",
        )

        # Sim-time sequencer state -------------------------------------
        self._heap: List[Tuple[float, int, int, object]] = []
        self._seq = 0
        self.now = 0.0
        self._last_obs_time = 0.0
        self._observed_time = 0.0
        self._waiting: Dict[int, _Pending] = {}
        self._aborted = False

        self._read_only = False
        self._read_only_since = 0.0
        self._read_only_entries = 0
        self._read_only_time = 0.0

        self._pending_target = None  # (QuorumAssignment, since_time)
        self._reassignments: List[ReassignmentEvent] = []
        self._watchdog_ticks = 0
        self._watchdog_interventions = 0
        self._retries_scheduled = 0
        self._retries_exhausted = 0
        self._shed = 0
        self._n_feeders = min(config.n_clients, self.stream.n_chunks)

        if config.fault_schedule is not None:
            chaos_rng = stream_for(config.seed, _STREAM_CHAOS)
            for at, kind, target in config.fault_schedule.all_events(
                topology, chaos_rng
            ):
                self._push(at, _FAULT, (kind, int(target)))
        self._push(config.control_interval, _CONTROL, None)
        self._push(config.watchdog_interval, _WATCHDOG, None)
        self._update_mode()

    # ------------------------------------------------------------------
    # Sim-time plumbing
    # ------------------------------------------------------------------
    def _push(self, at: float, kind: int, payload) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (at, kind, self._seq, payload))

    def _advance(self, at: float) -> None:
        if at > self.now:
            self.db.advance_time(at - self.now)
            self.now = at

    def _flush_observation(self) -> None:
        """Time-weighted density observation of the interval just ended."""
        dt = self.now - self._last_obs_time
        if dt > 0:
            self.density.observe_all(self.db.tracker.vote_totals, weight=dt)
            self._observed_time += dt
        self._last_obs_time = self.now

    # ------------------------------------------------------------------
    # Network changes, degradation, invariants
    # ------------------------------------------------------------------
    def _apply_fault(self, kind: EventKind, target: int) -> None:
        span = (self.telemetry.span("serve.fault.apply", kind=kind.name,
                                    target=target, t=self.now)
                if self._profiling else NULL_SPAN)
        with span, self._prof.phase("serve.fault"):
            self._flush_observation()
            if kind is EventKind.SITE_FAIL:
                self.db.fail_site(target)
            elif kind is EventKind.SITE_REPAIR:
                self.db.repair_site(target)
            else:
                link = self.db.topology.links[target]
                if kind is EventKind.LINK_FAIL:
                    self.db.fail_link(link.a, link.b)
                else:
                    self.db.repair_link(link.a, link.b)
            self._after_network_change()

    def _after_network_change(self) -> None:
        self.monitor.observe(self.now, self.db.tracker, self.protocol)
        self._update_mode()
        if self.config.abort_on_violation and not self.monitor.ok:
            self._aborted = True

    def _update_mode(self) -> None:
        """Enter/leave read-only mode as write quorums vanish/return."""
        writable = bool(self.protocol.grant_masks(self.db.tracker)[1].any())
        if not writable and not self._read_only:
            self._read_only = True
            self._read_only_since = self.now
            self._read_only_entries += 1
        elif writable and self._read_only:
            self._read_only = False
            self._read_only_time += self.now - self._read_only_since

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def _admit(self, rid: int, at: float, site: int, is_read: bool) -> None:
        with self._prof.phase("serve.admit"):
            self._advance(at)
            self.workload_est.observe(site, is_read)
            if not self.breakers.allow(site, self.now):
                self._record(rid, _CODE_CIRCUIT_OPEN, 0)
                return
            if (self._read_only and not is_read
                    and self.config.read_only_fast_reject):
                self._record(rid, _CODE_READ_ONLY, 0)
                return
            if len(self._waiting) >= self.config.queue_capacity:
                self._shed += 1
                self._record(rid, _CODE_OVERLOAD, 0)
                return
            pending = _Pending(rid, site, is_read, self.now)
        self._attempt(pending)

    def _attempt(self, pending: _Pending) -> None:
        with self._prof.phase("serve.attempt"):
            pending.attempts += 1
            site = pending.site
            if pending.is_read:
                result = self.db.submit_read(site)
                op = "read"
            else:
                result = self.db.submit_write(site, pending.rid)
                op = "write"
            # The refined audit cause (incl. no_quorum ->
            # stale_assignment), exactly as the audit log recorded it —
            # reconciliation by construction, not by re-deriving the
            # refinement here.
            cause = self.db.last_audit_reason or result.outcome.value
            key = (op, cause)
            self._db_counts[key] = self._db_counts.get(key, 0) + 1

            if result.granted:
                self.breakers.on_success(site)
                self._latency.observe(self.now - pending.submit)
                self._record(pending.rid, _CODE_GRANTED, pending.attempts)
                return

            policy = self.config.retry_policy
            if pending.attempts < policy.max_attempts:
                delay = policy.backoff(pending.attempts, self._retry_rng)
                if policy.within_deadline(self.now + delay - pending.submit):
                    self._retries_scheduled += 1
                    self._c_retry_attempts.inc(op=op, cause=cause)
                    self._waiting[pending.rid] = pending
                    self._push(self.now + delay, _RETRY, pending)
                    return
                self._finish_denied(pending, op, cause, _CODE_TIMEOUT)
                return
            self._finish_denied(pending, op, cause, _CODE_BY_CAUSE[cause])

    def _finish_denied(self, pending: _Pending, op: str, cause: str,
                       code: int) -> None:
        self._retries_exhausted += 1
        self._c_retry_exhausted.inc(op=op, cause=cause)
        self.breakers.on_failure(pending.site, self.now)
        if pending.is_read and self.config.stale_reads:
            # Graceful degradation: serve the newest component-local
            # copy, explicitly marked stale (never counted as granted).
            if self.db.peek_newest(pending.site) is not None:
                code = _CODE_STALE_READ
        self._record(pending.rid, code, pending.attempts)

    def _record(self, rid: int, code: int, attempts: int) -> None:
        self._codes[rid] = code
        self._attempts[rid] = attempts

    # ------------------------------------------------------------------
    # Adaptive control loop
    # ------------------------------------------------------------------
    def _control_tick(self) -> None:
        span = (self.telemetry.span("serve.control.tick", t=self.now)
                if self._profiling else NULL_SPAN)
        with span, self._prof.phase("serve.control"):
            self._flush_observation()
            self._maybe_reassign("control")
            self._push(self.now + self.config.control_interval, _CONTROL, None)

    def _estimate(self):
        """(model, alpha) from online estimates, or None if starved."""
        if self._observed_time < self.config.min_observation_time:
            return None
        try:
            matrix = self.density.density_matrix()
        except DensityError:
            return None
        alpha, r_i, w_i = self.workload_est.snapshot()
        # The density-model engine is pluggable through the registry
        # (default "online-density": AvailabilityModel.from_density_matrix).
        from repro.engines import KIND_DENSITY_MODEL, get_engine

        spec = get_engine(self.config.density_engine, kind=KIND_DENSITY_MODEL)
        model = spec.build(matrix, read_weights=r_i, write_weights=w_i)
        return model, alpha

    def _maybe_reassign(self, trigger: str) -> bool:
        estimate = self._estimate()
        if estimate is None:
            return False
        model, alpha = estimate
        try:
            best = optimal_read_quorum(
                model, alpha, method=self.config.optimizer_method
            )
        except OptimizationError:
            return False
        tracker = self.db.tracker
        up = np.nonzero(tracker.labels >= 0)[0]
        if up.size == 0:
            return False
        site = int(up[np.argmax(self.qr.site_version[up])])
        current = self.qr.effective_assignment(tracker, site)
        if current is None or best.assignment == current:
            self._pending_target = None
            return False
        gain = best.availability - float(
            model.availability(alpha, current.read_quorum)
        )
        if gain < self.config.improvement_threshold:
            self._pending_target = None
            return False
        if self._try_install(best.assignment, trigger):
            self._pending_target = None
            return True
        # Wanted to reassign, could not (installation rule): remember the
        # intent so the watchdog can detect the stall.
        if self._pending_target is None or self._pending_target[0] != best.assignment:
            self._pending_target = (best.assignment, self.now)
        return False

    def _try_install(self, assignment, trigger: str) -> bool:
        """Install ``assignment`` from any component that may (QR rule)."""
        tracker = self.db.tracker
        for members, effective, _votes in self.qr.component_views(tracker):
            site = int(members[0])
            if not self.qr.can_reassign(tracker, site):
                continue
            if self.qr.try_reassign(tracker, site, assignment):
                self.protocol.invalidate()
                self._reassignments.append(
                    ReassignmentEvent(
                        time=self.now,
                        site=site,
                        old_read_quorum=effective.read_quorum,
                        new_read_quorum=assignment.read_quorum,
                        version=self.qr.max_version(),
                        trigger=trigger,
                    )
                )
                self._after_network_change()
                return True
        return False

    def _watchdog_tick(self) -> None:
        with self._prof.phase("serve.watchdog"):
            self._watchdog_tick_inner()

    def _watchdog_tick_inner(self) -> None:
        self._watchdog_ticks += 1
        if self._pending_target is not None:
            target, since = self._pending_target
            if self.now - since >= self.config.stall_threshold:
                self._watchdog_interventions += 1
                self._flush_observation()
                if self._try_install(target, "watchdog"):
                    self._pending_target = None
                else:
                    # Still uninstallable: the evidence that produced the
                    # target is stale too. Force re-estimation from
                    # scratch so the next control tick reasons from
                    # current conditions.
                    self.density.reset()
                    self._observed_time = 0.0
                    self._pending_target = None
        self._push(self.now + self.config.watchdog_interval, _WATCHDOG, None)

    # ------------------------------------------------------------------
    # Async transport + sequencer
    # ------------------------------------------------------------------
    async def _feed(self, transport: asyncio.Queue, client: int) -> None:
        for index in range(client, self.stream.n_chunks, self._n_feeders):
            await transport.put((index, self.stream.chunk(index)))

    async def _engine(self, transport: asyncio.Queue) -> None:
        n_chunks = self.stream.n_chunks
        buffered: Dict[int, object] = {}
        next_chunk = 0
        arrivals: deque = deque()

        async def refill() -> None:
            # Reassemble chunks into contiguous global id order; feeder
            # scheduling decides only *when* chunks show up, never the
            # order requests are processed in. The serve.transport phase
            # includes the wait on the queue, so it measures how long the
            # sequencer is starved by the transport layer.
            nonlocal next_chunk
            with self._prof.phase("serve.transport"):
                while not arrivals and next_chunk < n_chunks:
                    index, chunk = await transport.get()
                    buffered[index] = chunk
                    while next_chunk in buffered:
                        arrivals.extend(buffered.pop(next_chunk).rows())
                        next_chunk += 1

        while not self._aborted:
            await refill()
            head_time = arrivals[0][1] if arrivals else math.inf
            heap = self._heap
            while heap and heap[0][0] <= head_time:
                if self._aborted:
                    break
                if head_time == math.inf and not self._waiting:
                    break  # drained: no arrivals left, no retries in flight
                at, kind, _seq, payload = heapq.heappop(heap)
                self._advance(at)
                if kind == _FAULT:
                    self._apply_fault(*payload)
                elif kind == _RETRY:
                    self._waiting.pop(payload.rid, None)
                    self._attempt(payload)
                elif kind == _CONTROL:
                    self._control_tick()
                else:
                    self._watchdog_tick()
            if self._aborted or not arrivals:
                break
            rid, at, site, is_read = arrivals.popleft()
            self._admit(rid, at, site, is_read)

    async def run_async(self) -> ServeReport:
        started = _walltime.perf_counter()
        # Serve-scope trace context: span ids derive from
        # (seed, "serve", ordinal), and the sequencer opens spans in
        # deterministic sim-time order, so the exported tree is identical
        # for any --clients / transport_slots value.
        serve_ctx = TraceContext(self.config.seed, SCOPE_SERVE, 0)
        with self.telemetry.spans.scoped(serve_ctx), \
                self.telemetry.span("serve.run",
                                    scenario=self.config.scenario,
                                    n_requests=self.config.n_requests,
                                    seed=self.config.seed):
            transport: asyncio.Queue = asyncio.Queue(
                maxsize=self.config.transport_slots
            )
            feeders = [
                asyncio.create_task(self._feed(transport, client))
                for client in range(self._n_feeders)
            ]
            try:
                await self._engine(transport)
            finally:
                # Clean shutdown: the sequencer has drained (or aborted);
                # feeders holding undelivered chunks are cancelled.
                for feeder in feeders:
                    feeder.cancel()
                await asyncio.gather(*feeders, return_exceptions=True)
            return self._build_report(_walltime.perf_counter() - started)

    # ------------------------------------------------------------------
    # Final reconciled snapshot
    # ------------------------------------------------------------------
    def _final_assignment(self):
        newest = int(np.argmax(self.qr.site_version))
        return self.qr.site_assignment[newest]

    def _latency_summary(self) -> Dict[str, float]:
        series = self._latency.series().get((), None)
        if series is None or series.count == 0:
            return {"count": 0, "mean": math.nan, "p50": math.nan,
                    "p90": math.nan, "p99": math.nan, "max": math.nan}
        return {
            "count": float(series.count),
            "mean": series.mean(),
            "p50": self._latency.quantile(0.5),
            "p90": self._latency.quantile(0.9),
            "p99": self._latency.quantile(0.99),
            "max": series.max,
        }

    def _build_report(self, wall_seconds: float) -> ServeReport:
        if self._read_only:
            self._read_only_time += self.now - self._read_only_since
            self._read_only_since = self.now
        self._flush_observation()

        from repro.serving.report import OUTCOME_NAMES

        counts = np.bincount(self._codes, minlength=len(OUTCOME_NAMES))
        outcomes = {
            name: int(counts[code])
            for code, name in enumerate(OUTCOME_NAMES)
            if counts[code]
        }
        metrics = self.telemetry.metrics
        served_counter = metrics.counter(
            "repro_serve_requests_total", "serving-layer request outcomes"
        )
        for name, count in outcomes.items():
            served_counter.inc(count, outcome=name)
        if self._reassignments:
            reassign_counter = metrics.counter(
                "repro_serve_reassignments_total",
                "quorum reassignments installed by the serving control loop",
            )
            for event in self._reassignments:
                reassign_counter.inc(trigger=event.trigger)
        if self._watchdog_interventions:
            metrics.counter(
                "repro_serve_watchdog_interventions_total",
                "watchdog actions on stalled reassignments",
            ).inc(self._watchdog_interventions)
        metrics.gauge(
            "repro_serve_read_only", "1 while the service is read-only"
        ).set(1.0 if self._read_only else 0.0)

        final = self._final_assignment()
        report = ServeReport(
            n_requests=self.config.n_requests,
            n_sites=self.n_sites,
            seed=self.config.seed,
            scenario=self.config.scenario,
            outcome_codes=self._codes,
            attempt_counts=self._attempts,
            outcomes=outcomes,
            db_attempts=dict(self._db_counts),
            audit_totals=dict(self.telemetry.audit.totals),
            latency=self._latency_summary(),
            retries_scheduled=self._retries_scheduled,
            retries_exhausted=self._retries_exhausted,
            shed=self._shed,
            breaker_trips=self.breakers.trips,
            breaker_rejections=self.breakers.rejections,
            reassignments=list(self._reassignments),
            watchdog_ticks=self._watchdog_ticks,
            watchdog_interventions=self._watchdog_interventions,
            read_only_entries=self._read_only_entries,
            read_only_time=self._read_only_time,
            final_read_quorum=final.read_quorum,
            final_version=self.qr.max_version(),
            estimator_weight=self.density.total_weight,
            violations=[str(v) for v in self.monitor.violations],
            aborted=self._aborted,
            wall_seconds=wall_seconds,
            sim_duration=self.now,
            n_clients=self.config.n_clients,
        )
        return report


def run_serve(config: ServeConfig, telemetry=None) -> ServeReport:
    """Run one serving campaign to completion (the sync entry point)."""
    service = AdaptiveQuorumService(config, telemetry)
    return asyncio.run(service.run_async())
