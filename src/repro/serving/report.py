"""The serving run report: outcomes, SLOs, reconciliation, determinism digest.

A :class:`ServeReport` is plain data assembled by the service after the
drain completes. It answers the four questions the acceptance criteria
ask: did any invariant break (``violations`` / ``aborted``), did the
adaptive loop act (``reassignments``), do the serving-side attempt
counts reconcile *exactly* with the telemetry audit log
(``reconciled``), and is the whole run bitwise reproducible
(``digest`` — a SHA-256 over every per-request outcome, attempt count,
and reassignment event).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["OUTCOME_NAMES", "ReassignmentEvent", "ServeReport", "outcome_code"]

#: Per-request terminal outcomes, stored as int8 codes in id order.
OUTCOME_NAMES: Tuple[str, ...] = (
    "unserved",          # 0 — run aborted before this request was processed
    "granted",           # 1
    "stale_read",        # 2 — read denied, stale fallback served
    "timeout",           # 3 — per-request deadline exceeded
    "site_down",         # 4 — retries exhausted, last denial: site down
    "no_quorum",         # 5 — retries exhausted, last denial: no quorum
    "stale_assignment",  # 6 — retries exhausted, last denial: stale version
    "read_only",         # 7 — write fast-rejected in read-only mode
    "overload",          # 8 — shed at admission (queue full)
    "circuit_open",      # 9 — fast-failed by the site's open breaker
)

_CODE_BY_NAME = {name: code for code, name in enumerate(OUTCOME_NAMES)}


def outcome_code(name: str) -> int:
    return _CODE_BY_NAME[name]


@dataclass(frozen=True)
class ReassignmentEvent:
    """One successful (or watchdog-forced) control-loop action."""

    time: float
    site: int
    old_read_quorum: int
    new_read_quorum: int
    version: int
    trigger: str  # "control" | "watchdog"


@dataclass
class ServeReport:
    """Everything a finished (or aborted) serving run produced."""

    n_requests: int
    n_sites: int
    seed: int
    scenario: str

    #: Per-request terminal outcome codes, id order (int8).
    outcome_codes: np.ndarray
    #: Per-request database attempt counts, id order (int16).
    attempt_counts: np.ndarray
    #: Final outcome tallies by name.
    outcomes: Dict[str, int]
    #: Serving-side database attempt counts per (op, audit reason).
    db_attempts: Dict[Tuple[str, str], int]
    #: Exact audit totals per (op, reason) from the telemetry recorder.
    audit_totals: Dict[Tuple[str, str], float]

    #: Latency summary over granted requests (simulated seconds).
    latency: Dict[str, float]
    retries_scheduled: int
    retries_exhausted: int
    shed: int
    breaker_trips: int
    breaker_rejections: int

    reassignments: List[ReassignmentEvent]
    watchdog_ticks: int
    watchdog_interventions: int
    read_only_entries: int
    read_only_time: float
    final_read_quorum: int
    final_version: int
    estimator_weight: float

    violations: List[str]
    aborted: bool

    wall_seconds: float
    sim_duration: float
    n_clients: int

    #: SLO gates evaluated by exit_code (None = not enforced).
    min_availability: Optional[float] = None
    max_p99: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived accounting
    # ------------------------------------------------------------------
    @property
    def served(self) -> int:
        """Requests that reached a terminal outcome."""
        return self.n_requests - self.outcomes.get("unserved", 0)

    @property
    def availability(self) -> float:
        """Request-level ACC: granted / served."""
        served = self.served
        return self.outcomes.get("granted", 0) / served if served else 0.0

    @property
    def attempt_availability(self) -> float:
        """Attempt-level ACC (the figure the audit log reconciles against)."""
        total = sum(self.db_attempts.values())
        granted = sum(
            v for (op, reason), v in self.db_attempts.items() if reason == "granted"
        )
        return granted / total if total else 0.0

    @property
    def throughput(self) -> float:
        """Requests served per wall-clock second."""
        return self.served / self.wall_seconds if self.wall_seconds > 0 else 0.0

    # ------------------------------------------------------------------
    # Reconciliation (serving-side counts vs the audit log, exact)
    # ------------------------------------------------------------------
    @property
    def reconciled(self) -> bool:
        return not self.reconciliation_failures()

    def reconciliation_failures(self) -> List[str]:
        """Every (op, reason) cell where serving and audit disagree."""
        failures: List[str] = []
        for key in sorted(set(self.db_attempts) | set(self.audit_totals)):
            ours = self.db_attempts.get(key, 0)
            theirs = self.audit_totals.get(key, 0.0)
            if float(ours) != float(theirs):
                failures.append(
                    f"{key[0]}/{key[1]}: serving counted {ours}, "
                    f"audit recorded {theirs:g}"
                )
        return failures

    # ------------------------------------------------------------------
    # Determinism digest
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """SHA-256 over every outcome-affecting result of the run."""
        h = hashlib.sha256()
        h.update(np.ascontiguousarray(self.outcome_codes).tobytes())
        h.update(np.ascontiguousarray(self.attempt_counts).tobytes())
        for event in self.reassignments:
            h.update(
                f"{event.time:.12g}|{event.site}|{event.old_read_quorum}|"
                f"{event.new_read_quorum}|{event.version}|{event.trigger};".encode()
            )
        h.update(f"{self.final_read_quorum}|{self.final_version}".encode())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # Verdict
    # ------------------------------------------------------------------
    @property
    def passed(self) -> bool:
        if self.aborted or self.violations:
            return False
        if not self.reconciled:
            return False
        if self.min_availability is not None and (
            self.availability < self.min_availability
        ):
            return False
        if self.max_p99 is not None:
            p99 = self.latency.get("p99", math.nan)
            if not math.isnan(p99) and p99 > self.max_p99:
                return False
        return True

    @property
    def exit_code(self) -> int:
        """The serve exit contract: 0 clean, 1 SLO/invariant failure."""
        return 0 if self.passed else 1

    # ------------------------------------------------------------------
    def summary(self) -> str:
        lines = [
            "adaptive serving report",
            "=======================",
            f"requests       : {self.n_requests} over {self.n_sites} sites "
            f"(seed {self.seed}, scenario {self.scenario})",
            f"clients        : {self.n_clients}",
            f"served         : {self.served}"
            + (f"  (ABORTED, {self.n_requests - self.served} unserved)"
               if self.aborted else ""),
            f"sim duration   : {self.sim_duration:.1f} s simulated, "
            f"{self.wall_seconds:.2f} s wall "
            f"({self.throughput:,.0f} req/s)",
            "",
            "outcomes",
        ]
        for name in OUTCOME_NAMES:
            count = self.outcomes.get(name, 0)
            if count:
                share = count / self.n_requests
                lines.append(f"  {name:<18} {count:>10}  ({share:6.2%})")
        lines.append("")
        lines.append(f"availability   : {self.availability:.4f} request-level, "
                     f"{self.attempt_availability:.4f} attempt-level (ACC)")
        p50 = self.latency.get("p50", math.nan)
        p99 = self.latency.get("p99", math.nan)
        lines.append(
            f"latency (sim)  : p50={p50:.3g}  p99={p99:.3g}  "
            f"max={self.latency.get('max', math.nan):.3g}"
        )
        lines.append(
            f"retries        : {self.retries_scheduled} scheduled, "
            f"{self.retries_exhausted} exhausted, {self.shed} shed, "
            f"{self.breaker_rejections} breaker-rejected "
            f"({self.breaker_trips} trips)"
        )
        lines.append(
            f"degradation    : read-only entered {self.read_only_entries}x "
            f"for {self.read_only_time:.1f} s simulated"
        )
        lines.append("")
        lines.append(
            f"reassignments  : {len(self.reassignments)} installed; final "
            f"q_r={self.final_read_quorum} (version {self.final_version})"
        )
        for event in self.reassignments:
            lines.append(
                f"  [t={event.time:8.1f}] q_r {event.old_read_quorum} -> "
                f"{event.new_read_quorum} at site {event.site} "
                f"(v{event.version}, {event.trigger})"
            )
        lines.append(
            f"watchdog       : {self.watchdog_ticks} ticks, "
            f"{self.watchdog_interventions} interventions"
        )
        recon = self.reconciliation_failures()
        lines.append(
            "reconciliation : exact (serving counts == audit totals)"
            if not recon else
            f"reconciliation : FAILED in {len(recon)} cells"
        )
        for failure in recon[:5]:
            lines.append(f"  {failure}")
        lines.append(
            f"invariants     : {len(self.violations)} violations"
            + ("" if not self.violations else " (FAIL)")
        )
        for violation in self.violations[:5]:
            lines.append(f"  {violation}")
        lines.append(f"digest         : {self.digest()[:16]}")
        lines.append(f"verdict        : {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)
