"""Deterministic client request streams for the serving layer.

The adaptive serving loop must produce *bitwise identical* results for
any client-concurrency setting at a fixed seed (ISSUE 6 acceptance).
That rules out generating requests inside client coroutines: asyncio
scheduling order would leak into the access stream. Instead the whole
stream is precomputed here as flat numpy arrays from seeded substreams
(:func:`repro.rng.stream_for`), giving every request a global id; the
async transport then only moves *chunks of ids* around, and the engine
reassembles them in id order before any outcome-affecting decision.

Sampling matches :class:`~repro.simulation.workload.AccessWorkload`
semantics: arrivals form a Poisson process at the workload's aggregate
rate (inter-arrival exponentials, cumulatively summed), each request is
a read with probability ``alpha``, and the submitting site is drawn from
``r_i`` or ``w_i`` depending on the kind.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.rng import stream_for
from repro.simulation.workload import AccessWorkload

__all__ = ["RequestStream", "RequestChunk"]

#: Substream indices under the run seed (kept distinct from every other
#: consumer of the same seed inside the service).
_STREAM_ARRIVALS = 101
_STREAM_KINDS = 102
_STREAM_SITES = 103


class RequestChunk:
    """A contiguous id range of the stream, as column views (no copies)."""

    __slots__ = ("start", "times", "sites", "is_read")

    def __init__(self, start: int, times: np.ndarray, sites: np.ndarray,
                 is_read: np.ndarray) -> None:
        self.start = start
        self.times = times
        self.sites = sites
        self.is_read = is_read

    def __len__(self) -> int:
        return len(self.times)

    def rows(self) -> Iterator[Tuple[int, float, int, bool]]:
        """Yield ``(request_id, time, site, is_read)`` in id order."""
        start = self.start
        for offset in range(len(self.times)):
            yield (
                start + offset,
                float(self.times[offset]),
                int(self.sites[offset]),
                bool(self.is_read[offset]),
            )


class RequestStream:
    """The full precomputed access stream for one serving run."""

    def __init__(self, workload: AccessWorkload, n_requests: int, seed: int,
                 chunk_size: int = 4096) -> None:
        if n_requests <= 0:
            raise SimulationError(
                f"need at least one request, got {n_requests}"
            )
        if chunk_size <= 0:
            raise SimulationError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        self.workload = workload
        self.n_requests = int(n_requests)
        self.chunk_size = int(chunk_size)
        self.seed = int(seed)

        n = self.n_requests
        gaps = stream_for(seed, _STREAM_ARRIVALS).exponential(
            1.0 / workload.aggregate_rate, size=n
        )
        self.times = np.cumsum(gaps)
        self.is_read = stream_for(seed, _STREAM_KINDS).random(n) < workload.alpha
        site_rng = stream_for(seed, _STREAM_SITES)
        read_sites = site_rng.choice(
            workload.n_sites, size=n, p=workload.read_weights
        )
        write_sites = site_rng.choice(
            workload.n_sites, size=n, p=workload.write_weights
        )
        self.sites = np.where(self.is_read, read_sites, write_sites).astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def horizon(self) -> float:
        """Arrival time of the last request."""
        return float(self.times[-1])

    @property
    def n_chunks(self) -> int:
        return -(-self.n_requests // self.chunk_size)

    def chunk(self, index: int) -> RequestChunk:
        """Chunk ``index`` of the stream (contiguous ids, view-backed)."""
        if not 0 <= index < self.n_chunks:
            raise SimulationError(
                f"chunk index {index} outside 0..{self.n_chunks - 1}"
            )
        lo = index * self.chunk_size
        hi = min(lo + self.chunk_size, self.n_requests)
        return RequestChunk(
            lo, self.times[lo:hi], self.sites[lo:hi], self.is_read[lo:hi]
        )

    def submission_counts(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-site (reads, writes) submission totals over the whole stream."""
        n_sites = self.workload.n_sites
        reads = np.bincount(self.sites[self.is_read], minlength=n_sites)
        writes = np.bincount(self.sites[~self.is_read], minlength=n_sites)
        return reads.astype(np.int64), writes.astype(np.int64)
