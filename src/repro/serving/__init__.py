"""Adaptive quorum serving: a chaos-surviving asyncio service layer.

``repro serve`` drives simulated client read/write streams against a
:class:`~repro.replication.database.ReplicatedDatabase`, estimates the
access densities ``f_i(v)`` online, and installs better quorum
assignments through the QR protocol while scripted faults tear the
network apart — staying correct (invariant-monitored end to end) and
live (retries, breakers, load shedding, graceful degradation).
"""

from repro.serving.breakers import (
    BreakerBoard,
    BreakerState,
    CircuitBreaker,
    CircuitBreakerConfig,
)
from repro.serving.config import ServeConfig
from repro.serving.report import (
    OUTCOME_NAMES,
    ReassignmentEvent,
    ServeReport,
    outcome_code,
)
from repro.serving.requests import RequestChunk, RequestStream
from repro.serving.scenarios import SERVE_SCENARIOS, serving_schedule
from repro.serving.service import AdaptiveQuorumService, run_serve

__all__ = [
    "AdaptiveQuorumService",
    "BreakerBoard",
    "BreakerState",
    "CircuitBreaker",
    "CircuitBreakerConfig",
    "OUTCOME_NAMES",
    "ReassignmentEvent",
    "RequestChunk",
    "RequestStream",
    "SERVE_SCENARIOS",
    "ServeConfig",
    "ServeReport",
    "outcome_code",
    "run_serve",
    "serving_schedule",
]
