"""Configuration for the adaptive quorum serving layer.

One :class:`ServeConfig` fully determines a serving run: the topology,
the client workload, the initial quorum assignment, the robustness knobs
(retry policy, queue capacity, breakers, degradation switches), the
adaptive control-loop cadence, and the fault schedule. Identical configs
with identical seeds produce bitwise identical
:class:`~repro.serving.report.ServeReport` digests regardless of client
concurrency — the knobs below shape *outcomes*, while ``n_clients`` and
``transport_slots`` shape only wall-clock pacing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ReproError
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule
from repro.quorum.assignment import QuorumAssignment
from repro.serving.breakers import CircuitBreakerConfig
from repro.simulation.workload import AccessWorkload
from repro.topology.model import Topology

__all__ = ["ServeConfig"]


def _default_retry_policy() -> RetryPolicy:
    # Jittered exponential backoff with a hard per-request deadline: the
    # deadline doubles as the per-request timeout (a retry that cannot
    # start before it is not scheduled, and the request times out).
    return RetryPolicy(max_attempts=4, base_delay=0.5, multiplier=2.0,
                       max_delay=8.0, deadline=30.0, jitter=0.1)


@dataclass
class ServeConfig:
    """Everything one ``repro serve`` run needs."""

    topology: Topology
    workload: AccessWorkload
    initial_assignment: QuorumAssignment

    # Stream shape -----------------------------------------------------
    n_requests: int = 1_000_000
    n_clients: int = 1_000
    chunk_size: int = 4_096
    seed: int = 0
    #: Label for reports/golden entries (e.g. a SERVE_SCENARIOS name).
    scenario: str = "custom"

    # Robustness -------------------------------------------------------
    retry_policy: RetryPolicy = field(default_factory=_default_retry_policy)
    #: Max requests simultaneously waiting on a backoff; beyond it new
    #: arrivals are shed with cause ``overload`` (explicit backpressure).
    queue_capacity: int = 512
    #: Bounded asyncio transport queue between client feeders and the
    #: engine (wall-clock backpressure only; never affects outcomes).
    transport_slots: int = 64
    breaker: CircuitBreakerConfig = field(default_factory=CircuitBreakerConfig)
    #: Fast-reject writes while no component can form a write quorum.
    read_only_fast_reject: bool = True
    #: Serve the newest component-local copy when a read exhausts its
    #: retries (graceful degradation; counted separately from grants).
    stale_reads: bool = True
    #: Abort the run (exit 1) on the first invariant violation.
    abort_on_violation: bool = True
    check_serializability: bool = True

    # Adaptive control loop --------------------------------------------
    #: Simulated seconds between estimation/optimization ticks.
    control_interval: float = 25.0
    #: Observed simulated time before the density estimate is trusted.
    min_observation_time: float = 50.0
    #: Required estimated availability gain before a reassignment.
    improvement_threshold: float = 0.005
    optimizer_method: str = "exhaustive"
    #: Registered density-model engine the control loop builds its
    #: availability model through (see ``repro engines``).
    density_engine: str = "online-density"
    forgetting_factor: float = 1.0
    #: Watchdog cadence; a pending reassignment older than
    #: ``stall_threshold`` forces re-estimation (estimator reset).
    watchdog_interval: float = 60.0
    stall_threshold: float = 150.0

    # Chaos ------------------------------------------------------------
    fault_schedule: Optional[FaultSchedule] = None

    # Observability ----------------------------------------------------
    #: Record per-request phase timings and per-event spans. The service
    #: always runs a live private recorder for audit reconciliation, so
    #: profiling is opted into separately; it never changes outcomes,
    #: only what the trace/phase exports contain.
    profile_phases: bool = False

    def __post_init__(self) -> None:
        if self.n_requests <= 0:
            raise ReproError(f"n_requests must be positive, got {self.n_requests}")
        if self.n_clients <= 0:
            raise ReproError(f"n_clients must be positive, got {self.n_clients}")
        if self.chunk_size <= 0:
            raise ReproError(f"chunk_size must be positive, got {self.chunk_size}")
        if self.queue_capacity <= 0:
            raise ReproError(
                f"queue_capacity must be positive, got {self.queue_capacity}"
            )
        if self.transport_slots <= 0:
            raise ReproError(
                f"transport_slots must be positive, got {self.transport_slots}"
            )
        if self.control_interval <= 0:
            raise ReproError(
                f"control_interval must be positive, got {self.control_interval}"
            )
        if self.min_observation_time < 0:
            raise ReproError(
                "min_observation_time must be non-negative, got "
                f"{self.min_observation_time}"
            )
        if self.improvement_threshold < 0:
            raise ReproError(
                "improvement_threshold must be non-negative, got "
                f"{self.improvement_threshold}"
            )
        if self.watchdog_interval <= 0:
            raise ReproError(
                f"watchdog_interval must be positive, got {self.watchdog_interval}"
            )
        if self.stall_threshold <= 0:
            raise ReproError(
                f"stall_threshold must be positive, got {self.stall_threshold}"
            )
        if not 0.0 < self.forgetting_factor <= 1.0:
            raise ReproError(
                f"forgetting_factor must be in (0, 1], got {self.forgetting_factor}"
            )
        if self.initial_assignment.total_votes != self.topology.total_votes:
            raise ReproError(
                f"assignment is for T={self.initial_assignment.total_votes}, "
                f"topology has T={self.topology.total_votes}"
            )
        if self.workload.n_sites != self.topology.n_sites:
            raise ReproError(
                f"workload covers {self.workload.n_sites} sites, topology has "
                f"{self.topology.n_sites}"
            )

    @property
    def horizon(self) -> float:
        """Expected simulated duration of the stream (for scheduling faults)."""
        return self.n_requests / self.workload.aggregate_rate
