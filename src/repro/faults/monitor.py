"""Continuous safety-invariant monitoring for chaos runs.

:class:`InvariantMonitor` plugs into the simulation engine as a
``ChangeObserver`` (and into :class:`~repro.replication.database.
ReplicatedDatabase` as an access-path hook) and re-checks, after every
topology change, the invariants the paper's correctness argument rests
on:

- **quorum intersection** (section 2.1): every effective assignment
  satisfies ``q_r + q_w > T`` and ``q_w > T/2``;
- **behavioral intersection**: writes are never granted in two disjoint
  components, and a read is never granted in a component disjoint from a
  write-granted one (the observable symptom of a broken assignment);
- **QR installation/propagation rules** (section 2.2): per-site version
  numbers never regress, and no component is granted any access while
  holding a stale (non-maximal-version) assignment;
- **one-copy serializability**, reported by the database's read/write
  checker through :meth:`record_serializability`.

Violations are *recorded*, not raised — a chaos campaign wants the full
list of everything that went wrong plus a replayable seed, not a
traceback from the first hiccup. Tests that want hard failures pass
``raise_on_violation=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.connectivity.dynamic import ComponentTracker
from repro.errors import InvariantViolation
from repro.telemetry.recorder import resolve as _resolve_telemetry

__all__ = ["ViolationRecord", "InvariantMonitor"]


@dataclass
class ViolationRecord:
    """One observed invariant violation, with replay context."""

    time: float
    rule: str
    detail: str
    batch_index: Optional[int] = None
    seed: Optional[int] = None
    snapshot: Dict[str, Any] = field(default_factory=dict)

    def to_error(self) -> InvariantViolation:
        """The record as a raisable, context-carrying exception."""
        return InvariantViolation(
            self.detail,
            rule=self.rule,
            sim_time=self.time,
            seed=self.seed,
            snapshot=self.snapshot,
        )

    def __str__(self) -> str:
        where = f"batch {self.batch_index}, " if self.batch_index is not None else ""
        return f"[{where}t={self.time:.4g}] {self.rule}: {self.detail}"


def _snapshot(tracker: Optional[ComponentTracker], protocol: Any) -> Dict[str, Any]:
    """A JSON-compatible picture of the network + protocol state."""
    snap: Dict[str, Any] = {}
    if tracker is not None:
        snap["site_up"] = tracker.state.site_up.astype(int).tolist()
        snap["link_up"] = tracker.state.link_up.astype(int).tolist()
        snap["labels"] = tracker.labels.tolist()
        snap["vote_totals"] = tracker.vote_totals.tolist()
    versions = getattr(protocol, "site_version", None)
    if versions is not None:
        snap["site_version"] = np.asarray(versions).tolist()
    return snap


class InvariantMonitor:
    """Records safety violations observed during a (chaos) run.

    Use as the engine's ``change_observer`` directly (instances are
    callable with the observer signature). ``max_records`` bounds memory
    on pathological runs; overflow is counted, not stored.
    """

    def __init__(
        self,
        raise_on_violation: bool = False,
        record_snapshots: bool = True,
        max_records: int = 1_000,
        telemetry=None,
    ) -> None:
        self.raise_on_violation = raise_on_violation
        self.record_snapshots = record_snapshots
        self.max_records = int(max_records)
        #: Violations double as metrics: every record increments
        #: ``repro_invariant_violations_total{rule=...}`` on this recorder
        #: (the null recorder unless one is active or passed explicitly).
        self.telemetry = _resolve_telemetry(telemetry)
        self.violations: List[ViolationRecord] = []
        self.overflowed = 0
        self.checks_run = 0
        self._batch_index: Optional[int] = None
        self._seed: Optional[int] = None
        self._last_versions: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def start_batch(self, batch_index: int, seed: Optional[int] = None) -> None:
        """Tag subsequent violations with a batch index and seed.

        Also resets cross-event state (version history) that must not
        leak between batches — protocols reset between batches, so a
        version drop across the boundary is expected, not a violation.
        """
        self._batch_index = batch_index
        self._seed = seed
        self._last_versions = None

    @property
    def ok(self) -> bool:
        return not self.violations and not self.overflowed

    def record(
        self,
        time: float,
        rule: str,
        detail: str,
        tracker: Optional[ComponentTracker] = None,
        protocol: Any = None,
    ) -> None:
        """Record one violation (or raise it, under raise_on_violation)."""
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "repro_invariant_violations_total",
                "safety-invariant violations observed by the chaos monitor",
            ).inc(rule=rule)
        snapshot = (
            _snapshot(tracker, protocol) if self.record_snapshots else {}
        )
        violation = ViolationRecord(
            time=time,
            rule=rule,
            detail=detail,
            batch_index=self._batch_index,
            seed=self._seed,
            snapshot=snapshot,
        )
        if self.raise_on_violation:
            raise violation.to_error()
        if len(self.violations) < self.max_records:
            self.violations.append(violation)
        else:
            self.overflowed += 1

    def record_serializability(self, time: float, detail: str) -> None:
        """Access-path hook: the database saw a one-copy-1SR mismatch."""
        self.record(time, "one-copy-serializability", detail)

    # ------------------------------------------------------------------
    # ChangeObserver interface
    # ------------------------------------------------------------------
    def observe(self, now: float, tracker: ComponentTracker, protocol: Any) -> None:
        """Run every applicable invariant check against the current state."""
        self.checks_run += 1
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "repro_invariant_checks_total",
                "invariant check sweeps run by the chaos monitor",
            ).inc()
        self._check_assignments(now, tracker, protocol)
        self._check_grant_disjointness(now, tracker, protocol)
        self._check_metamorphic_grants(now, tracker, protocol)
        self._check_versions(now, tracker, protocol)

    __call__ = observe

    # ------------------------------------------------------------------
    def _effective_assignments(self, tracker: ComponentTracker, protocol: Any):
        """Per-component (members, assignment) pairs, where discoverable.

        Dynamic protocols expose ``_component_views``; static quorum
        protocols expose a single ``assignment``. Protocols exposing
        neither (majority, ROWA, primary-copy) are structurally safe by
        construction and are only covered by the behavioral checks.
        """
        views = getattr(protocol, "_component_views", None)
        if views is not None:
            return [(members, assignment) for members, assignment, _ in views(tracker)]
        assignment = getattr(protocol, "assignment", None)
        if assignment is not None:
            labels = tracker.labels
            out = []
            if labels.size and (labels >= 0).any():
                for label in range(int(labels.max()) + 1):
                    members = np.nonzero(labels == label)[0]
                    out.append((members, assignment))
            return out
        return []

    def _check_assignments(self, now, tracker, protocol) -> None:
        for members, assignment in self._effective_assignments(tracker, protocol):
            T = getattr(assignment, "total_votes", None)
            q_r = getattr(assignment, "read_quorum", None)
            q_w = getattr(assignment, "write_quorum", None)
            if T is None or q_r is None or q_w is None:
                continue
            where = f"component {np.asarray(members).tolist()}"
            if q_r + q_w <= T:
                self.record(
                    now,
                    "quorum-intersection",
                    f"effective assignment (q_r={q_r}, q_w={q_w}, T={T}) in "
                    f"{where} allows a read quorum disjoint from a write quorum",
                    tracker, protocol,
                )
            if 2 * q_w <= T:
                self.record(
                    now,
                    "write-write-intersection",
                    f"effective assignment (q_r={q_r}, q_w={q_w}, T={T}) in "
                    f"{where} allows two disjoint write quorums",
                    tracker, protocol,
                )

    def _check_grant_disjointness(self, now, tracker, protocol) -> None:
        try:
            read_mask, write_mask = protocol.grant_masks(tracker)
        except Exception as exc:  # a dying protocol is itself a finding
            self.record(
                now, "grant-evaluation",
                f"protocol failed to evaluate grant masks: {exc}",
                tracker, protocol,
            )
            return
        labels = tracker.labels
        write_components = set(np.unique(labels[np.asarray(write_mask, dtype=bool)]).tolist())
        read_components = set(np.unique(labels[np.asarray(read_mask, dtype=bool)]).tolist())
        write_components.discard(-1)
        read_components.discard(-1)
        if len(write_components) > 1:
            self.record(
                now,
                "concurrent-writes",
                f"writes granted in {len(write_components)} disjoint components "
                f"{sorted(write_components)} — two partitions could commit "
                "conflicting writes",
                tracker, protocol,
            )
        if write_components and read_components - write_components:
            stale = sorted(read_components - write_components)
            self.record(
                now,
                "stale-read",
                f"reads granted in components {stale} disjoint from the "
                f"write-granted components {sorted(write_components)} — a read "
                "there could miss the newest committed write",
                tracker, protocol,
            )
        self._check_stale_assignment_grants(
            now, tracker, protocol, read_components | write_components
        )

    def _check_stale_assignment_grants(self, now, tracker, protocol,
                                       granted_components) -> None:
        versions = getattr(protocol, "site_version", None)
        if versions is None or not granted_components:
            return
        versions = np.asarray(versions)
        newest = int(versions.max())
        labels = tracker.labels
        for label in sorted(granted_components):
            members = np.nonzero(labels == label)[0]
            held = int(versions[members].max()) if members.size else 0
            if held < newest:
                self.record(
                    now,
                    "stale-assignment-grant",
                    f"component {members.tolist()} granted access under "
                    f"assignment version {held} while version {newest} is "
                    "installed elsewhere — violates the QR propagation rule",
                    tracker, protocol,
                )

    def _component_grant_views(self, tracker, protocol):
        """Per-component (members, assignment, votes) for grant replay."""
        views = getattr(protocol, "component_views", None)
        if views is not None:
            return list(views(tracker))
        assignment = getattr(protocol, "assignment", None)
        if assignment is None:
            return []
        labels = tracker.labels
        totals = tracker.vote_totals
        out = []
        if labels.size and (labels >= 0).any():
            for label in range(int(labels.max()) + 1):
                members = np.nonzero(labels == label)[0]
                out.append((members, assignment, int(totals[members[0]])))
        return out

    def _check_metamorphic_grants(self, now, tracker, protocol) -> None:
        """Metamorphic replay of declarative grant decisions.

        For protocols that declare their grants to be a pure function of
        (effective assignment, component vote total) — ``declarative_grants``
        — two identities must hold in every network state:

        - **grant-mask-consistency**: the mask the protocol emitted equals
          the one recomputed from the declared assignment, uniformly
          across each component's members;
        - **grant-monotonicity**: among components under the *same*
          assignment, granting a poorer component but not a richer one is
          impossible (grants are threshold functions of votes).
        """
        if not getattr(protocol, "declarative_grants", False):
            return
        try:
            read_mask, write_mask = protocol.grant_masks(tracker)
        except Exception:
            return  # already recorded as grant-evaluation
        read_mask = np.asarray(read_mask, dtype=bool)
        write_mask = np.asarray(write_mask, dtype=bool)
        observed = []  # (assignment, votes, got_read, got_write, members)
        for members, assignment, votes in self._component_grant_views(tracker, protocol):
            for op, mask, allowed in (
                ("read", read_mask, assignment.allows_read(votes)),
                ("write", write_mask, assignment.allows_write(votes)),
            ):
                granted = mask[members]
                if granted.any() != granted.all():
                    self.record(
                        now,
                        "grant-mask-consistency",
                        f"{op} grants split within component "
                        f"{np.asarray(members).tolist()} — members of one "
                        "component must share one decision",
                        tracker, protocol,
                    )
                elif bool(granted.all()) != bool(allowed):
                    self.record(
                        now,
                        "grant-mask-consistency",
                        f"{op} mask says {bool(granted.all())} for component "
                        f"{np.asarray(members).tolist()} but its assignment "
                        f"{assignment} with {votes} votes says {bool(allowed)}",
                        tracker, protocol,
                    )
            observed.append(
                (assignment, votes,
                 bool(read_mask[members].all()), bool(write_mask[members].all()),
                 members)
            )
        for i, (asg_a, votes_a, read_a, write_a, members_a) in enumerate(observed):
            for asg_b, votes_b, read_b, write_b, members_b in observed[i + 1:]:
                if asg_a is not asg_b and asg_a != asg_b:
                    continue
                # Order so a has no more votes than b.
                if votes_a > votes_b:
                    (votes_a2, read_a2, write_a2, members_a2) = (
                        votes_b, read_b, write_b, members_b)
                    (votes_b2, read_b2, write_b2, members_b2) = (
                        votes_a, read_a, write_a, members_a)
                else:
                    (votes_a2, read_a2, write_a2, members_a2) = (
                        votes_a, read_a, write_a, members_a)
                    (votes_b2, read_b2, write_b2, members_b2) = (
                        votes_b, read_b, write_b, members_b)
                for op, lo, hi in (("read", read_a2, read_b2),
                                   ("write", write_a2, write_b2)):
                    if lo and not hi:
                        self.record(
                            now,
                            "grant-monotonicity",
                            f"{op} granted to component "
                            f"{np.asarray(members_a2).tolist()} with {votes_a2} "
                            f"votes but denied to "
                            f"{np.asarray(members_b2).tolist()} with {votes_b2} "
                            "votes under the same assignment",
                            tracker, protocol,
                        )

    def _check_versions(self, now, tracker, protocol) -> None:
        versions = getattr(protocol, "site_version", None)
        if versions is None:
            return
        versions = np.asarray(versions).copy()
        if self._last_versions is not None and versions.shape == self._last_versions.shape:
            dropped = np.nonzero(versions < self._last_versions)[0]
            if dropped.size:
                self.record(
                    now,
                    "version-regression",
                    f"assignment version regressed at sites {dropped.tolist()} "
                    f"(from {self._last_versions[dropped].tolist()} to "
                    f"{versions[dropped].tolist()})",
                    tracker, protocol,
                )
        self._last_versions = versions

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable digest of everything observed."""
        lines = [
            f"invariant checks run : {self.checks_run}",
            f"violations recorded  : {len(self.violations)}"
            + (f" (+{self.overflowed} beyond the record cap)" if self.overflowed else ""),
        ]
        by_rule: Dict[str, int] = {}
        for violation in self.violations:
            by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
        for rule in sorted(by_rule):
            lines.append(f"  {rule:<28s} {by_rule[rule]}")
        for violation in self.violations[:5]:
            lines.append(f"  e.g. {violation}")
        return "\n".join(lines)
