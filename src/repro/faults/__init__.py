"""Chaos fault-injection subsystem.

The stochastic failure model in :mod:`repro.simulation.processes` answers
"how available is this protocol on average?"; this package answers "does
the protocol stay *safe* when failures are adversarial?". It has three
parts, mirroring a production chaos-engineering stack:

- :mod:`repro.faults.schedule` — deterministic, seedable fault injectors
  (scripted partitions, correlated shared-risk groups, flapping sites,
  cascading failures) pluggable into the simulation engine alongside the
  exponential processes;
- :mod:`repro.faults.monitor` — an invariant monitor that continuously
  asserts quorum intersection, the QR installation/propagation rules, and
  one-copy serializability, *recording* violations with full event
  context instead of aborting the run;
- :mod:`repro.faults.retry` / :mod:`repro.faults.chaos` — resilient
  access paths (bounded, jittered retries in simulated time) and the
  chaos campaign runner that quarantines failed batches for replay.
"""

from repro.faults.chaos import (
    ChaosReport,
    replay_batch,
    run_chaos_campaign,
    unchecked_assignment,
)
from repro.faults.monitor import InvariantMonitor, ViolationRecord
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import (
    CascadingFailure,
    CorrelatedFailure,
    FaultInjector,
    FaultSchedule,
    FlappingSite,
    LinkCut,
    ScriptedPartition,
    SiteCrash,
)

__all__ = [
    "FaultInjector",
    "FaultSchedule",
    "SiteCrash",
    "LinkCut",
    "ScriptedPartition",
    "FlappingSite",
    "CascadingFailure",
    "CorrelatedFailure",
    "InvariantMonitor",
    "ViolationRecord",
    "RetryPolicy",
    "ChaosReport",
    "run_chaos_campaign",
    "replay_batch",
    "unchecked_assignment",
]
