"""Chaos campaigns: scripted faults + invariant monitoring + quarantine.

:func:`run_chaos_campaign` is the top of the chaos stack. It runs a
protocol through many batches of a fault-scheduled simulation with an
:class:`~repro.faults.monitor.InvariantMonitor` attached, quarantines any
batch that dies (keeping its seed and fault trace for deterministic
replay via :func:`replay_batch`), and renders everything into a
:class:`ChaosReport`. A clean protocol passes a long sweep with zero
violations and zero aborted batches; a broken one is caught with enough
context to reproduce the exact failing scenario.

:func:`unchecked_assignment` deliberately builds an *invalid* quorum
assignment (bypassing the section-2.1 validation) so tests and demos can
prove the monitor actually detects intersection violations rather than
relying on construction-time checks that a real bug could sidestep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import BatchExecutionError, FaultInjectionError
from repro.faults.monitor import InvariantMonitor, ViolationRecord
from repro.faults.schedule import FaultSchedule
from repro.protocols.base import ReplicaControlProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import BatchResult, SimulationEngine, ChangeObserver
from repro.simulation.runner import QuarantinedBatch
from repro.telemetry.recorder import resolve as _resolve_telemetry
from repro.telemetry.snapshot import TelemetrySnapshot

__all__ = [
    "ChaosReport",
    "run_chaos_campaign",
    "replay_batch",
    "unchecked_assignment",
]


def unchecked_assignment(total_votes: int, read_quorum: int,
                         write_quorum: int) -> QuorumAssignment:
    """Build a quorum assignment WITHOUT the section-2.1 validation.

    Chaos-testing only: this is how a campaign injects a deliberately
    broken assignment (e.g. ``q_r + q_w <= T``) to prove the invariant
    monitor catches it. Refuses to build an assignment that would pass
    validation anyway — use the real constructor for those.
    """
    try:
        QuorumAssignment(total_votes, read_quorum, write_quorum)
    except Exception:
        assignment = object.__new__(QuorumAssignment)
        object.__setattr__(assignment, "total_votes", int(total_votes))
        object.__setattr__(assignment, "read_quorum", int(read_quorum))
        object.__setattr__(assignment, "write_quorum", int(write_quorum))
        return assignment
    raise FaultInjectionError(
        f"(q_r={read_quorum}, q_w={write_quorum}, T={total_votes}) is a valid "
        "assignment; unchecked_assignment is only for deliberately broken ones"
    )


@dataclass
class ChaosReport:
    """Everything a chaos campaign observed."""

    protocol_name: str
    schedule_description: str
    n_batches_requested: int
    batches: List[BatchResult] = field(default_factory=list)
    quarantined: List[QuarantinedBatch] = field(default_factory=list)
    monitor: Optional[InvariantMonitor] = None
    #: Telemetry snapshot of the campaign (None unless a recorder ran).
    telemetry: Optional[TelemetrySnapshot] = None

    @property
    def violations(self) -> List[ViolationRecord]:
        return [] if self.monitor is None else self.monitor.violations

    @property
    def n_completed(self) -> int:
        return len(self.batches)

    @property
    def passed(self) -> bool:
        """True iff every batch completed and no invariant was violated."""
        return (
            not self.quarantined
            and self.monitor is not None
            and self.monitor.ok
            and self.n_completed == self.n_batches_requested
        )

    def availability(self) -> float:
        """Pooled ACC over the completed batches (0 when none completed)."""
        submitted = sum(b.accesses_submitted for b in self.batches)
        granted = sum(b.accesses_granted for b in self.batches)
        return granted / submitted if submitted > 0 else 0.0

    def summary(self) -> str:
        lines = [
            f"chaos campaign : {self.protocol_name}",
            f"fault schedule : {self.schedule_description}",
            f"batches        : {self.n_completed}/{self.n_batches_requested} completed, "
            f"{len(self.quarantined)} quarantined",
            f"availability   : {self.availability():.4f} (over completed batches)",
        ]
        if self.monitor is not None:
            lines.append(self.monitor.summary())
        for quarantine in self.quarantined:
            lines.append(f"quarantined    : {quarantine.describe()}")
        lines.append(f"verdict        : {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def _compose_observers(monitor: InvariantMonitor,
                       extra: Optional[ChangeObserver]) -> ChangeObserver:
    if extra is None:
        return monitor.observe

    def observer(now, tracker, protocol) -> None:
        monitor.observe(now, tracker, protocol)
        extra(now, tracker, protocol)

    return observer


def run_chaos_campaign(
    config: SimulationConfig,
    protocol: ReplicaControlProtocol,
    n_batches: Optional[int] = None,
    monitor: Optional[InvariantMonitor] = None,
    fail_fast: bool = False,
    change_observer: Optional[ChangeObserver] = None,
    telemetry=None,
    n_workers: int = 1,
) -> ChaosReport:
    """Run ``n_batches`` chaos batches with invariant monitoring.

    The fault schedule comes from ``config.fault_schedule`` (a campaign
    without one is just the stochastic model under the monitor — still a
    useful smoke test). Defaults to keep-going semantics: a batch that
    dies is quarantined with its seed and fault trace, and the campaign
    continues; ``fail_fast=True`` restores abort-on-first-error.

    ``telemetry`` (a :class:`~repro.telemetry.recorder.Telemetry`) is
    threaded through the engine and the monitor; when active, the report
    carries a :class:`~repro.telemetry.snapshot.TelemetrySnapshot`.

    ``n_workers > 1`` fans batches out over a process pool (DESIGN.md
    §8): each batch runs with a fresh in-worker monitor configured like
    the campaign's, and violations/checks/telemetry merge back in batch
    index order, so the report is deterministic regardless of pool
    scheduling. ``change_observer`` callbacks require ``n_workers=1``.
    """
    if n_batches is None:
        n_batches = config.n_batches
    if n_batches <= 0:
        raise FaultInjectionError(f"n_batches must be positive, got {n_batches}")
    if n_workers <= 0:
        raise FaultInjectionError(f"n_workers must be positive, got {n_workers}")
    telemetry = _resolve_telemetry(telemetry)
    if monitor is None:
        monitor = InvariantMonitor(telemetry=telemetry)
    if n_workers > 1:
        if change_observer is not None:
            raise FaultInjectionError(
                "change_observer callbacks cannot cross the process boundary; "
                "use n_workers=1"
            )
        return _run_chaos_parallel(
            config, protocol, n_batches, monitor, fail_fast, telemetry, n_workers,
        )
    engine = SimulationEngine(
        config,
        protocol,
        change_observer=_compose_observers(monitor, change_observer),
        telemetry=telemetry,
    )
    report = ChaosReport(
        protocol_name=protocol.name,
        schedule_description=_schedule_description(config),
        n_batches_requested=n_batches,
        monitor=monitor,
    )
    from repro.tracing.context import BatchTracer

    with BatchTracer(telemetry, config.seed, protocol=protocol.name,
                     topology=config.topology.name) as tracer:
        for index in range(n_batches):
            monitor.start_batch(index, seed=config.seed)
            try:
                with tracer.batch(index):
                    report.batches.append(engine.run_batch(index))
            except BatchExecutionError as exc:
                if fail_fast:
                    raise
                report.quarantined.append(QuarantinedBatch.from_error(exc))
                if telemetry.enabled:
                    telemetry.metrics.counter(
                        "repro_chaos_quarantined_total",
                        "chaos batches quarantined after an execution error",
                    ).inc(protocol=protocol.name)
    if telemetry.enabled:
        report.telemetry = telemetry.snapshot(
            meta={
                "mode": "chaos",
                "protocol": protocol.name,
                "topology": config.topology.name,
                "n_batches": n_batches,
                "seed": config.seed,
                "schedule": report.schedule_description,
            }
        )
    return report


def _schedule_description(config: SimulationConfig) -> str:
    schedule = config.fault_schedule
    if isinstance(schedule, FaultSchedule):
        return schedule.describe()
    return "none" if schedule is None else type(schedule).__name__


def _run_chaos_parallel(
    config: SimulationConfig,
    protocol: ReplicaControlProtocol,
    n_batches: int,
    monitor: InvariantMonitor,
    fail_fast: bool,
    telemetry,
    n_workers: int,
) -> ChaosReport:
    """Process-pool twin of the serial campaign loop."""
    from repro.simulation.parallel import (
        merge_monitor_outcomes,
        run_batches_parallel,
    )
    from repro.telemetry.snapshot import TelemetrySnapshot as _Snapshot
    from repro.tracing.context import BatchTracer

    with BatchTracer(telemetry, config.seed, protocol=protocol.name,
                     topology=config.topology.name) as tracer:
        outcomes = run_batches_parallel(
            config,
            protocol,
            list(range(n_batches)),
            n_workers,
            record_telemetry=telemetry.enabled,
            monitor_kwargs={
                "raise_on_violation": monitor.raise_on_violation,
                "record_snapshots": monitor.record_snapshots,
                "max_records": monitor.max_records,
            },
            trace_parent=tracer.root_id,
        )
    report = ChaosReport(
        protocol_name=protocol.name,
        schedule_description=_schedule_description(config),
        n_batches_requested=n_batches,
        monitor=monitor,
    )
    merge_monitor_outcomes(monitor, outcomes)
    snapshots = []
    for outcome in outcomes:
        if outcome.quarantine_error is not None:
            if fail_fast:
                raise outcome.quarantine_error
            report.quarantined.append(
                QuarantinedBatch.from_error(outcome.quarantine_error))
        else:
            report.batches.append(outcome.batch)
        if outcome.snapshot is not None:
            snapshots.append(outcome.snapshot)
    if telemetry.enabled and snapshots:
        # Dispatcher snapshot first: it carries the root span the batch
        # subtrees re-parent under.
        merged = _Snapshot.merged(
            [telemetry.snapshot()] + snapshots,
            meta={
                "mode": "chaos",
                "protocol": protocol.name,
                "topology": config.topology.name,
                "n_batches": n_batches,
                "seed": config.seed,
                "schedule": report.schedule_description,
                "n_workers": n_workers,
            },
        )
        if report.quarantined:
            quarantine_count = sum(
                1 for outcome in outcomes if outcome.quarantine_error is not None
            )
            merged.counters.append({
                "name": "repro_chaos_quarantined_total",
                "help": "chaos batches quarantined after an execution error",
                "series": [{
                    "labels": {"protocol": protocol.name},
                    "value": float(quarantine_count),
                }],
            })
        report.telemetry = merged
    return report


def replay_batch(
    config: SimulationConfig,
    protocol: ReplicaControlProtocol,
    batch_index: int,
    monitor: Optional[InvariantMonitor] = None,
) -> BatchResult:
    """Deterministically re-run one (possibly quarantined) batch.

    Batch streams derive from ``(config.seed, batch_index)`` alone, so
    replaying a quarantined batch reproduces its failure exactly — or,
    with an instrumented ``monitor`` attached, lets you watch the run up
    to the abort. Raises the original
    :class:`~repro.errors.BatchExecutionError` if the batch still dies.
    """
    observer = None if monitor is None else monitor.observe
    if monitor is not None:
        monitor.start_batch(batch_index, seed=config.seed)
    engine = SimulationEngine(config, protocol, change_observer=observer,
                              record_trace=True)
    return engine.run_batch(batch_index)
