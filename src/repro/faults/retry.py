"""Bounded, jittered retry/backoff policies in *simulated* time.

A denied access in the replicated database is often transient: the
submitting site's component is one repair away from a quorum. A
:class:`RetryPolicy` gives the data path a disciplined second chance —
exponential backoff with full-jitter, a cap on attempts, and a hard
deadline — all measured on the database's simulated clock, so retries
compose deterministically with scripted fault schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import FaultInjectionError
from repro.rng import RandomState, as_generator

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry discipline for :class:`~repro.replication.database.ReplicatedDatabase`.

    Attributes
    ----------
    max_attempts:
        Total tries including the first; ``1`` disables retrying.
    base_delay:
        Backoff before the first retry (simulated time units).
    multiplier:
        Exponential growth factor between consecutive backoffs.
    max_delay:
        Cap on any single backoff.
    deadline:
        Maximum total simulated time spent on one access (first submission
        to last retry), measured from the first attempt. ``None`` means
        attempts alone bound the loop.
    jitter:
        Fraction in ``[0, 1]``; each backoff is scaled by a uniform draw
        from ``[1 - jitter, 1 + jitter]`` (seeded, reproducible). Jitter
        decorrelates retry storms when many sites retry the same outage.
    """

    max_attempts: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 8.0
    deadline: Optional[float] = None
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultInjectionError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.base_delay < 0.0:
            raise FaultInjectionError(
                f"base_delay must be non-negative, got {self.base_delay}"
            )
        if self.multiplier < 1.0:
            raise FaultInjectionError(
                f"multiplier must be at least 1, got {self.multiplier}"
            )
        if self.max_delay < self.base_delay:
            raise FaultInjectionError(
                f"max_delay ({self.max_delay}) must not undercut base_delay "
                f"({self.base_delay})"
            )
        if self.deadline is not None and self.deadline <= 0.0:
            raise FaultInjectionError(
                f"deadline must be positive, got {self.deadline}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise FaultInjectionError(
                f"jitter must lie in [0, 1], got {self.jitter}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "RetryPolicy":
        """The no-retry policy (single attempt)."""
        return cls(max_attempts=1)

    def backoff(self, attempt: int, rng: RandomState = None) -> float:
        """Backoff to wait after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise FaultInjectionError(f"attempt numbers are 1-based, got {attempt}")
        delay = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter > 0.0 and delay > 0.0:
            scale = float(as_generator(rng).uniform(1.0 - self.jitter, 1.0 + self.jitter))
            delay *= scale
        return delay

    def within_deadline(self, elapsed: float) -> bool:
        """May another attempt start, ``elapsed`` after the first one?"""
        return self.deadline is None or elapsed < self.deadline

    def describe(self) -> str:
        deadline = f", deadline={self.deadline:g}" if self.deadline is not None else ""
        return (
            f"retry(attempts={self.max_attempts}, base={self.base_delay:g}, "
            f"x{self.multiplier:g}, cap={self.max_delay:g}, "
            f"jitter={self.jitter:g}{deadline})"
        )
