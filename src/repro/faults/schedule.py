"""Deterministic, seedable fault schedules for chaos runs.

A :class:`FaultSchedule` is a collection of :class:`FaultInjector` objects
that together script an adversarial failure scenario: exactly *which*
sites and links go down, *when*, and when (if ever) they come back. The
engine plugs the schedule in alongside the stochastic
:class:`~repro.simulation.processes.FailureProcesses`; every component an
injector touches is *owned* by the schedule and automatically removed
from the stochastic fallible set, so a scripted partition cannot be
half-healed by a random repair.

All times are absolute simulated time from the start of the batch
(warm-up included); chaos configurations normally run with
``warmup_accesses=0`` or ``initial_state="stationary"`` so schedule times
line up with the measured window.

Injectors that draw randomness (:class:`CorrelatedFailure` occurrence
times, per-member jitter) take their stream from the schedule's own seed
when one is given, otherwise from the engine's per-batch chaos stream —
either way the scenario is exactly reproducible from ``(seed, batch)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import FaultInjectionError
from repro.rng import RandomState, as_generator
from repro.simulation.events import SOURCE_CHAOS, EventKind, EventQueue
from repro.topology.model import Topology

__all__ = [
    "FaultInjector",
    "FaultSchedule",
    "SiteCrash",
    "LinkCut",
    "ScriptedPartition",
    "FlappingSite",
    "CascadingFailure",
    "CorrelatedFailure",
]

#: One scheduled fault: (absolute time, event kind, site or link id).
ScheduledFault = Tuple[float, EventKind, int]

_SITE_KINDS = (EventKind.SITE_FAIL, EventKind.SITE_REPAIR)
_LINK_KINDS = (EventKind.LINK_FAIL, EventKind.LINK_REPAIR)


def _check_time(value: float, label: str) -> float:
    value = float(value)
    if value < 0.0:
        raise FaultInjectionError(f"{label} must be non-negative, got {value}")
    return value


def _check_sites(sites: Iterable[int], topology: Topology, label: str) -> List[int]:
    out = []
    for site in sites:
        site = int(site)
        if not 0 <= site < topology.n_sites:
            raise FaultInjectionError(
                f"{label} names site {site}, outside 0..{topology.n_sites - 1}"
            )
        out.append(site)
    return out


class FaultInjector(ABC):
    """One scripted fault scenario over a topology."""

    @abstractmethod
    def events(self, topology: Topology, rng) -> List[ScheduledFault]:
        """The (time, kind, target) faults this injector contributes.

        ``rng`` is a :class:`numpy.random.Generator`; deterministic
        injectors ignore it. Implementations must validate their targets
        against ``topology`` and raise
        :class:`~repro.errors.FaultInjectionError` on mismatch.
        """

    def owned_sites(self, topology: Topology) -> Set[int]:
        """Site ids whose up/down future this injector controls."""
        return {
            target
            for _, kind, target in self.events(topology, as_generator(0))
            if kind in _SITE_KINDS
        }

    def owned_links(self, topology: Topology) -> Set[int]:
        """Link ids whose up/down future this injector controls."""
        return {
            target
            for _, kind, target in self.events(topology, as_generator(0))
            if kind in _LINK_KINDS
        }

    def describe(self) -> str:
        return type(self).__name__


class SiteCrash(FaultInjector):
    """Crash a set of sites at ``at``; optionally repair them at ``heal_at``."""

    def __init__(self, at: float, sites: Sequence[int],
                 heal_at: Optional[float] = None) -> None:
        self.at = _check_time(at, "crash time")
        self.sites = [int(s) for s in sites]
        if not self.sites:
            raise FaultInjectionError("SiteCrash needs at least one site")
        self.heal_at = None if heal_at is None else _check_time(heal_at, "heal time")
        if self.heal_at is not None and self.heal_at <= self.at:
            raise FaultInjectionError(
                f"heal time {self.heal_at} must come after crash time {self.at}"
            )

    def events(self, topology: Topology, rng) -> List[ScheduledFault]:
        sites = _check_sites(self.sites, topology, "SiteCrash")
        out = [(self.at, EventKind.SITE_FAIL, s) for s in sites]
        if self.heal_at is not None:
            out.extend((self.heal_at, EventKind.SITE_REPAIR, s) for s in sites)
        return out

    def describe(self) -> str:
        heal = f", heal@{self.heal_at:g}" if self.heal_at is not None else ""
        return f"site-crash(sites={self.sites}, t={self.at:g}{heal})"


class LinkCut(FaultInjector):
    """Cut the links joining given site pairs at ``at``; heal at ``heal_at``."""

    def __init__(self, at: float, pairs: Sequence[Tuple[int, int]],
                 heal_at: Optional[float] = None) -> None:
        self.at = _check_time(at, "cut time")
        self.pairs = [(int(a), int(b)) for a, b in pairs]
        if not self.pairs:
            raise FaultInjectionError("LinkCut needs at least one site pair")
        self.heal_at = None if heal_at is None else _check_time(heal_at, "heal time")
        if self.heal_at is not None and self.heal_at <= self.at:
            raise FaultInjectionError(
                f"heal time {self.heal_at} must come after cut time {self.at}"
            )

    def _link_ids(self, topology: Topology) -> List[int]:
        try:
            return [topology.link_id(a, b) for a, b in self.pairs]
        except Exception as exc:
            raise FaultInjectionError(f"LinkCut names a missing link: {exc}") from exc

    def events(self, topology: Topology, rng) -> List[ScheduledFault]:
        links = self._link_ids(topology)
        out = [(self.at, EventKind.LINK_FAIL, l) for l in links]
        if self.heal_at is not None:
            out.extend((self.heal_at, EventKind.LINK_REPAIR, l) for l in links)
        return out

    def describe(self) -> str:
        return f"link-cut(pairs={self.pairs}, t={self.at:g})"


class ScriptedPartition(FaultInjector):
    """Partition the network into the given site groups at ``at``.

    Every link whose endpoints fall in different groups is cut at ``at``
    and (when ``heal_at`` is given) restored at ``heal_at``. Sites not
    named in any group form one implicit "rest" group together, so a
    single ``groups=[[0, 1, 2]]`` splits those three sites off from
    everyone else. This is the primitive behind the paper's section-2.2
    merge/split scenarios.
    """

    def __init__(self, at: float, groups: Sequence[Sequence[int]],
                 heal_at: Optional[float] = None) -> None:
        self.at = _check_time(at, "partition time")
        self.groups = [[int(s) for s in group] for group in groups]
        if not self.groups or all(not g for g in self.groups):
            raise FaultInjectionError("ScriptedPartition needs at least one non-empty group")
        flat = [s for group in self.groups for s in group]
        if len(flat) != len(set(flat)):
            raise FaultInjectionError("ScriptedPartition groups must be disjoint")
        self.heal_at = None if heal_at is None else _check_time(heal_at, "heal time")
        if self.heal_at is not None and self.heal_at <= self.at:
            raise FaultInjectionError(
                f"heal time {self.heal_at} must come after partition time {self.at}"
            )

    def cut_link_ids(self, topology: Topology) -> List[int]:
        """The link ids severed by this partition."""
        for group in self.groups:
            _check_sites(group, topology, "ScriptedPartition")
        group_of = {}
        for index, group in enumerate(self.groups):
            for site in group:
                group_of[site] = index
        rest = len(self.groups)  # implicit group for unlisted sites
        cut = []
        for link_id, link in enumerate(topology.links):
            ga = group_of.get(link.a, rest)
            gb = group_of.get(link.b, rest)
            if ga != gb:
                cut.append(link_id)
        return cut

    def events(self, topology: Topology, rng) -> List[ScheduledFault]:
        links = self.cut_link_ids(topology)
        out = [(self.at, EventKind.LINK_FAIL, l) for l in links]
        if self.heal_at is not None:
            out.extend((self.heal_at, EventKind.LINK_REPAIR, l) for l in links)
        return out

    def describe(self) -> str:
        heal = f", heal@{self.heal_at:g}" if self.heal_at is not None else ""
        return f"partition(groups={self.groups}, t={self.at:g}{heal})"


class FlappingSite(FaultInjector):
    """A site that cycles down/up with a fixed period until ``until``.

    Each cycle starting at ``start + k * period`` spends
    ``down_fraction * period`` down, then comes back up. Flapping is the
    classic stressor for version-propagation rules: the site repeatedly
    leaves and rejoins components that may have moved on without it.
    """

    def __init__(self, site: int, period: float, until: float,
                 down_fraction: float = 0.5, start: float = 0.0) -> None:
        self.site = int(site)
        self.period = float(period)
        if self.period <= 0.0:
            raise FaultInjectionError(f"flap period must be positive, got {period}")
        if not 0.0 < float(down_fraction) < 1.0:
            raise FaultInjectionError(
                f"down_fraction must be strictly inside (0, 1), got {down_fraction}"
            )
        self.down_fraction = float(down_fraction)
        self.start = _check_time(start, "flap start")
        self.until = _check_time(until, "flap end")
        if self.until <= self.start:
            raise FaultInjectionError(
                f"flap end {self.until} must come after start {self.start}"
            )

    def events(self, topology: Topology, rng) -> List[ScheduledFault]:
        _check_sites([self.site], topology, "FlappingSite")
        out: List[ScheduledFault] = []
        down_time = self.down_fraction * self.period
        t = self.start
        while t < self.until:
            out.append((t, EventKind.SITE_FAIL, self.site))
            out.append((t + down_time, EventKind.SITE_REPAIR, self.site))
            t += self.period
        return out

    def describe(self) -> str:
        return (
            f"flapping(site={self.site}, period={self.period:g}, "
            f"until={self.until:g})"
        )


class CascadingFailure(FaultInjector):
    """Sites fail one after another, ``delay`` apart, starting at ``start``.

    Models a rolling outage (overload shedding, a bad deploy sweeping
    through a fleet). All victims are repaired together at ``heal_at``
    when given.
    """

    def __init__(self, start: float, sites: Sequence[int], delay: float,
                 heal_at: Optional[float] = None) -> None:
        self.start = _check_time(start, "cascade start")
        self.sites = [int(s) for s in sites]
        if not self.sites:
            raise FaultInjectionError("CascadingFailure needs at least one site")
        self.delay = float(delay)
        if self.delay < 0.0:
            raise FaultInjectionError(f"cascade delay must be non-negative, got {delay}")
        self.heal_at = None if heal_at is None else _check_time(heal_at, "heal time")
        last_failure = self.start + self.delay * (len(self.sites) - 1)
        if self.heal_at is not None and self.heal_at <= last_failure:
            raise FaultInjectionError(
                f"heal time {self.heal_at} must come after the last cascade "
                f"failure at {last_failure}"
            )

    def events(self, topology: Topology, rng) -> List[ScheduledFault]:
        sites = _check_sites(self.sites, topology, "CascadingFailure")
        out = [
            (self.start + k * self.delay, EventKind.SITE_FAIL, s)
            for k, s in enumerate(sites)
        ]
        if self.heal_at is not None:
            out.extend((self.heal_at, EventKind.SITE_REPAIR, s) for s in sites)
        return out

    def describe(self) -> str:
        return (
            f"cascade(sites={self.sites}, start={self.start:g}, "
            f"delay={self.delay:g})"
        )


class CorrelatedFailure(FaultInjector):
    """A shared-risk group: sites and links that fail *together*.

    Models a rack power feed, a fiber conduit, or an availability zone:
    one underlying fault takes out every member at once. Occurrences are
    either scripted (``at_times``) or sampled as a Poisson process of
    mean inter-occurrence time ``mean_interval`` up to ``until`` —
    sampled from the schedule's seeded stream, so still reproducible.
    Each occurrence holds the group down for ``down_time``; ``jitter``
    spreads member failures over ``[0, jitter]`` after the trigger
    (near-simultaneous, as real correlated failures are).
    """

    def __init__(
        self,
        sites: Sequence[int] = (),
        link_pairs: Sequence[Tuple[int, int]] = (),
        at_times: Optional[Sequence[float]] = None,
        mean_interval: Optional[float] = None,
        until: Optional[float] = None,
        down_time: float = 1.0,
        jitter: float = 0.0,
    ) -> None:
        self.sites = [int(s) for s in sites]
        self.link_pairs = [(int(a), int(b)) for a, b in link_pairs]
        if not self.sites and not self.link_pairs:
            raise FaultInjectionError(
                "CorrelatedFailure needs at least one site or link member"
            )
        if (at_times is None) == (mean_interval is None):
            raise FaultInjectionError(
                "give exactly one of at_times (scripted) or mean_interval (Poisson)"
            )
        if at_times is not None:
            self.at_times: Optional[List[float]] = sorted(
                _check_time(t, "occurrence time") for t in at_times
            )
            if not self.at_times:
                raise FaultInjectionError("at_times must not be empty")
        else:
            self.at_times = None
        self.mean_interval = None if mean_interval is None else float(mean_interval)
        if self.mean_interval is not None and self.mean_interval <= 0.0:
            raise FaultInjectionError(
                f"mean_interval must be positive, got {mean_interval}"
            )
        if self.mean_interval is not None and until is None:
            raise FaultInjectionError("Poisson occurrences need an 'until' horizon")
        self.until = None if until is None else _check_time(until, "until")
        self.down_time = float(down_time)
        if self.down_time <= 0.0:
            raise FaultInjectionError(f"down_time must be positive, got {down_time}")
        self.jitter = float(jitter)
        if self.jitter < 0.0:
            raise FaultInjectionError(f"jitter must be non-negative, got {jitter}")
        if self.jitter >= self.down_time:
            raise FaultInjectionError(
                f"jitter ({self.jitter}) must be smaller than down_time "
                f"({self.down_time}) or a repair could precede its failure"
            )

    def _members(self, topology: Topology) -> List[Tuple[EventKind, EventKind, int]]:
        members = [
            (EventKind.SITE_FAIL, EventKind.SITE_REPAIR, s)
            for s in _check_sites(self.sites, topology, "CorrelatedFailure")
        ]
        for a, b in self.link_pairs:
            try:
                link = topology.link_id(a, b)
            except Exception as exc:
                raise FaultInjectionError(
                    f"CorrelatedFailure names a missing link ({a}, {b})"
                ) from exc
            members.append((EventKind.LINK_FAIL, EventKind.LINK_REPAIR, link))
        return members

    def _occurrences(self, rng) -> List[float]:
        if self.at_times is not None:
            return list(self.at_times)
        assert self.mean_interval is not None and self.until is not None
        times: List[float] = []
        t = float(rng.exponential(self.mean_interval))
        while t < self.until:
            times.append(t)
            t += float(rng.exponential(self.mean_interval))
        return times

    def events(self, topology: Topology, rng) -> List[ScheduledFault]:
        members = self._members(topology)
        out: List[ScheduledFault] = []
        for occurrence in self._occurrences(rng):
            for fail_kind, repair_kind, target in members:
                offset = float(rng.uniform(0.0, self.jitter)) if self.jitter else 0.0
                out.append((occurrence + offset, fail_kind, target))
                out.append((occurrence + self.down_time, repair_kind, target))
        return out

    def owned_sites(self, topology: Topology) -> Set[int]:
        return set(_check_sites(self.sites, topology, "CorrelatedFailure"))

    def owned_links(self, topology: Topology) -> Set[int]:
        return {topology.link_id(a, b) for a, b in self.link_pairs}

    def describe(self) -> str:
        mode = (
            f"at={self.at_times}"
            if self.at_times is not None
            else f"poisson(mean={self.mean_interval:g}, until={self.until:g})"
        )
        return (
            f"correlated(sites={self.sites}, links={self.link_pairs}, {mode}, "
            f"down={self.down_time:g})"
        )


class FaultSchedule:
    """An ordered bundle of fault injectors, primed into an event queue.

    ``seed`` fixes the schedule's private random stream (used by
    stochastic injectors); when ``None``, the engine's per-batch chaos
    stream is used instead, so occurrences vary across batches while
    remaining reproducible from the batch seed.
    """

    def __init__(self, injectors: Sequence[FaultInjector],
                 seed: RandomState = None) -> None:
        injectors = list(injectors)
        for injector in injectors:
            if not isinstance(injector, FaultInjector):
                raise FaultInjectionError(
                    f"expected FaultInjector instances, got {type(injector).__name__}"
                )
        self.injectors = injectors
        self.seed = seed

    def __len__(self) -> int:
        return len(self.injectors)

    # ------------------------------------------------------------------
    def owned_components(self, topology: Topology) -> Tuple[List[int], List[int]]:
        """(site ids, link ids) whose future any injector scripts.

        The engine removes these from the stochastic fallible masks so
        random repairs cannot undo scripted faults mid-scenario.
        """
        sites: Set[int] = set()
        links: Set[int] = set()
        for injector in self.injectors:
            sites |= injector.owned_sites(topology)
            links |= injector.owned_links(topology)
        return sorted(sites), sorted(links)

    def all_events(self, topology: Topology, rng: RandomState = None) -> List[ScheduledFault]:
        """Every scheduled fault, time-ordered, from all injectors."""
        generator = as_generator(self.seed if self.seed is not None else rng)
        out: List[ScheduledFault] = []
        for injector in self.injectors:
            out.extend(injector.events(topology, generator))
        out.sort(key=lambda fault: fault[0])
        return out

    def prime(self, queue: EventQueue, topology: Topology,
              rng: RandomState = None) -> int:
        """Schedule every fault into ``queue`` (tagged as chaos events).

        Returns the number of events scheduled.
        """
        events = self.all_events(topology, rng)
        for time, kind, target in events:
            if not kind.is_topology_change:
                raise FaultInjectionError(
                    f"fault schedules may only inject topology events, got {kind}"
                )
            queue.schedule(time, kind, target, source=SOURCE_CHAOS)
        return len(events)

    def describe(self) -> str:
        if not self.injectors:
            return "empty-schedule"
        return " + ".join(injector.describe() for injector in self.injectors)
