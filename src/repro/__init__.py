"""repro — Optimal quorum assignments for replicated distributed databases.

A full reproduction of Johnson & Raab, *Finding Optimal Quorum
Assignments for Distributed Databases* (Dartmouth PCS-TR90-158, ICPP
1991): the quorum consensus and dynamic quorum-reassignment protocols,
the Figure-1 optimal-assignment algorithm with write-throughput
constraints, analytic and on-line component-size densities, a
steady-state discrete-event availability simulator, and a replicated
database data path with a one-copy-serializability checker.

Quickstart::

    from repro import (
        AvailabilityModel, QuorumAssignment, complete_density,
        optimal_read_quorum,
    )

    f = complete_density(n_sites=25, p=0.96, r=0.96)   # analytic f_i(v)
    model = AvailabilityModel(f, f)                    # uniform reads/writes
    best = optimal_read_quorum(model, alpha=0.75)
    print(best.assignment, best.availability)

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-versus-measured results.
"""

from repro.errors import (
    DensityError,
    OptimizationError,
    ProtocolError,
    QuorumConstraintError,
    ReproError,
    SerializabilityError,
    SimulationError,
    TopologyError,
    VoteAssignmentError,
)
from repro.topology import (
    Link,
    Topology,
    bus,
    erdos_renyi,
    fully_connected,
    grid,
    paper_topology,
    random_tree,
    ring,
    ring_with_chords,
    star,
)
from repro.connectivity import (
    ComponentTracker,
    NetworkState,
    component_labels,
    component_vote_totals,
)
from repro.analytic import (
    bus_density,
    complete_density,
    enumerate_density,
    montecarlo_density,
    rel,
    ring_density,
    tree_density,
)
from repro.quorum import (
    AvailabilityModel,
    Coterie,
    OptimizationResult,
    QuorumAssignment,
    VoteAssignment,
    availability_curve,
    coterie_from_votes,
    optimal_read_quorum,
    optimize_votes,
    optimize_with_write_floor,
    weighted_availability,
)
from repro.protocols import (
    AdaptiveQuorumProtocol,
    DynamicVotingProtocol,
    MajorityConsensusProtocol,
    OnlineDensityEstimator,
    PrimaryCopyProtocol,
    QuorumConsensusProtocol,
    QuorumReassignmentProtocol,
    ReadOneWriteAllProtocol,
    ReplicaControlProtocol,
    WorkloadEstimator,
)
from repro.simulation import (
    AccessWorkload,
    NetworkTrace,
    PhasedWorkload,
    SimulationConfig,
    SimulationResult,
    TraceReplayer,
    run_simulation,
    simulate_batch,
)
from repro.replication import (
    ItemBinding,
    MultiItemDatabase,
    ReplicatedDatabase,
    ReplicatedItem,
)
from repro.experiments import figure_data, paper_config

__version__ = "1.0.0"

__all__ = [
    "AccessWorkload",
    "AdaptiveQuorumProtocol",
    "AvailabilityModel",
    "ComponentTracker",
    "Coterie",
    "DensityError",
    "DynamicVotingProtocol",
    "ItemBinding",
    "Link",
    "MajorityConsensusProtocol",
    "MultiItemDatabase",
    "NetworkTrace",
    "NetworkState",
    "OnlineDensityEstimator",
    "OptimizationError",
    "OptimizationResult",
    "PhasedWorkload",
    "PrimaryCopyProtocol",
    "ProtocolError",
    "QuorumAssignment",
    "QuorumConsensusProtocol",
    "QuorumConstraintError",
    "QuorumReassignmentProtocol",
    "ReadOneWriteAllProtocol",
    "ReplicaControlProtocol",
    "ReplicatedDatabase",
    "ReplicatedItem",
    "ReproError",
    "SerializabilityError",
    "SimulationConfig",
    "SimulationError",
    "SimulationResult",
    "Topology",
    "TraceReplayer",
    "TopologyError",
    "VoteAssignment",
    "VoteAssignmentError",
    "WorkloadEstimator",
    "availability_curve",
    "bus",
    "bus_density",
    "complete_density",
    "component_labels",
    "component_vote_totals",
    "coterie_from_votes",
    "enumerate_density",
    "erdos_renyi",
    "figure_data",
    "fully_connected",
    "grid",
    "montecarlo_density",
    "optimal_read_quorum",
    "optimize_votes",
    "optimize_with_write_floor",
    "paper_config",
    "paper_topology",
    "random_tree",
    "rel",
    "ring",
    "ring_density",
    "ring_with_chords",
    "run_simulation",
    "simulate_batch",
    "star",
    "tree_density",
    "weighted_availability",
]
