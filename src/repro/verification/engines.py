"""Back-compat shim: the engine adapters moved to :mod:`repro.engines`.

Everything this module used to define now lives in
:mod:`repro.engines.adapters` behind the registry
(:mod:`repro.engines.registry`). Import from :mod:`repro.engines` — or
better, resolve engines by name with
:func:`repro.engines.get_engine` — in new code; this module only
re-exports the old names so existing imports keep working.
"""

from __future__ import annotations

from repro.engines import (
    KNOWN_BUGS,
    ModelEngine,
    OffByOneModel,
    SimulationEngineRun,
    closed_form_engine,
    enumeration_engine,
    grant_mask_mismatch,
    importance_mc_engine,
    inject_bug_model,
    montecarlo_engine,
    simulation_engine_run,
    stratified_mc_engine,
    with_injected_bug,
)

__all__ = [
    "ModelEngine",
    "SimulationEngineRun",
    "closed_form_engine",
    "enumeration_engine",
    "montecarlo_engine",
    "stratified_mc_engine",
    "importance_mc_engine",
    "simulation_engine_run",
    "grant_mask_mismatch",
    "OffByOneModel",
    "KNOWN_BUGS",
    "inject_bug_model",
    "with_injected_bug",
]
