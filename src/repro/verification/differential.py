"""The differential runner: every applicable engine pair, every relation.

``run_profile`` takes a profile name and produces a
:class:`VerificationReport` covering three layers of evidence:

1. **Cross-engine pairs** — for each case, every pair of applicable
   engines is compared metric-by-metric with CI-aware tolerances. The
   model-producing engines (closed form, reference-order enumeration,
   the compiled/vectorized ``enum-compiled`` backend, plain Monte-Carlo,
   and the variance-reduced ``mc-stratified``/``mc-importance``
   variants) are resolved through the :mod:`repro.engines` registry and
   crossed all-pairs; on top of that ride closed-form vs simulation (ACC
   at the simulated quorum), simulation vs parallel fan-out (bitwise),
   the simulator's pooled accounting vs the telemetry audit log (exact),
   and the static quorum-consensus protocol vs the QR reassignment
   protocol (grant-mask differential over sampled network states).
2. **Metamorphic relations** — the identities of
   :mod:`repro.verification.metamorphic`.
3. **Golden corpus** — drift against the locked reference results
   (optional; the CLI includes it, unit tests exercise it separately).

``--inject-bug`` threads a deliberate defect into the closed-form engine
before the run; a healthy harness must then *fail*. This is the
verification of the verifier the acceptance gate demands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engines import KIND_MODEL, KIND_SIMULATION, get_engine, with_injected_bug
from repro.telemetry.recorder import current as _current_telemetry
from repro.verification.cases import VerificationCase, profile_cases
from repro.verification.golden import check_corpus
from repro.verification.metamorphic import run_metamorphic
from repro.verification.tolerance import CheckResult, Estimate, compare

__all__ = ["MODEL_ENGINES", "ENGINE_PAIRS", "VerificationReport",
           "run_case", "run_profile"]

#: Registry names of the model-producing engines the runner crosses
#: all-pairs, cheapest first (``closed-form`` is the bug-injection
#: target; the others are independent witnesses).
MODEL_ENGINES = (
    "closed-form",
    "enumeration",
    "enum-compiled",
    "monte-carlo",
    "mc-stratified",
    "mc-importance",
)

#: Tighter absolute floors for specific exact-vs-exact pairs. The
#: compiled/vectorized enumeration backends must agree with the
#: reference-order enumeration engine to ≤1e-12 (DESIGN.md §15) — far
#: below the default exact floor the statistical engines share.
_PAIR_FLOORS = {
    frozenset({"enumeration", "enum-compiled"}): 1e-12,
}

#: Engine-pair identifiers the runner can emit (the acceptance gate
#: counts distinct pairs actually exercised): all model-engine pairs
#: plus the simulation- and protocol-level differentials.
ENGINE_PAIRS = tuple(
    f"{a}|{b}"
    for i, a in enumerate(MODEL_ENGINES)
    for b in MODEL_ENGINES[i + 1:]
) + (
    "closed-form|simulation",
    "simulation|parallel",
    "simulation|audit",
    "static|reassignment",
    "sharded|multidb-reference",
)


@dataclass
class VerificationReport:
    """Everything one verification run established."""

    profile: str
    results: List[CheckResult] = field(default_factory=list)
    injected_bug: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def failures(self) -> List[CheckResult]:
        return [r for r in self.results if not r.passed]

    @property
    def passed(self) -> bool:
        return not self.failures

    @property
    def engine_pairs(self) -> Tuple[str, ...]:
        """Distinct cross-engine pairs actually exercised."""
        seen = {r.check for r in self.results}
        return tuple(p for p in ENGINE_PAIRS if p in seen)

    @property
    def relations(self) -> Tuple[str, ...]:
        """Distinct metamorphic relations actually exercised."""
        pairs = set(ENGINE_PAIRS) | {"golden-corpus"}
        return tuple(sorted({r.check for r in self.results} - pairs))

    @property
    def cases(self) -> Tuple[str, ...]:
        return tuple(sorted({r.case for r in self.results}))

    def worst_drift(self, top: int = 5) -> List[CheckResult]:
        """The checks closest to (or past) their tolerance band."""
        return sorted(self.results, key=lambda r: r.drift, reverse=True)[:top]

    # ------------------------------------------------------------------
    def summary(self, drift_top: int = 5) -> str:
        """Human-readable report: verdict, coverage, failures, drift."""
        lines = [
            f"verification profile {self.profile!r}: "
            f"{len(self.results)} checks, {len(self.failures)} failed"
            + (f" [injected bug: {self.injected_bug}]" if self.injected_bug else ""),
            f"  cases: {', '.join(self.cases)}",
            f"  engine pairs ({len(self.engine_pairs)}): "
            + ", ".join(self.engine_pairs),
            f"  metamorphic relations ({len(self.relations)}): "
            + ", ".join(self.relations),
        ]
        if self.failures:
            lines.append("failures:")
            for r in self.failures:
                lines.append(f"  {r}")
                if r.detail:
                    lines.append(f"      {r.detail}")
        lines.append(f"highest drift (top {drift_top}):")
        for r in self.worst_drift(drift_top):
            lines.append(f"  {r}")
        return "\n".join(lines)


# ----------------------------------------------------------------------

def _model_pair_checks(
    case: VerificationCase, bug: Optional[str]
) -> List[CheckResult]:
    """Cross every applicable model-producing engine on one case.

    Engines resolve through the registry; one that returns ``None``
    (enumeration past its state cap) is skipped. The injected bug, when
    requested, is wired into the closed-form engine only — every other
    engine is an independent witness that must then disagree.
    """
    engines = []
    for name in MODEL_ENGINES:
        engine = get_engine(name, kind=KIND_MODEL).build(case)
        if engine is None:
            continue
        if name == "closed-form":
            engine = with_injected_bug(engine, bug)
        engines.append(engine)
    estimates = {e.name: e.availability_estimates(case) for e in engines}
    results: List[CheckResult] = []
    names = [e.name for e in engines]
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            floor = _PAIR_FLOORS.get(frozenset({a, b}))
            kwargs = {} if floor is None else {
                "abs_floor": floor,
                "detail": "compiled-backend differential tier "
                          f"(abs_floor={floor:g})",
            }
            for metric in estimates[a]:
                results.append(
                    compare(f"{a}|{b}", case.name, metric,
                            estimates[a][metric], estimates[b][metric],
                            **kwargs)
                )
    return results


def _simulation_checks(
    case: VerificationCase, bug: Optional[str]
) -> List[CheckResult]:
    """Simulation-backed pairs: model vs ACC, bitwise parallel, audit."""
    if case.sim_read_quorum is None:
        return []
    results: List[CheckResult] = []
    sim_spec = get_engine("simulation", kind=KIND_SIMULATION)
    par_spec = get_engine("parallel", kind=KIND_SIMULATION)
    serial = sim_spec.build(case, n_workers=1, with_telemetry=True)
    parallel = par_spec.build(case, n_workers=2)

    closed = with_injected_bug(
        get_engine("closed-form", kind=KIND_MODEL).build(case), bug
    )
    expected = float(closed.model.availability(case.alpha, case.sim_read_quorum))
    results.append(
        compare(
            "closed-form|simulation",
            case.name,
            f"ACC(q={case.sim_read_quorum})",
            Estimate(expected, source="closed-form"),
            serial.acc,
            # Batch means are mildly correlated through failure epochs, so
            # the t-interval alone slightly understates the spread; a small
            # absolute floor absorbs that residual.
            abs_floor=5e-3,
            detail="batch-means Student-t interval vs analytic value",
        )
    )

    # Parallel fan-out is contractually bitwise identical to serial.
    for i, (a, b) in enumerate(zip(serial.batch_acc, parallel.batch_acc)):
        results.append(
            compare(
                "simulation|parallel",
                case.name,
                f"batch-ACC[{i}]",
                Estimate(a, source="serial"),
                Estimate(b, source="parallel(x2)"),
                abs_floor=0.0,
                detail="determinism contract: n_workers must not change results",
            )
        )
    results.append(
        compare(
            "simulation|parallel",
            case.name,
            "SURV",
            Estimate(serial.surv.value, source="serial"),
            Estimate(parallel.surv.value, source="parallel(x2)"),
            abs_floor=0.0,
        )
    )

    # The audit log accumulates grants/submissions independently of the
    # batch accounting; the two ACC figures must reconcile exactly.
    results.append(
        compare(
            "simulation|audit",
            case.name,
            "pooled ACC",
            Estimate(serial.pooled_acc, source="batch accounting"),
            Estimate(float(serial.audit_acc), source="telemetry audit"),
            detail="audit log vs batch accounting reconciliation",
        )
    )
    return results


def _protocol_checks(case: VerificationCase) -> List[CheckResult]:
    """Static quorum consensus vs never-reassigning QR protocol."""
    from repro.engines import grant_mask_mismatch

    fraction, n_states = grant_mask_mismatch(case)
    return [
        compare(
            "static|reassignment",
            case.name,
            "grant-mask mismatch fraction",
            Estimate(fraction, source="differential"),
            Estimate(0.0, source="expected"),
            detail=f"QR with no reassignment must match static grants "
            f"exactly over {n_states} sampled network states",
        )
    ]


def _sharded_checks(case: VerificationCase) -> List[CheckResult]:
    """Vectorized N-item engine vs the per-item multidb reference.

    Builds a three-item Zipf shard config on the case's network and
    failure process and demands *bitwise* agreement (``abs_floor=0``) on
    per-item access counts, survivability times, and the density tables
    — the sharded engine's core contract, checked here on every
    simulation-backed case rather than only in the unit battery.
    """
    if case.sim_read_quorum is None:
        return []
    import numpy as np

    from repro.sharding import ItemWorkload, ShardConfig

    sim = case.simulation_config()
    alphas = np.clip(
        [case.alpha - 0.25, case.alpha, case.alpha + 0.25], 0.0, 1.0
    )
    workload = ItemWorkload.zipf(3, sim.topology.n_sites, alphas, exponent=1.0)
    config = ShardConfig.from_simulation(
        sim,
        workload,
        read_quorums=np.full(3, case.sim_read_quorum, dtype=np.int64),
        warmup_accesses=0.0,
        accesses_per_batch=1_500.0,
        n_batches=2,
    )
    vec_spec = get_engine("sharded", kind=KIND_SIMULATION)
    ref_spec = get_engine("sharded-reference", kind=KIND_SIMULATION)
    vec = vec_spec.build(config)
    ref = ref_spec.build(config)

    pair = "sharded|multidb-reference"
    detail = "bitwise contract: one shared labelling vs the per-item loop"
    results: List[CheckResult] = []
    for item in range(config.n_items):
        results.append(
            compare(
                pair, case.name, f"item-ACC[{item}]",
                Estimate(float(vec.item_availability[item]), source="sharded"),
                Estimate(float(ref.item_availability[item]),
                         source="multidb-reference"),
                abs_floor=0.0, detail=detail,
            )
        )
    results.append(
        compare(
            pair, case.name, "SURV(read)",
            Estimate(float(vec.surv_read.sum()), source="sharded"),
            Estimate(float(ref.surv_read.sum()), source="multidb-reference"),
            abs_floor=0.0, detail=detail,
        )
    )
    results.append(
        compare(
            pair, case.name, "SURV(write)",
            Estimate(float(vec.surv_write.sum()), source="sharded"),
            Estimate(float(ref.surv_write.sum()), source="multidb-reference"),
            abs_floor=0.0, detail=detail,
        )
    )
    results.append(
        compare(
            pair, case.name, "density max|diff|",
            Estimate(
                float(np.abs(vec.density_time() - ref.density_time()).max()),
                source="sharded",
            ),
            Estimate(0.0, source="multidb-reference"),
            abs_floor=0.0, detail=detail,
        )
    )
    return results


def run_case(case: VerificationCase, bug: Optional[str] = None) -> List[CheckResult]:
    """Every applicable check on one case (pairs + relations)."""
    telemetry = _current_telemetry()
    with telemetry.span("verify.case", case=case.name):
        results = _model_pair_checks(case, bug)
        results.extend(_simulation_checks(case, bug))
        results.extend(_protocol_checks(case))
        results.extend(_sharded_checks(case))
        results.extend(run_metamorphic(case, bug))
    return results


def run_profile(
    profile: str,
    bug: Optional[str] = None,
    golden: bool = False,
) -> VerificationReport:
    """Run the full differential battery for a named profile."""
    report = VerificationReport(profile=profile, injected_bug=bug)
    for case in profile_cases(profile):
        report.results.extend(run_case(case, bug))
    if golden:
        report.results.extend(check_corpus())
    return report
