"""The golden regression corpus: locked reference results with drift checks.

Differential pairs and metamorphic relations catch *internal*
inconsistency; the corpus catches *drift* — a refactor that moves every
engine by the same wrong amount passes every cross-check but not a
comparison against values locked in the repository.

Three kinds of entries, all exactly reproducible:

- ``closed-form`` — paper-parameter reference points (Figures 5 and 7
  regime: 101 sites, component reliability 0.96, the paper's five access
  mixes): optimal quorum, optimal availability, and curve samples.
  Deterministic to float round-off.
- ``monte-carlo`` — seeded static Monte-Carlo estimates on the quick
  verification cases. The substream derivation makes these bitwise
  reproducible for a fixed seed, so the locked values are exact.
- ``simulation`` — one seeded discrete-event campaign (per-batch ACC and
  the pooled/audit accounting). Also bitwise reproducible.
- ``serving`` — one seeded adaptive-serving run under the scripted
  correlated-failure scenario: reassignment count, final ``q_r``, and
  the availability/robustness accounting. The serving engine's
  single-sequencer design makes these bitwise reproducible too.

``check_corpus`` recomputes everything and reports per-metric drift
against the locked values; any structural mismatch or drift beyond
tolerance names the regeneration command so an *intentional* behavior
change is a one-command corpus refresh reviewed in the diff.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.analytic import closed_form_density
from repro.errors import VerificationError
from repro.experiments.paper import PAPER_ALPHAS, PAPER_N_SITES, PAPER_RELIABILITY
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import optimal_read_quorum
from repro.verification.cases import VerificationCase, profile_cases
from repro.engines import montecarlo_engine, simulation_engine_run
from repro.verification.tolerance import CheckResult, Estimate, compare

__all__ = [
    "CORPUS_VERSION",
    "REGENERATE_HINT",
    "corpus_path",
    "generate_corpus",
    "load_corpus",
    "write_corpus",
    "check_corpus",
]

CORPUS_VERSION = 1

REGENERATE_HINT = (
    "if this change is intentional, refresh the locked values with "
    "`python -m repro verify --regenerate-golden` and review the corpus "
    "diff"
)

#: Curve sample points for the paper-parameter entries.
_PAPER_SAMPLE_QUORUMS = (1, 2, 25, 50)


def corpus_path() -> Path:
    """Location of the locked corpus inside the package."""
    return Path(__file__).resolve().parent / "golden" / "corpus.json"


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------

def _paper_entries() -> List[dict]:
    entries: List[dict] = []
    for family in ("ring", "complete", "bus"):
        row = closed_form_density(
            family, PAPER_N_SITES, PAPER_RELIABILITY, PAPER_RELIABILITY
        )
        model = AvailabilityModel(row, row)
        for alpha in PAPER_ALPHAS:
            best = optimal_read_quorum(model, alpha)
            metrics: Dict[str, float] = {
                "q*": float(best.read_quorum),
                "A*": float(best.availability),
            }
            for q in _PAPER_SAMPLE_QUORUMS:
                metrics[f"A(q={q})"] = float(model.availability(alpha, q))
            entries.append(
                {
                    "name": f"paper-{family}-alpha-{alpha:g}",
                    "kind": "closed-form",
                    "tolerance": 1e-9,
                    "params": {
                        "family": family,
                        "n_sites": PAPER_N_SITES,
                        "p": PAPER_RELIABILITY,
                        "r": PAPER_RELIABILITY,
                        "alpha": alpha,
                    },
                    "metrics": metrics,
                }
            )
    return entries


def _montecarlo_entries() -> List[dict]:
    entries: List[dict] = []
    for case in profile_cases("quick"):
        engine = montecarlo_engine(case)
        metrics = {
            metric: est.value
            for metric, est in engine.availability_estimates(case).items()
        }
        entries.append(
            {
                "name": f"mc-{case.name}-seed-{case.seed}",
                "kind": "monte-carlo",
                "tolerance": 1e-9,
                "params": {
                    "case": case.name,
                    "seed": case.seed,
                    "n_samples": case.mc_samples,
                },
                "metrics": metrics,
            }
        )
    return entries


def _simulation_case() -> VerificationCase:
    for case in profile_cases("quick"):
        if case.sim_read_quorum is not None:
            return case
    raise VerificationError("quick profile has no simulation-capable case")


def _simulation_entry() -> dict:
    case = _simulation_case()
    run = simulation_engine_run(case, with_telemetry=True)
    metrics: Dict[str, float] = {
        "ACC": run.acc.value,
        "SURV": run.surv.value,
        "pooled-ACC": run.pooled_acc,
        "audit-ACC": float(run.audit_acc),
    }
    for i, value in enumerate(run.batch_acc):
        metrics[f"batch-ACC[{i}]"] = float(value)
    return {
        "name": f"sim-{case.name}-seed-{case.seed}",
        "kind": "simulation",
        "tolerance": 1e-9,
        "params": {
            "case": case.name,
            "seed": case.seed,
            "sim_read_quorum": case.sim_read_quorum,
        },
        "metrics": metrics,
    }


#: Parameters of the locked adaptive-serving scenario. Small enough to
#: regenerate in seconds, large enough that the online estimator crosses
#: its observation threshold and installs at least one reassignment.
_SERVING_SEED = 7
_SERVING_SITES = 13
_SERVING_CHORDS = 2
_SERVING_ALPHA = 0.7
_SERVING_REQUESTS = 20_000
_SERVING_SCENARIO = "correlated"


def _serving_entry() -> dict:
    from repro.quorum.assignment import QuorumAssignment
    from repro.serving import ServeConfig, run_serve, serving_schedule
    from repro.simulation.workload import AccessWorkload
    from repro.topology.generators import ring_with_chords

    topology = ring_with_chords(_SERVING_SITES, _SERVING_CHORDS)
    config = ServeConfig(
        topology=topology,
        workload=AccessWorkload.uniform(_SERVING_SITES, _SERVING_ALPHA),
        initial_assignment=QuorumAssignment.from_read_quorum(
            topology.total_votes, 1
        ),
        n_requests=_SERVING_REQUESTS,
        n_clients=64,
        seed=_SERVING_SEED,
        scenario=_SERVING_SCENARIO,
    )
    config.fault_schedule = serving_schedule(
        _SERVING_SCENARIO, topology, config.horizon
    )
    report = run_serve(config)
    if report.violations or not report.reconciled:
        raise VerificationError(
            "serving golden entry produced an invalid run (violations="
            f"{len(report.violations)}, reconciled={report.reconciled})"
        )
    metrics: Dict[str, float] = {
        "reassignments": float(len(report.reassignments)),
        "final-q_r": float(report.final_read_quorum),
        "final-version": float(report.final_version),
        "request-availability": float(report.availability),
        "attempt-ACC": float(report.attempt_availability),
        "retries-scheduled": float(report.retries_scheduled),
        "retries-exhausted": float(report.retries_exhausted),
        "breaker-trips": float(report.breaker_trips),
        "read-only-entries": float(report.read_only_entries),
    }
    return {
        "name": f"serve-{_SERVING_SCENARIO}-seed-{_SERVING_SEED}",
        "kind": "serving",
        "tolerance": 1e-9,
        "params": {
            "n_sites": _SERVING_SITES,
            "chords": _SERVING_CHORDS,
            "alpha": _SERVING_ALPHA,
            "n_requests": _SERVING_REQUESTS,
            "scenario": _SERVING_SCENARIO,
            "seed": _SERVING_SEED,
            "initial_read_quorum": 1,
        },
        "metrics": metrics,
    }


#: Parameters of the locked sharded-optimizer entries: one exact
#: (enumeration-density) small-N plan and one seeded Monte-Carlo plan at
#: 10^4 items (8 alpha classes tiled — the grouping makes the item count
#: nearly free, which is exactly the behaviour being locked).
_SHARD_EXACT_ALPHAS = (0.2, 0.5, 0.8, 0.5)
_SHARD_MC_CLASSES = (0.05, 0.2, 0.35, 0.5, 0.6, 0.75, 0.9, 1.0)
_SHARD_MC_ITEMS = 10_000
_SHARD_MC_SAMPLES = 2_000
_SHARD_SEED = 0


def _shard_plan_metrics(plan) -> Dict[str, float]:
    metrics: Dict[str, float] = {
        "classes": float(plan.optimizations_run),
        "items": float(plan.n_items),
    }
    for group, best in zip(plan.groups, plan.group_results):
        metrics[f"q*(alpha={group.alpha:g})"] = float(best.read_quorum)
        metrics[f"A*(alpha={group.alpha:g})"] = float(best.availability)
    return metrics


def _sharded_entries() -> List[dict]:
    from repro.sharding.optimizer import optimize_shards
    from repro.topology.generators import ring

    entries: List[dict] = []

    # Exact enumeration oracle on a small ring; includes a duplicate
    # alpha class so the locked values also pin the grouping behaviour.
    plan = optimize_shards(
        ring(5), np.asarray(_SHARD_EXACT_ALPHAS), 0.9, 0.85,
        engine="enumeration",
    )
    entries.append(
        {
            "name": "shard-ring-5-enumeration",
            "kind": "sharded",
            "tolerance": 1e-9,
            "params": {
                "family": "ring",
                "n_sites": 5,
                "p": 0.9,
                "r": 0.85,
                "alphas": list(_SHARD_EXACT_ALPHAS),
            },
            "metrics": _shard_plan_metrics(plan),
        }
    )

    # Seeded Monte-Carlo at scale: 10^4 items, 8 classes, bitwise
    # reproducible through the substream derivation.
    alphas = np.tile(np.asarray(_SHARD_MC_CLASSES),
                     _SHARD_MC_ITEMS // len(_SHARD_MC_CLASSES))
    plan = optimize_shards(
        ring(9), alphas, 0.92, 0.88,
        engine="monte-carlo",
        n_samples=_SHARD_MC_SAMPLES,
        seed=_SHARD_SEED,
    )
    entries.append(
        {
            "name": f"shard-ring-9-mc-seed-{_SHARD_SEED}",
            "kind": "sharded",
            "tolerance": 1e-9,
            "params": {
                "family": "ring",
                "n_sites": 9,
                "p": 0.92,
                "r": 0.88,
                "n_items": int(alphas.shape[0]),
                "alpha_classes": list(_SHARD_MC_CLASSES),
                "n_samples": _SHARD_MC_SAMPLES,
                "seed": _SHARD_SEED,
            },
            "metrics": _shard_plan_metrics(plan),
        }
    )
    return entries


def generate_corpus() -> dict:
    """Recompute every corpus entry from the current code."""
    return {
        "version": CORPUS_VERSION,
        "generator": "python -m repro verify --regenerate-golden",
        "entries": (
            _paper_entries()
            + _montecarlo_entries()
            + [_simulation_entry(), _serving_entry()]
            + _sharded_entries()
        ),
    }


def write_corpus(path: Optional[Path] = None) -> Path:
    """Regenerate and lock the corpus (the --regenerate-golden action)."""
    path = Path(path) if path is not None else corpus_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    corpus = generate_corpus()
    path.write_text(json.dumps(corpus, indent=2, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# Checking
# ----------------------------------------------------------------------

def load_corpus(path: Optional[Path] = None) -> dict:
    """Load and structurally validate the locked corpus."""
    path = Path(path) if path is not None else corpus_path()
    if not path.exists():
        raise VerificationError(
            f"golden corpus not found at {path}; {REGENERATE_HINT}"
        )
    try:
        corpus = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise VerificationError(
            f"golden corpus at {path} is not valid JSON ({exc}); {REGENERATE_HINT}"
        ) from exc
    if not isinstance(corpus, dict) or "entries" not in corpus:
        raise VerificationError(
            f"golden corpus at {path} has no 'entries'; {REGENERATE_HINT}"
        )
    if corpus.get("version") != CORPUS_VERSION:
        raise VerificationError(
            f"golden corpus version {corpus.get('version')!r} != expected "
            f"{CORPUS_VERSION}; {REGENERATE_HINT}"
        )
    for entry in corpus["entries"]:
        if not isinstance(entry, dict) or not {"name", "kind", "tolerance", "metrics"} <= set(entry):
            raise VerificationError(
                f"malformed golden corpus entry {entry!r}; {REGENERATE_HINT}"
            )
    return corpus


def check_corpus(path: Optional[Path] = None) -> List[CheckResult]:
    """Recompute the corpus and diff every metric against the locked values.

    Returns one :class:`CheckResult` per (entry, metric); a missing or
    extra entry/metric fails with a structural detail message. The
    ``drift`` field is the regression figure to watch: a metric sitting
    at 0.9 of its band passes today and flakes tomorrow.
    """
    locked = load_corpus(path)
    current = generate_corpus()
    locked_entries = {e["name"]: e for e in locked["entries"]}
    current_entries = {e["name"]: e for e in current["entries"]}
    results: List[CheckResult] = []

    for name in sorted(set(locked_entries) | set(current_entries)):
        if name not in current_entries:
            results.append(
                _structural_failure(
                    name, "entry no longer generated by the current code"
                )
            )
            continue
        if name not in locked_entries:
            results.append(
                _structural_failure(name, "entry missing from the locked corpus")
            )
            continue
        locked_entry = locked_entries[name]
        current_entry = current_entries[name]
        tolerance = float(locked_entry["tolerance"])
        locked_metrics = locked_entry["metrics"]
        current_metrics = current_entry["metrics"]
        for metric in sorted(set(locked_metrics) | set(current_metrics)):
            if metric not in current_metrics or metric not in locked_metrics:
                side = "current run" if metric not in current_metrics else "locked corpus"
                results.append(
                    _structural_failure(name, f"metric {metric!r} absent from {side}")
                )
                continue
            results.append(
                compare(
                    "golden-corpus",
                    name,
                    metric,
                    Estimate(float(locked_metrics[metric]), source="locked"),
                    Estimate(float(current_metrics[metric]), source="current"),
                    abs_floor=tolerance,
                    slack=0.0,
                    detail=REGENERATE_HINT,
                )
            )
    return results


def _structural_failure(name: str, what: str) -> CheckResult:
    return CheckResult(
        check="golden-corpus",
        case=name,
        metric="structure",
        value_a=float("nan"),
        value_b=float("nan"),
        tolerance=0.0,
        passed=False,
        diff=float("inf"),
        drift=float("inf"),
        detail=f"{what}; {REGENERATE_HINT}",
    )
