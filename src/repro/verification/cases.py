"""Verification cases: the parameter points the engines are crossed on.

A :class:`VerificationCase` pins one topology family at one parameter
point (sites, reliabilities, read fraction, seed) together with the
budget knobs of the statistical engines. The two built-in profiles trade
coverage for wall-clock:

- ``quick`` — the tier-2 gate every PR runs: ring/complete/bus small
  enough for the exact enumeration oracle, simulation pairs on the ring
  and complete cases. Seconds, not minutes.
- ``full`` — adds larger networks (where enumeration tops out and the
  statistical engines carry the check alone), a bus simulation with
  heterogeneous per-component failure rates, and a paper-parameter
  101-site ring.

Simulation-backed checks use the ``stationary`` initial state (no
warm-up bias at any access budget) and ``expected`` accounting
(variance-reduced, unbiased for ACC) so the batch CIs — and therefore
the derived tolerances — stay as tight as the access budget allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.analytic import CLOSED_FORM_FAMILIES
from repro.errors import VerificationError
from repro.simulation.config import SimulationConfig
from repro.simulation.workload import AccessWorkload
from repro.topology.generators import bus, fully_connected, ring
from repro.topology.model import Topology

__all__ = ["VerificationCase", "PROFILES", "profile_cases"]

#: Mean time-to-failure of every fallible component in verification
#: simulations. Short relative to the batch horizon so each batch sees
#: many failure/repair epochs (tighter batch CIs), long enough that the
#: epoch dynamics still resemble the paper's regime.
_SIM_MTTF = 30.0


@dataclass(frozen=True)
class VerificationCase:
    """One cross-engine comparison point.

    ``n_sites`` counts voting sites; the bus family adds its zero-vote
    hub on top. ``read_quorums`` are the quorums whose availability is
    compared across model-producing engines. ``sim_read_quorum`` selects
    the quorum-consensus protocol simulated for the simulation-backed
    pairs (``None`` skips those pairs — e.g. when a case only exists to
    cross the analytic engines at scale).
    """

    name: str
    family: str
    n_sites: int
    p: float
    r: float
    alpha: float
    read_quorums: Tuple[int, ...]
    sim_read_quorum: Optional[int] = None
    seed: int = 0
    mc_samples: int = 4_000
    sim_accesses: float = 4_000.0
    sim_batches: int = 5
    protocol_states: int = 200

    def __post_init__(self) -> None:
        if self.family not in CLOSED_FORM_FAMILIES:
            raise VerificationError(
                f"unknown case family {self.family!r}; choose from "
                f"{CLOSED_FORM_FAMILIES}"
            )
        T = self.n_sites
        if not self.read_quorums:
            raise VerificationError(f"case {self.name}: no read quorums to compare")
        for q in self.read_quorums:
            if not 1 <= q <= T:
                raise VerificationError(
                    f"case {self.name}: read quorum {q} outside 1..{T}"
                )
        if self.sim_read_quorum is not None and not (
            1 <= self.sim_read_quorum <= max(T // 2, 1)
        ):
            raise VerificationError(
                f"case {self.name}: sim_read_quorum {self.sim_read_quorum} "
                f"outside 1..floor(T/2) = 1..{max(T // 2, 1)}"
            )
        for label, value in (("p", self.p), ("r", self.r), ("alpha", self.alpha)):
            if not 0.0 <= value <= 1.0:
                raise VerificationError(
                    f"case {self.name}: {label} must be in [0, 1], got {value}"
                )

    # ------------------------------------------------------------------
    @property
    def total_votes(self) -> int:
        """One vote per real site; the bus hub carries zero."""
        return self.n_sites

    def topology(self) -> Topology:
        if self.family == "ring":
            return ring(self.n_sites)
        if self.family == "complete":
            return fully_connected(self.n_sites)
        return bus(self.n_sites)

    def site_reliabilities(self) -> np.ndarray:
        """Per-site stationary reliabilities for enumeration/Monte-Carlo.

        The bus hub site *is* the bus: its reliability is ``r``.
        """
        if self.family == "bus":
            return np.concatenate([np.full(self.n_sites, self.p), [self.r]])
        return np.full(self.n_sites, self.p)

    def link_reliabilities(self) -> np.ndarray:
        """Per-link reliabilities; bus spokes are perfect by construction."""
        topology = self.topology()
        if self.family == "bus":
            return np.ones(topology.n_links)
        return np.full(topology.n_links, self.r)

    # ------------------------------------------------------------------
    def simulation_config(self) -> SimulationConfig:
        """The stationary, variance-reduced config the sim pairs run on."""
        topology = self.topology()
        n_components = topology.n_sites + topology.n_links
        site_rel = self.site_reliabilities()
        link_rel = self.link_reliabilities()
        def repair_times(rel: np.ndarray) -> np.ndarray:
            # Vectorized reliability_to_repair_time; perfect components
            # get a placeholder (they are masked out of the fallible set,
            # but config validation still demands a positive mean).
            safe = np.clip(rel, 1e-12, 1.0 - 1e-12)
            out = _SIM_MTTF * (1.0 - safe) / safe
            return np.where(rel >= 1.0, 1.0, out)

        mttf = np.full(n_components, _SIM_MTTF)
        mttr = np.concatenate([repair_times(site_rel), repair_times(link_rel)])
        perfect_links = link_rel >= 1.0
        fallible_links = None if not perfect_links.all() else np.zeros(
            topology.n_links, dtype=bool
        )
        workload = AccessWorkload.uniform(topology.n_sites, alpha=self.alpha)
        return SimulationConfig(
            topology=topology,
            workload=workload,
            mean_time_to_failure=mttf,
            mean_time_to_repair=mttr,
            warmup_accesses=0.0,
            accesses_per_batch=self.sim_accesses,
            n_batches=self.sim_batches,
            accounting="expected",
            initial_state="stationary",
            fallible_links=fallible_links,
            seed=self.seed,
        )


def _quick_cases() -> Tuple[VerificationCase, ...]:
    return (
        # Sized so exhaustive enumeration stays ~2^15 states: the quick
        # profile is a per-PR gate and must run in seconds.
        VerificationCase(
            name="ring-7",
            family="ring",
            n_sites=7,
            p=0.90,
            r=0.85,
            alpha=0.6,
            read_quorums=(1, 2, 3),
            sim_read_quorum=2,
        ),
        VerificationCase(
            name="complete-5",
            family="complete",
            n_sites=5,
            p=0.85,
            r=0.80,
            alpha=0.4,
            read_quorums=(1, 2),
            sim_read_quorum=2,
        ),
        VerificationCase(
            name="bus-7",
            family="bus",
            n_sites=7,
            p=0.90,
            r=0.75,
            alpha=0.5,
            read_quorums=(1, 2, 3),
        ),
    )


def _full_cases() -> Tuple[VerificationCase, ...]:
    return _quick_cases() + (
        # Beyond the enumeration cap: Monte-Carlo and the simulator carry
        # the cross-check alone.
        VerificationCase(
            name="ring-15",
            family="ring",
            n_sites=15,
            p=0.96,
            r=0.96,
            alpha=0.75,
            read_quorums=(1, 2, 4, 7),
            sim_read_quorum=2,
            mc_samples=10_000,
            sim_accesses=8_000.0,
        ),
        # Bus with a live simulation: heterogeneous per-component failure
        # rates and the zero-vote hub exercise the vector config path.
        VerificationCase(
            name="bus-8-sim",
            family="bus",
            n_sites=8,
            p=0.90,
            r=0.80,
            alpha=0.5,
            read_quorums=(1, 2, 4),
            sim_read_quorum=2,
            mc_samples=8_000,
            sim_accesses=8_000.0,
        ),
        # Paper-parameter ring at full size (closed form vs Monte-Carlo).
        VerificationCase(
            name="ring-101-paper",
            family="ring",
            n_sites=101,
            p=0.96,
            r=0.96,
            alpha=0.5,
            read_quorums=(1, 2, 25, 50),
            mc_samples=6_000,
        ),
    )


PROFILES = ("quick", "full")


def profile_cases(profile: str) -> Tuple[VerificationCase, ...]:
    """The case list for a named profile."""
    if profile == "quick":
        return _quick_cases()
    if profile == "full":
        return _full_cases()
    raise VerificationError(
        f"unknown verification profile {profile!r}; choose from {PROFILES}"
    )
