"""Metamorphic relations: identities the availability algebra must obey.

Differential pairs catch engines disagreeing with *each other*; the
relations here catch the whole stack agreeing on a wrong answer. Each is
an executable property derived from the paper's model, evaluated on the
closed-form engine at a case's parameter point:

- **reliability-monotonicity-sites / -links** — making any component more
  reliable can only help: ``A(alpha, q_r)`` is non-decreasing in the
  site reliability ``p`` and the link reliability ``r``, pointwise over
  the whole feasible curve.
- **alpha-symmetry** — with symmetric access densities (``r(v) = w(v)``,
  the paper's uniform-access setting), swapping the roles of reads and
  writes is a no-op: ``A(alpha, q_r) = A(1 - alpha, T - q_r + 1)``
  exactly, for every ``q_r`` in ``1..T``.
- **alpha-extremes** — the model degenerates correctly at the ends of
  the access mix: at ``alpha = 1`` the objective is ``R(q_r)`` alone and
  the optimum is the ROWA assignment ``q_r = 1`` (hence ``q_w = T``,
  write-all); at ``alpha = 0`` it is ``W(T - q_r + 1)`` alone and the
  optimum sits at the write-optimal end ``q_r = floor(T/2)``.
- **relabeling-invariance** — site identity is bookkeeping: permuting
  site labels (with heterogeneous per-site reliabilities riding along)
  permutes the enumeration density matrix rows and leaves the optimizer
  output exactly unchanged.
- **shard-alpha-monotonicity / -permutation-invariance /
  -class-duplication** — the per-shard optimizer
  (:mod:`repro.sharding.optimizer`) obeys the grouping algebra: raising
  an item's read fraction never raises its optimal ``q_r`` (decreasing
  differences of the paper objective), permuting item ids permutes the
  plan exactly, and duplicating an item class moves nothing.

Every relation returns :class:`~repro.verification.tolerance.CheckResult`
rows where ``value_a`` is the worst observed violation and the tolerance
is the float round-off floor — these are identities, not estimates.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analytic import closed_form_density
from repro.analytic.enumeration import enumerate_density_matrix
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import optimal_read_quorum
from repro.topology.model import Topology
from repro.verification.cases import VerificationCase
from repro.engines import inject_bug_model
from repro.verification.tolerance import EXACT_FLOOR, CheckResult

__all__ = [
    "METAMORPHIC_RELATIONS",
    "run_relation",
    "run_metamorphic",
]

#: Perturbation applied to reliabilities by the monotonicity relations.
_DELTA = 0.03

#: Size caps for the relabeling relation's enumeration instance — it is
#: an oracle check, so it runs on a shrunk copy of large cases. The
#: complete family is capped harder: its link count grows quadratically
#: and enumeration is exponential in sites + links.
_RELABEL_MAX_SITES = {"ring": 6, "bus": 6, "complete": 4}


def _violation_result(
    relation: str,
    case: str,
    metric: str,
    violation: float,
    detail: str = "",
    tolerance: float = EXACT_FLOOR,
) -> CheckResult:
    """A CheckResult for an identity: value_a is the worst violation."""
    violation = float(violation)
    return CheckResult(
        check=relation,
        case=case,
        metric=metric,
        value_a=violation,
        value_b=0.0,
        tolerance=tolerance,
        passed=violation <= tolerance,
        diff=violation,
        drift=violation / tolerance if tolerance > 0 else (
            0.0 if violation == 0.0 else float("inf")
        ),
        detail=detail,
    )


def _build_model(
    case: VerificationCase, p: float, r: float, bug: Optional[str]
) -> AvailabilityModel:
    row = closed_form_density(case.family, case.n_sites, p, r)
    return inject_bug_model(AvailabilityModel(row, row), bug)


# ----------------------------------------------------------------------
# Relations
# ----------------------------------------------------------------------

def _monotonicity(
    case: VerificationCase, bug: Optional[str], component: str
) -> List[CheckResult]:
    """A(alpha, q) must not drop when p (or r) increases."""
    base_p, base_r = case.p, case.r
    if component == "sites":
        grid = [max(base_p - _DELTA, 0.0), base_p, min(base_p + _DELTA, 1.0)]
        models = [_build_model(case, v, base_r, bug) for v in grid]
    else:
        grid = [max(base_r - _DELTA, 0.0), base_r, min(base_r + _DELTA, 1.0)]
        models = [_build_model(case, base_p, v, bug) for v in grid]
    quorums = models[0].feasible_read_quorums()
    worst = 0.0
    worst_at = ""
    for alpha in (0.0, case.alpha, 1.0):
        curves = [
            np.asarray(m.availability(alpha, quorums)) for m in models
        ]
        for lo, hi, v_lo, v_hi in zip(curves, curves[1:], grid, grid[1:]):
            drop = float((lo - hi).max())
            if drop > worst:
                worst = drop
                q_at = int(quorums[int((lo - hi).argmax())])
                worst_at = (
                    f"A(alpha={alpha:g}, q={q_at}) dropped by {drop:.3g} "
                    f"when {component[:-1]} reliability rose {v_lo:g}->{v_hi:g}"
                )
    return [
        _violation_result(
            f"reliability-monotonicity-{component}",
            case.name,
            "max availability drop under reliability increase",
            worst,
            detail=worst_at,
        )
    ]


def _alpha_symmetry(case: VerificationCase, bug: Optional[str]) -> List[CheckResult]:
    """A(alpha, q_r) == A(1 - alpha, T - q_r + 1) for symmetric densities."""
    model = _build_model(case, case.p, case.r, bug)
    T = model.total_votes
    quorums = np.arange(1, T + 1)
    worst = 0.0
    for alpha in (case.alpha, 0.25):
        forward = np.asarray(model.availability(alpha, quorums))
        mirrored = np.asarray(model.availability(1.0 - alpha, T - quorums + 1))
        worst = max(worst, float(np.abs(forward - mirrored).max()))
    return [
        _violation_result(
            "alpha-symmetry",
            case.name,
            "max |A(a, q) - A(1-a, T-q+1)|",
            worst,
            detail=f"read/write swap identity over q_r in 1..{T}",
        )
    ]


def _alpha_extremes(case: VerificationCase, bug: Optional[str]) -> List[CheckResult]:
    """alpha=1 degenerates to ROWA; alpha=0 to the write-optimal end."""
    model = _build_model(case, case.p, case.r, bug)
    quorums = model.feasible_read_quorums()
    read_only = np.abs(
        np.asarray(model.availability(1.0, quorums))
        - np.asarray(model.read_availability(quorums))
    ).max()
    write_only = np.abs(
        np.asarray(model.availability(0.0, quorums))
        - np.asarray(model.write_availability_at(quorums))
    ).max()
    rowa = optimal_read_quorum(model, 1.0)
    rowa_gap = abs(rowa.availability - float(model.read_availability(1)))
    rowa_gap = max(rowa_gap, float(rowa.read_quorum != 1))
    write_opt = optimal_read_quorum(model, 0.0)
    write_gap = abs(
        write_opt.availability
        - float(model.write_availability_at(model.max_read_quorum))
    )
    return [
        _violation_result(
            "alpha-extremes",
            case.name,
            "max |A(1,q) - R(q)| over feasible q",
            float(read_only),
            detail="pure-read mix must ignore the write density",
        ),
        _violation_result(
            "alpha-extremes",
            case.name,
            "max |A(0,q) - W(T-q+1)| over feasible q",
            float(write_only),
            detail="pure-write mix must ignore the read density",
        ),
        _violation_result(
            "alpha-extremes",
            case.name,
            "ROWA degeneration at alpha=1",
            float(rowa_gap),
            detail=f"optimum q_r={rowa.read_quorum} (want 1, i.e. q_w=T write-all), "
            f"A*={rowa.availability:.6g} (want R(1))",
        ),
        _violation_result(
            "alpha-extremes",
            case.name,
            "write-optimal degeneration at alpha=0",
            float(write_gap),
            detail=f"A* must equal W at the smallest feasible write quorum "
            f"(q_r={model.max_read_quorum})",
        ),
    ]


def _permuted_topology(
    topology: Topology, perm: np.ndarray
) -> Topology:
    links = [(int(perm[l.a]), int(perm[l.b])) for l in topology.links]
    votes = np.empty(topology.n_sites, dtype=np.int64)
    votes[perm] = topology.votes
    return Topology(topology.n_sites, links, votes=votes)


def _relabeling(case: VerificationCase, bug: Optional[str]) -> List[CheckResult]:
    """Enumeration + optimizer must be invariant under site relabeling.

    Runs on a shrunk copy of the case (enumeration is the oracle here and
    must stay cheap) with a heterogeneous site-reliability ramp — the
    regime where a hidden dependence on site order would actually bite.
    The bus hub, when present, keeps its label: it is infrastructure, not
    a replica site.
    """
    n = min(case.n_sites, _RELABEL_MAX_SITES[case.family])
    small = VerificationCase(
        name=case.name,
        family=case.family,
        n_sites=n,
        p=case.p,
        r=case.r,
        alpha=case.alpha,
        read_quorums=(1,),
        seed=case.seed,
    )
    topology = small.topology()
    site_rel = small.site_reliabilities().copy()
    # Heterogeneous ramp over the real (voting) sites only.
    ramp = np.linspace(-0.06, 0.06, n)
    site_rel[:n] = np.clip(site_rel[:n] + ramp, 0.05, 0.995)
    link_rel = small.link_reliabilities()

    rng = np.random.default_rng(small.seed + 17)
    perm = np.arange(topology.n_sites)
    perm[:n] = rng.permutation(n)  # hub (if any) keeps its label

    permuted = _permuted_topology(topology, perm)
    site_rel_perm = np.empty_like(site_rel)
    site_rel_perm[perm] = site_rel
    # Per-link reliabilities follow the links they label.
    link_rel_perm = np.empty(permuted.n_links)
    for link in topology.links:
        source = topology.link_id(link.a, link.b)
        target = permuted.link_id(int(perm[link.a]), int(perm[link.b]))
        link_rel_perm[target] = link_rel[source]

    matrix = enumerate_density_matrix(topology, site_rel, link_rel)
    matrix_perm = enumerate_density_matrix(permuted, site_rel_perm, link_rel_perm)
    row_gap = float(np.abs(matrix_perm[perm] - matrix).max())

    model = inject_bug_model(
        AvailabilityModel.from_density_matrix(matrix[:n]), bug
    )
    model_perm = inject_bug_model(
        AvailabilityModel.from_density_matrix(matrix_perm[perm][:n]), bug
    )
    best = optimal_read_quorum(model, small.alpha)
    best_perm = optimal_read_quorum(model_perm, small.alpha)
    opt_gap = max(
        abs(best.availability - best_perm.availability),
        float(best.read_quorum != best_perm.read_quorum),
    )
    return [
        _violation_result(
            "relabeling-invariance",
            case.name,
            "max density-matrix row gap under permutation",
            row_gap,
            detail=f"{n}-site {case.family} with heterogeneous p, seed {small.seed}",
        ),
        _violation_result(
            "relabeling-invariance",
            case.name,
            "optimizer output gap under permutation",
            opt_gap,
            detail=f"q*={best.read_quorum} vs {best_perm.read_quorum}, "
            f"A*={best.availability:.6g} vs {best_perm.availability:.6g}",
        ),
    ]


# ----------------------------------------------------------------------
# Sharded-optimizer relations (the per-class grouping of repro.sharding)
# ----------------------------------------------------------------------

def _shard_plan(case: VerificationCase, alphas: np.ndarray, bug: Optional[str]):
    """Per-shard optimization on the case's closed-form density.

    The density row short-circuits the per-group density computation, so
    these relations are deterministic, cheap (microseconds), and carry
    the injected bug through ``model_transform`` exactly like the
    single-item relations above.
    """
    from repro.sharding.optimizer import optimize_shards

    row = closed_form_density(case.family, case.n_sites, case.p, case.r)
    plan = optimize_shards(
        case.topology(),
        alphas,
        density=row,
        model_transform=lambda m: inject_bug_model(m, bug),
    )
    return plan, inject_bug_model(AvailabilityModel(row, row), bug)


def _shard_alpha_monotonicity(
    case: VerificationCase, bug: Optional[str]
) -> List[CheckResult]:
    """Raising an item's read fraction never raises its optimal ``q_r``.

    ``A(alpha, q) = alpha R(q) + (1-alpha) W(T-q+1)`` has decreasing
    differences in ``(q, alpha)`` — ``R`` falls and ``W(T-q+1)`` rises
    with ``q`` — so the argmax moves weakly toward smaller read quorums
    as ``alpha`` grows. Exact float ties may still flip the integer
    argmax, so the violation is measured in availability units: how much
    the model claims a *larger* quorum strictly beats the hotter item's
    smaller one (zero up to round-off on healthy code).
    """
    alphas = np.unique(np.clip([0.05, 0.25, case.alpha, 0.75, 0.95], 0.0, 1.0))
    plan, model = _shard_plan(case, alphas, bug)
    q = plan.read_quorums
    worst = 0.0
    worst_at = "optimized q_r non-increasing over sorted item alphas"
    for i in range(len(alphas) - 1):
        if q[i + 1] > q[i]:
            gain = float(
                np.asarray(model.availability(float(alphas[i + 1]), int(q[i + 1])))
                - np.asarray(model.availability(float(alphas[i + 1]), int(q[i])))
            )
            if gain > worst:
                worst = gain
                worst_at = (
                    f"q_r rose {int(q[i])}->{int(q[i + 1])} as alpha rose "
                    f"{alphas[i]:g}->{alphas[i + 1]:g}"
                )
    return [
        _violation_result(
            "shard-alpha-monotonicity",
            case.name,
            "objective gain from a q_r increase under rising alpha",
            worst,
            detail=worst_at,
        )
    ]


def _shard_permutation(
    case: VerificationCase, bug: Optional[str]
) -> List[CheckResult]:
    """Permuting item ids permutes the per-shard optimization results.

    All groups share one seed (common random numbers), so the plan for a
    shuffled item vector must be exactly the shuffled plan — quorums and
    availabilities alike.
    """
    alphas = np.clip(np.asarray([0.2, 0.5, 0.8, case.alpha, 0.5]), 0.0, 1.0)
    rng = np.random.default_rng(case.seed + 23)
    perm = rng.permutation(alphas.shape[0])
    plan, _ = _shard_plan(case, alphas, bug)
    plan_perm, _ = _shard_plan(case, alphas[perm], bug)
    gap = max(
        float(np.abs(plan_perm.read_quorums - plan.read_quorums[perm]).max()),
        float(
            np.abs(plan_perm.availabilities - plan.availabilities[perm]).max()
        ),
    )
    return [
        _violation_result(
            "shard-permutation-invariance",
            case.name,
            "max per-item assignment gap under id permutation",
            gap,
            detail=f"{alphas.shape[0]} items shuffled with seed {case.seed + 23}",
        )
    ]


def _shard_duplication(
    case: VerificationCase, bug: Optional[str]
) -> List[CheckResult]:
    """Duplicating an item class changes no per-class assignment.

    The optimizer runs once per ``(alpha, votes)`` class; adding more
    members to an existing class must neither re-run anything nor move
    any item's ``(q_r*, A*)``.
    """
    alphas = np.clip(np.asarray([0.2, 0.5, 0.8, case.alpha]), 0.0, 1.0)
    n = alphas.shape[0]
    extended = np.concatenate([alphas, [alphas[1], alphas[3]]])
    base, _ = _shard_plan(case, alphas, bug)
    ext, _ = _shard_plan(case, extended, bug)
    gap = max(
        float(np.abs(ext.read_quorums[:n] - base.read_quorums).max()),
        float(np.abs(ext.availabilities[:n] - base.availabilities).max()),
        float(ext.read_quorums[n] != ext.read_quorums[1]),
        float(ext.read_quorums[n + 1] != ext.read_quorums[3]),
        float(ext.optimizations_run != base.optimizations_run),
    )
    return [
        _violation_result(
            "shard-class-duplication",
            case.name,
            "max assignment gap after duplicating item classes",
            gap,
            detail=f"{base.optimizations_run} classes before and after "
            f"duplication ({ext.optimizations_run} after)",
        )
    ]


_RELATIONS: Dict[str, Callable[[VerificationCase, Optional[str]], List[CheckResult]]] = {
    "reliability-monotonicity-sites": lambda c, b: _monotonicity(c, b, "sites"),
    "reliability-monotonicity-links": lambda c, b: _monotonicity(c, b, "links"),
    "alpha-symmetry": _alpha_symmetry,
    "alpha-extremes": _alpha_extremes,
    "relabeling-invariance": _relabeling,
    "shard-alpha-monotonicity": _shard_alpha_monotonicity,
    "shard-permutation-invariance": _shard_permutation,
    "shard-class-duplication": _shard_duplication,
}

METAMORPHIC_RELATIONS: Tuple[str, ...] = tuple(_RELATIONS)


def run_relation(
    name: str, case: VerificationCase, bug: Optional[str] = None
) -> List[CheckResult]:
    """Evaluate one named relation on one case."""
    if name not in _RELATIONS:
        from repro.errors import VerificationError

        raise VerificationError(
            f"unknown metamorphic relation {name!r}; known: "
            f"{list(METAMORPHIC_RELATIONS)}"
        )
    return _RELATIONS[name](case, bug)


def run_metamorphic(
    case: VerificationCase, bug: Optional[str] = None
) -> List[CheckResult]:
    """Evaluate every relation on one case."""
    results: List[CheckResult] = []
    for name in METAMORPHIC_RELATIONS:
        results.extend(run_relation(name, case, bug))
    return results
