"""Confidence-interval-aware tolerances for differential checks.

The engines being cross-checked deliver estimates of very different
precision: closed forms and state enumeration are exact to float
round-off, the Monte-Carlo estimator carries a ``O(1/sqrt(n))`` binomial
error, and the simulator's batch means carry a Student-t interval.
Comparing them with one ad-hoc ``approx`` constant either masks real
divergences (constant too loose for the exact pair) or flakes (constant
too tight for the statistical pair).

Instead, every engine reports an :class:`Estimate` = value + 95 % CI
half-width (0 for exact engines), and :func:`compare` derives the
acceptance band from the *pair*:

    tolerance = slack * sqrt(hw_a^2 + hw_b^2) + abs_floor

The quadrature term is the half-width of the CI on the *difference* of
two independent estimates; ``slack`` widens the 1.96-sigma band to
roughly five sigma so that a passing check is overwhelmingly likely to
keep passing under reseeding, and ``abs_floor`` absorbs float round-off
(and, for the simulator, the residual bias of finite warm-up). The
resulting :class:`CheckResult` carries the drift as a fraction of
tolerance, so regression reports can say "metric X moved to 0.7 of its
band" rather than a bare pass/fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Optional

from repro.errors import VerificationError

__all__ = [
    "Estimate",
    "CheckResult",
    "binomial_half_width",
    "students_t_estimate",
    "compare",
    "DEFAULT_SLACK",
    "EXACT_FLOOR",
]

#: Widen the 1.96-sigma difference CI to ~5 sigma: statistical checks
#: that pass keep passing under reseeding with overwhelming probability.
DEFAULT_SLACK = 2.5

#: Absolute floor for exact-vs-exact comparisons (float accumulation
#: across ~2^24 enumeration terms stays far below this).
EXACT_FLOOR = 1e-9

#: 95 % two-sided normal quantile.
_Z95 = 1.959963984540054


def binomial_half_width(p_hat: float, n: float) -> float:
    """95 % normal-approximation half-width of a mean of ``n`` draws in [0, 1].

    Conservative for availability estimates that average a bounded
    per-sample statistic (each Monte-Carlo state contributes a value in
    ``[0, 1]``, whose variance is at most ``p(1-p) <= 1/4``). A small
    additive continuity floor keeps the width honest near 0 and 1, where
    the normal approximation degenerates.
    """
    if n <= 0:
        raise VerificationError(f"sample size must be positive, got {n}")
    p = min(max(float(p_hat), 0.0), 1.0)
    return _Z95 * sqrt(p * (1.0 - p) / n) + 1.0 / n


@dataclass(frozen=True)
class Estimate:
    """One engine's value for one metric, with its uncertainty.

    ``half_width`` is the 95 % CI half-width; 0 marks an exact value.
    ``n`` records the sample/batch count behind a statistical estimate
    (reporting only — the half-width already accounts for it).
    """

    value: float
    half_width: float = 0.0
    n: Optional[float] = None
    source: str = ""

    def __post_init__(self) -> None:
        if self.half_width < 0:
            raise VerificationError(
                f"half_width must be non-negative, got {self.half_width}"
            )

    @property
    def exact(self) -> bool:
        return self.half_width == 0.0


def students_t_estimate(stats, source: str = "") -> Estimate:
    """Adapt a :class:`~repro.simulation.stats.BatchStatistics` to an Estimate.

    With fewer than two batches the t half-width is undefined (reported
    as 0); callers comparing such runs should rely on the comparison's
    absolute floor.
    """
    return Estimate(
        value=float(stats.mean),
        half_width=float(stats.half_width),
        n=float(stats.n_batches),
        source=source or stats.name,
    )


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one differential check on one metric."""

    #: Engine pair or relation name, e.g. ``"closed-form|monte-carlo"``.
    check: str
    #: Verification case the check ran on, e.g. ``"ring-9"``.
    case: str
    #: Metric compared, e.g. ``"A(alpha=0.6, q_r=2)"``.
    metric: str
    value_a: float
    value_b: float
    tolerance: float
    passed: bool
    #: |value_a - value_b|.
    diff: float
    #: diff / tolerance — the per-metric drift figure regression reports
    #: track (inf when tolerance is 0 and the values differ).
    drift: float
    detail: str = ""

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.case} :: {self.check} :: {self.metric}: "
            f"{self.value_a:.6g} vs {self.value_b:.6g} "
            f"(diff {self.diff:.3g}, tol {self.tolerance:.3g}, "
            f"drift {self.drift:.2f})"
        )


def compare(
    check: str,
    case: str,
    metric: str,
    a: Estimate,
    b: Estimate,
    abs_floor: float = EXACT_FLOOR,
    slack: float = DEFAULT_SLACK,
    detail: str = "",
) -> CheckResult:
    """Build the CI-aware verdict for one metric across two engines.

    ``abs_floor`` may be raised per pair (e.g. the simulator carries a
    residual model-vs-measurement floor beyond its batch CI); it may also
    be 0 together with two exact estimates to demand bitwise equality
    (the simulation-vs-parallel determinism contract).
    """
    if abs_floor < 0 or slack < 0:
        raise VerificationError("abs_floor and slack must be non-negative")
    diff = abs(float(a.value) - float(b.value))
    tolerance = slack * sqrt(a.half_width**2 + b.half_width**2) + abs_floor
    if tolerance > 0:
        drift = diff / tolerance
    else:
        drift = 0.0 if diff == 0.0 else float("inf")
    return CheckResult(
        check=check,
        case=case,
        metric=metric,
        value_a=float(a.value),
        value_b=float(b.value),
        tolerance=tolerance,
        passed=diff <= tolerance,
        diff=diff,
        drift=drift,
        detail=detail,
    )
