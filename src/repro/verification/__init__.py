"""Differential verification: cross-engine oracles, metamorphic
properties, and a golden regression corpus.

The repo computes the paper's availability quantities along several
independent paths (closed forms, exact enumeration, static Monte-Carlo
and its variance-reduced variants, discrete-event simulation, parallel
fan-out) plus protocol- and telemetry-level surfaces — all registered in
:mod:`repro.engines`. This package turns that redundancy into an
executable oracle:

- :mod:`~repro.verification.differential` crosses every applicable
  engine pair with confidence-interval-aware tolerances
  (:mod:`~repro.verification.tolerance`).
- :mod:`~repro.verification.metamorphic` checks identities the algebra
  must obey regardless of engine (monotonicity, read/write symmetry,
  access-mix extremes, relabeling invariance).
- :mod:`~repro.verification.golden` locks reference results (paper-figure
  values and seeded engine outputs) in the repository and reports
  per-metric drift.

Entry point: ``python -m repro verify`` (exit 0 = all checks pass,
1 = divergence, 2 = configuration error).

Exports resolve lazily (PEP 562) so leaf submodules — ``cases`` and
``tolerance``, which :mod:`repro.engines.adapters` imports — can load
without dragging in the engine-dependent runners and creating an import
cycle.
"""

from importlib import import_module
from typing import Any

#: Exported name -> defining submodule.
_EXPORTS = {
    "PROFILES": "cases",
    "VerificationCase": "cases",
    "profile_cases": "cases",
    "ENGINE_PAIRS": "differential",
    "VerificationReport": "differential",
    "run_case": "differential",
    "run_profile": "differential",
    "KNOWN_BUGS": "engines",
    "REGENERATE_HINT": "golden",
    "check_corpus": "golden",
    "corpus_path": "golden",
    "generate_corpus": "golden",
    "load_corpus": "golden",
    "write_corpus": "golden",
    "METAMORPHIC_RELATIONS": "metamorphic",
    "run_metamorphic": "metamorphic",
    "CheckResult": "tolerance",
    "Estimate": "tolerance",
    "binomial_half_width": "tolerance",
    "compare": "tolerance",
    "students_t_estimate": "tolerance",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        submodule = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(f"{__name__}.{submodule}"), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
