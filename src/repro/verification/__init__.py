"""Differential verification: cross-engine oracles, metamorphic
properties, and a golden regression corpus.

The repo computes the paper's availability quantities along five
independent paths (closed forms, exact enumeration, static Monte-Carlo,
discrete-event simulation, parallel fan-out) plus protocol- and
telemetry-level surfaces. This package turns that redundancy into an
executable oracle:

- :mod:`~repro.verification.differential` crosses every applicable
  engine pair with confidence-interval-aware tolerances
  (:mod:`~repro.verification.tolerance`).
- :mod:`~repro.verification.metamorphic` checks identities the algebra
  must obey regardless of engine (monotonicity, read/write symmetry,
  access-mix extremes, relabeling invariance).
- :mod:`~repro.verification.golden` locks reference results (paper-figure
  values and seeded engine outputs) in the repository and reports
  per-metric drift.

Entry point: ``python -m repro verify`` (exit 0 = all checks pass,
1 = divergence, 2 = configuration error).
"""

from repro.verification.cases import PROFILES, VerificationCase, profile_cases
from repro.verification.differential import (
    ENGINE_PAIRS,
    VerificationReport,
    run_case,
    run_profile,
)
from repro.verification.engines import KNOWN_BUGS
from repro.verification.golden import (
    REGENERATE_HINT,
    check_corpus,
    corpus_path,
    generate_corpus,
    load_corpus,
    write_corpus,
)
from repro.verification.metamorphic import METAMORPHIC_RELATIONS, run_metamorphic
from repro.verification.tolerance import (
    CheckResult,
    Estimate,
    binomial_half_width,
    compare,
    students_t_estimate,
)

__all__ = [
    "PROFILES",
    "VerificationCase",
    "profile_cases",
    "ENGINE_PAIRS",
    "VerificationReport",
    "run_case",
    "run_profile",
    "KNOWN_BUGS",
    "REGENERATE_HINT",
    "check_corpus",
    "corpus_path",
    "generate_corpus",
    "load_corpus",
    "write_corpus",
    "METAMORPHIC_RELATIONS",
    "run_metamorphic",
    "CheckResult",
    "Estimate",
    "binomial_half_width",
    "compare",
    "students_t_estimate",
]
