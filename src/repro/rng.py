"""Seedable random-number-stream helpers.

Every stochastic component in the library (failure processes, access
workloads, Monte-Carlo density estimators) takes either an integer seed or a
:class:`numpy.random.Generator`. These helpers normalize that convention and
provide *independent substreams* so that, e.g., the failure process of one
batch cannot perturb the access stream of another — a requirement for the
paper's batch-means confidence intervals to be honest.

The substream mechanism uses :class:`numpy.random.SeedSequence` spawning,
which guarantees statistical independence between children regardless of how
many streams are drawn.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

__all__ = ["RandomState", "as_generator", "spawn", "spawn_many", "stream_for"]

#: Anything accepted where a source of randomness is required.
RandomState = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a nondeterministically-seeded generator; an ``int`` or
    :class:`~numpy.random.SeedSequence` yields a deterministic one; an
    existing generator is returned unchanged (not copied) so callers can
    share a stream on purpose.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from ``seed``.

    When ``seed`` is already a generator, children are derived from its
    internal bit generator via ``spawn`` (numpy >= 1.25) or by drawing seeds,
    preserving determinism of the parent stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Drawing child seeds from the parent stream keeps the whole tree
        # reproducible from the parent's original seed.
        child_seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def spawn_many(seed: RandomState, labels: Sequence[str]) -> dict[str, np.random.Generator]:
    """Spawn one independent generator per label, e.g. ``{"failures": ...}``."""
    gens = spawn(seed, len(labels))
    return dict(zip(labels, gens))


def stream_for(seed: RandomState, *indices: int) -> np.random.Generator:
    """Deterministically derive a generator for a coordinate tuple.

    Used by batch runners: ``stream_for(seed, batch_index)`` gives each batch
    an independent stream that does not depend on how many batches ran
    before it, so adding batches never changes earlier results.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "stream_for requires a reproducible seed (int/SeedSequence/None), "
            "not an already-instantiated Generator"
        )
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    child = np.random.SeedSequence(entropy=seq.entropy, spawn_key=tuple(indices))
    return np.random.default_rng(child)


def iter_streams(seed: RandomState) -> Iterator[np.random.Generator]:
    """Yield an unbounded sequence of independent generators."""
    index = 0
    while True:
        yield stream_for(seed, index)
        index += 1
