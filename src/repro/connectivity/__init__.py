"""Connectivity substrate: component computation on partially-failed networks.

Site and link failures partition the network into *components* — maximal
sets of up sites that can reach each other over up links. Everything the
quorum machinery needs from the network reduces to one vector: for each
site, the total number of votes in its current component (a down site is
"in a component of size zero", matching the paper's access accounting).

Two interchangeable backends are provided: a pure-Python union-find
(reference implementation, easy to audit) and a vectorized
scipy.sparse.csgraph backend (the simulator's hot path).
"""

from repro.connectivity.components import (
    batched_component_entries,
    batched_component_labels,
    batched_component_vote_totals,
    batched_vote_totals,
    component_labels,
    component_members,
    component_vote_totals,
    components_unionfind,
    gather_groups,
    votes_in_component_of,
)
from repro.connectivity.dynamic import ComponentTracker, NetworkState

__all__ = [
    "ComponentTracker",
    "NetworkState",
    "batched_component_entries",
    "batched_component_labels",
    "batched_component_vote_totals",
    "batched_vote_totals",
    "component_labels",
    "component_members",
    "component_vote_totals",
    "components_unionfind",
    "gather_groups",
    "votes_in_component_of",
]
