"""Mutable network state + lazy component tracking for the simulator.

The discrete-event simulator flips one site or link per failure/recovery
event and then needs, possibly many times before the next flip, the vector
of per-site component vote totals. :class:`ComponentTracker` caches that
vector and invalidates it on mutation, so the (vectorized, but still
O(sites + links)) component recomputation runs exactly once per network
change regardless of how many accesses land in the interval.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.connectivity.components import (
    component_labels,
    component_vote_totals,
)
from repro.errors import TopologyError
from repro.topology.model import Topology

__all__ = ["NetworkState", "ComponentTracker"]


class NetworkState:
    """Boolean up/down state for every site and link of a topology."""

    __slots__ = ("topology", "site_up", "link_up", "_version")

    def __init__(
        self,
        topology: Topology,
        site_up: Optional[np.ndarray] = None,
        link_up: Optional[np.ndarray] = None,
    ) -> None:
        self.topology = topology
        if site_up is None:
            self.site_up = np.ones(topology.n_sites, dtype=bool)
        else:
            self.site_up = np.array(site_up, dtype=bool)
            if self.site_up.shape != (topology.n_sites,):
                raise TopologyError(
                    f"site_up must have shape ({topology.n_sites},), got {self.site_up.shape}"
                )
        if link_up is None:
            self.link_up = np.ones(topology.n_links, dtype=bool)
        else:
            self.link_up = np.array(link_up, dtype=bool)
            if self.link_up.shape != (topology.n_links,):
                raise TopologyError(
                    f"link_up must have shape ({topology.n_links},), got {self.link_up.shape}"
                )
        #: Monotone counter bumped on every mutation; lets caches detect staleness.
        self._version = 0

    @property
    def version(self) -> int:
        return self._version

    def set_site(self, site: int, up: bool) -> None:
        """Set a site's state; no-op mutations still count as changes."""
        if not 0 <= site < self.topology.n_sites:
            raise TopologyError(f"unknown site {site}")
        self.site_up[site] = up
        self._version += 1

    def set_link(self, link_id: int, up: bool) -> None:
        """Set a link's state by link id."""
        if not 0 <= link_id < self.topology.n_links:
            raise TopologyError(f"unknown link id {link_id}")
        self.link_up[link_id] = up
        self._version += 1

    def fail_site(self, site: int) -> None:
        self.set_site(site, False)

    def repair_site(self, site: int) -> None:
        self.set_site(site, True)

    def fail_link(self, link_id: int) -> None:
        self.set_link(link_id, False)

    def repair_link(self, link_id: int) -> None:
        self.set_link(link_id, True)

    def all_up(self) -> bool:
        """True iff every site and every link is operational."""
        return bool(self.site_up.all() and self.link_up.all())

    def n_up_sites(self) -> int:
        return int(self.site_up.sum())

    def copy(self) -> "NetworkState":
        return NetworkState(self.topology, self.site_up, self.link_up)


class ComponentTracker:
    """Caches component labels and vote totals for a :class:`NetworkState`.

    All getters recompute lazily when the underlying state's version has
    moved; between network changes they are O(1).

    ``votes`` overrides the topology's vote vector — several trackers
    with different vote vectors (one per replicated item) can share one
    network state, which is how the multi-item database gives each item
    its own quorum space over a single failure process.
    """

    __slots__ = ("state", "votes", "_cached_version", "_labels", "_vote_totals")

    def __init__(self, state: NetworkState,
                 votes: Optional[np.ndarray] = None) -> None:
        self.state = state
        if votes is None:
            self.votes = state.topology.votes
        else:
            votes = np.asarray(votes, dtype=np.int64)
            if votes.shape != (state.topology.n_sites,):
                raise TopologyError(
                    f"votes must have shape ({state.topology.n_sites},), "
                    f"got {votes.shape}"
                )
            self.votes = votes
        self._cached_version = -1
        self._labels: Optional[np.ndarray] = None
        self._vote_totals: Optional[np.ndarray] = None

    def _refresh(self) -> None:
        if self._cached_version == self.state.version:
            return
        topo = self.state.topology
        self._labels = component_labels(topo, self.state.site_up, self.state.link_up)
        self._vote_totals = component_vote_totals(self._labels, self.votes)
        self._cached_version = self.state.version

    @property
    def labels(self) -> np.ndarray:
        """Component label per site (``-1`` for down sites)."""
        self._refresh()
        assert self._labels is not None
        return self._labels

    @property
    def vote_totals(self) -> np.ndarray:
        """Per-site votes of the containing component (0 for down sites)."""
        self._refresh()
        assert self._vote_totals is not None
        return self._vote_totals

    def votes_at(self, site: int) -> int:
        """Votes in the component containing ``site``."""
        return int(self.vote_totals[site])

    def max_component_votes(self) -> int:
        """Votes of the best-connected component (0 when all sites are down).

        This is the quantity SURV-style metrics care about: *some* site can
        access the item iff the largest component clears the quorum.
        """
        totals = self.vote_totals
        return int(totals.max()) if totals.size else 0

    def component_of(self, site: int) -> np.ndarray:
        """Site ids of the component containing ``site`` (empty if down)."""
        labels = self.labels
        if labels[site] < 0:
            return np.empty(0, dtype=np.int64)
        return np.nonzero(labels == labels[site])[0]

    def same_component(self, a: int, b: int) -> bool:
        """True iff up sites ``a`` and ``b`` can currently communicate."""
        labels = self.labels
        return labels[a] >= 0 and labels[a] == labels[b]
