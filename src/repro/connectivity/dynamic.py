"""Mutable network state + incremental component tracking for the simulator.

The discrete-event simulator flips one site or link per failure/recovery
event and then needs, possibly many times before the next flip, the vector
of per-site component vote totals. :class:`ComponentTracker` caches that
vector and invalidates it on mutation, so component maintenance runs
exactly once per network change regardless of how many accesses land in
the interval.

Maintenance is *incremental* (DESIGN.md §8): :class:`NetworkState` keeps a
short journal of recent single-component flips, and the tracker consumes
it instead of relabelling the whole graph:

- a **recovery** event (site or link comes up) can only *merge*
  components — the tracker unions the affected components with a
  vectorized label rewrite, never touching the edge list;
- a **failure** event can only *split* the component containing the
  failed element — the tracker relabels just that component's induced
  subgraph (a union-find over its usable links), leaving every other
  component's labels and totals untouched;
- anything else — bulk mutations, a stale journal, a tracker attached
  mid-run — falls back to the full
  :func:`~repro.connectivity.components.component_labels` recompute,
  which doubles as the correctness oracle (``audit_interval`` cross-checks
  the incremental state against it periodically).

Labels stay on the documented contract (consecutive ids ``0..k-1`` over
up sites, ``-1`` for down sites): every incremental step ends with an
O(n) vectorized compaction, which is cheap next to the O(n + m)
edge scan it replaces.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.connectivity.components import (
    DOWN_LABEL,
    component_labels,
    component_vote_totals,
)
from repro.errors import TopologyError
from repro.topology.model import Topology

__all__ = ["NetworkState", "ComponentTracker", "NetworkChange"]

#: Journal capacity: how many consecutive single-element flips a tracker
#: may lag behind the state before it must fall back to a full relabel.
#: The engine refreshes after every event, so in practice the journal
#: never holds more than a handful of entries.
JOURNAL_LIMIT = 64

#: Pending-change count above which one full relabel beats replaying the
#: journal (each replayed failure may touch a whole component; scripted
#: partitions flip dozens of links at a single instant).
INCREMENTAL_LIMIT = 4


class NetworkChange(NamedTuple):
    """One journalled mutation: the state version it produced and the flip."""

    version: int
    kind: str  # "site" | "link"
    index: int
    up: bool
    was_up: bool


class NetworkState:
    """Boolean up/down state for every site and link of a topology."""

    __slots__ = ("topology", "site_up", "link_up", "_version", "_journal")

    def __init__(
        self,
        topology: Topology,
        site_up: Optional[np.ndarray] = None,
        link_up: Optional[np.ndarray] = None,
    ) -> None:
        self.topology = topology
        if site_up is None:
            self.site_up = np.ones(topology.n_sites, dtype=bool)
        else:
            self.site_up = np.array(site_up, dtype=bool)
            if self.site_up.shape != (topology.n_sites,):
                raise TopologyError(
                    f"site_up must have shape ({topology.n_sites},), got {self.site_up.shape}"
                )
        if link_up is None:
            self.link_up = np.ones(topology.n_links, dtype=bool)
        else:
            self.link_up = np.array(link_up, dtype=bool)
            if self.link_up.shape != (topology.n_links,):
                raise TopologyError(
                    f"link_up must have shape ({topology.n_links},), got {self.link_up.shape}"
                )
        #: Monotone counter bumped on every mutation; lets caches detect staleness.
        self._version = 0
        #: Recent mutations, one entry per version bump (bounded).
        self._journal: Deque[NetworkChange] = deque(maxlen=JOURNAL_LIMIT)

    @property
    def version(self) -> int:
        return self._version

    def changes_since(self, version: int) -> Optional[List[NetworkChange]]:
        """The journalled mutations after ``version``, oldest first.

        Returns ``None`` when the journal no longer covers the gap (too
        many intervening mutations) — the caller must recompute from
        scratch.
        """
        gap = self._version - version
        if gap < 0:
            return None
        if gap == 0:
            return []
        entries = [e for e in self._journal if e.version > version]
        if len(entries) != gap:
            return None
        return entries

    def set_site(self, site: int, up: bool) -> None:
        """Set a site's state; no-op mutations still count as changes."""
        if not 0 <= site < self.topology.n_sites:
            raise TopologyError(f"unknown site {site}")
        was = bool(self.site_up[site])
        self.site_up[site] = up
        self._version += 1
        self._journal.append(NetworkChange(self._version, "site", site, bool(up), was))

    def set_link(self, link_id: int, up: bool) -> None:
        """Set a link's state by link id."""
        if not 0 <= link_id < self.topology.n_links:
            raise TopologyError(f"unknown link id {link_id}")
        was = bool(self.link_up[link_id])
        self.link_up[link_id] = up
        self._version += 1
        self._journal.append(NetworkChange(self._version, "link", link_id, bool(up), was))

    def fail_site(self, site: int) -> None:
        self.set_site(site, False)

    def repair_site(self, site: int) -> None:
        self.set_site(site, True)

    def fail_link(self, link_id: int) -> None:
        self.set_link(link_id, False)

    def repair_link(self, link_id: int) -> None:
        self.set_link(link_id, True)

    def all_up(self) -> bool:
        """True iff every site and every link is operational."""
        return bool(self.site_up.all() and self.link_up.all())

    def n_up_sites(self) -> int:
        return int(self.site_up.sum())

    def copy(self) -> "NetworkState":
        return NetworkState(self.topology, self.site_up, self.link_up)


class ComponentTracker:
    """Maintains component labels and vote totals for a :class:`NetworkState`.

    All getters refresh lazily when the underlying state's version has
    moved; between network changes they are O(1). The refresh consumes
    the state's mutation journal incrementally (merge on recovery,
    induced-subgraph relabel on failure) and falls back to the full
    recompute when the journal cannot bridge the gap.

    ``votes`` overrides the topology's vote vector — several trackers
    with different vote vectors (one per replicated item) can share one
    network state, which is how the multi-item database gives each item
    its own quorum space over a single failure process.

    ``audit_interval`` (0 = off) cross-checks the incrementally
    maintained state against the full relabel every N incremental
    refreshes, raising :class:`~repro.errors.TopologyError` on any
    divergence — the correctness oracle for tests and paranoid runs.
    """

    __slots__ = (
        "state", "votes", "_cached_version", "_labels", "_vote_totals",
        "_incident", "_next_label", "audit_interval",
        "n_incremental", "n_full", "_audit_countdown",
    )

    def __init__(self, state: NetworkState,
                 votes: Optional[np.ndarray] = None,
                 audit_interval: int = 0) -> None:
        self.state = state
        if votes is None:
            self.votes = state.topology.votes
        else:
            votes = np.asarray(votes, dtype=np.int64)
            if votes.shape != (state.topology.n_sites,):
                raise TopologyError(
                    f"votes must have shape ({state.topology.n_sites},), "
                    f"got {votes.shape}"
                )
            self.votes = votes
        self._cached_version = -1
        self._labels: Optional[np.ndarray] = None
        self._vote_totals: Optional[np.ndarray] = None
        #: Per-site incident links as ``[(link_id, other_endpoint), ...]``.
        self._incident: Optional[List[List[Tuple[int, int]]]] = None
        self._next_label = 0
        self.audit_interval = int(audit_interval)
        self._audit_countdown = self.audit_interval
        #: Maintenance statistics (observability + benchmarks).
        self.n_incremental = 0
        self.n_full = 0

    # ------------------------------------------------------------------
    # Refresh machinery
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        state = self.state
        if self._cached_version == state.version:
            return
        changes = (
            state.changes_since(self._cached_version)
            if self._labels is not None
            else None
        )
        if changes is None or len(changes) > INCREMENTAL_LIMIT:
            self._full_recompute()
        else:
            # Copy-on-write: callers may hold references to the previously
            # returned arrays, so never mutate them in place.
            self._labels = self._labels.copy()
            self._vote_totals = self._vote_totals.copy()
            for change in changes:
                self._apply_change(change)
            self._compact_labels()
            self.n_incremental += 1
            if self.audit_interval > 0:
                self._audit_countdown -= 1
                if self._audit_countdown <= 0:
                    self._audit_countdown = self.audit_interval
                    self._audit()
        self._cached_version = state.version

    def _full_recompute(self) -> None:
        topo = self.state.topology
        self._labels = component_labels(topo, self.state.site_up, self.state.link_up)
        self._vote_totals = component_vote_totals(self._labels, self.votes)
        up = self._labels >= 0
        self._next_label = int(self._labels.max()) + 1 if up.any() else 0
        self.n_full += 1

    def _audit(self) -> None:
        """Assert the incremental state matches the full relabel (oracle)."""
        topo = self.state.topology
        oracle_labels = component_labels(topo, self.state.site_up, self.state.link_up)
        oracle_totals = component_vote_totals(oracle_labels, self.votes)
        assert self._labels is not None and self._vote_totals is not None
        same_down = np.array_equal(self._labels < 0, oracle_labels < 0)
        # Partitions agree iff the label pairing is a bijection.
        up = oracle_labels >= 0
        pairs = np.unique(
            np.stack([self._labels[up], oracle_labels[up]]), axis=1
        ).shape[1] if up.any() else 0
        ours = np.unique(self._labels[up]).size if up.any() else 0
        theirs = np.unique(oracle_labels[up]).size if up.any() else 0
        if (
            not same_down
            or pairs != ours
            or pairs != theirs
            or not np.array_equal(self._vote_totals, oracle_totals)
        ):
            raise TopologyError(
                "incremental component state diverged from the full relabel "
                f"(version {self.state.version}): labels {self._labels.tolist()} "
                f"vs oracle {oracle_labels.tolist()}, totals "
                f"{self._vote_totals.tolist()} vs {oracle_totals.tolist()}"
            )

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------
    def _incident_links(self) -> List[List[Tuple[int, int]]]:
        if self._incident is None:
            topo = self.state.topology
            incident: List[List[Tuple[int, int]]] = [[] for _ in range(topo.n_sites)]
            for lid, link in enumerate(topo.links):
                incident[link.a].append((lid, link.b))
                incident[link.b].append((lid, link.a))
            self._incident = incident
        return self._incident

    def _apply_change(self, change: NetworkChange) -> None:
        if change.up == change.was_up:
            return  # no-op flip: version moved, structure did not
        if change.kind == "site":
            if change.up:
                self._attach_site(change.index)
            else:
                self._detach_site(change.index)
        else:
            self._flip_link(change.index, change.up)

    def _fresh_label(self) -> int:
        label = self._next_label
        self._next_label += 1
        return label

    def _merge(self, a: int, b: int) -> None:
        """Union the components of up sites ``a`` and ``b`` (weighted)."""
        labels = self._labels
        totals = self._vote_totals
        la, lb = int(labels[a]), int(labels[b])
        if la < 0 or lb < 0:
            # A detached endpoint must never reach here: ``labels == -1``
            # matches *every* down site, so the mask rewrite below would
            # resurrect all of them into one corrupt component. Callers
            # gate on the tracker's own labels to make this unreachable.
            raise TopologyError(
                f"cannot merge detached site (labels {la}, {lb} for sites {a}, {b})"
            )
        if la == lb:
            return
        mask_a = labels == la
        mask_b = labels == lb
        # Rewrite the smaller side's labels (weighted union).
        if int(mask_a.sum()) < int(mask_b.sum()):
            la, mask_a, mask_b = lb, mask_b, mask_a
        combined_votes = int(totals[a]) + int(totals[b])
        labels[mask_b] = la
        totals[mask_a] = combined_votes
        totals[mask_b] = combined_votes

    def _attach_site(self, site: int) -> None:
        """A site came up: start it as a singleton, then merge over links.

        The neighbour gate is the *tracker's* label, not ``state.site_up``:
        the journal replays against the final mask arrays, so a neighbour
        flipped up by a still-pending entry is already ``True`` in
        ``site_up`` while its tracker label is still ``-1`` — merging with
        it would go through the detached label and resurrect every down
        site (the pending entry's own ``_attach_site`` performs the merge
        instead, once both sides are attached).
        """
        labels = self._labels
        labels[site] = self._fresh_label()
        self._vote_totals[site] = self.votes[site]
        link_up = self.state.link_up
        for lid, other in self._incident_links()[site]:
            if link_up[lid] and labels[other] >= 0:
                self._merge(site, other)

    def _detach_site(self, site: int) -> None:
        """A site went down: drop it and resplit its old component."""
        labels = self._labels
        old = int(labels[site])
        labels[site] = DOWN_LABEL
        self._vote_totals[site] = 0
        members = np.nonzero(labels == old)[0]
        if members.size:
            self._relabel_members(members)

    def _flip_link(self, link_id: int, up: bool) -> None:
        link = self.state.topology.links[link_id]
        labels = self._labels
        # Endpoint liveness comes from the tracker's labels, not
        # ``state.site_up`` (see ``_attach_site``): a pending site flip is
        # already visible in the state mask but not yet applied here.
        if labels[link.a] < 0 or labels[link.b] < 0:
            return  # a detached endpoint: the link carries no connectivity
        if up:
            self._merge(link.a, link.b)
        elif labels[link.a] == labels[link.b]:
            members = np.nonzero(labels == labels[link.a])[0]
            self._relabel_members(members)

    def _relabel_members(self, members: np.ndarray) -> None:
        """Relabel one component's induced subgraph after a failure.

        Runs a weighted union-find over the usable links *among
        ``members`` only* — the rest of the network is untouched, which
        is the whole point of the incremental path.
        """
        labels = self._labels
        totals = self._vote_totals
        n = labels.shape[0]
        in_c = np.zeros(n, dtype=bool)
        in_c[members] = True
        u, v = self.state.topology.link_endpoint_arrays()
        usable = self.state.link_up & in_c[u] & in_c[v]
        idx = np.nonzero(usable)[0]

        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in zip(u[idx].tolist(), v[idx].tolist()):
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        root_label: dict = {}
        member_list = members.tolist()
        new_labels = np.empty(members.shape[0], dtype=np.int64)
        for k, site in enumerate(member_list):
            root = find(site)
            label = root_label.get(root)
            if label is None:
                label = root_label[root] = self._fresh_label()
            new_labels[k] = label
        labels[members] = new_labels
        # Per-subcomponent vote totals.
        votes = self.votes[members]
        uniq, inv = np.unique(new_labels, return_inverse=True)
        sums = np.zeros(uniq.shape[0], dtype=np.int64)
        np.add.at(sums, inv, votes)
        totals[members] = sums[inv]

    def _compact_labels(self) -> None:
        """Renumber labels onto ``0..k-1`` (the documented contract)."""
        labels = self._labels
        up = labels >= 0
        if not up.any():
            self._next_label = 0
            return
        uniq, inv = np.unique(labels[up], return_inverse=True)
        labels[up] = inv
        self._next_label = uniq.shape[0]

    # ------------------------------------------------------------------
    # Getters
    # ------------------------------------------------------------------
    @property
    def labels(self) -> np.ndarray:
        """Component label per site (``-1`` for down sites)."""
        self._refresh()
        assert self._labels is not None
        return self._labels

    @property
    def vote_totals(self) -> np.ndarray:
        """Per-site votes of the containing component (0 for down sites)."""
        self._refresh()
        assert self._vote_totals is not None
        return self._vote_totals

    def votes_at(self, site: int) -> int:
        """Votes in the component containing ``site``."""
        return int(self.vote_totals[site])

    def max_component_votes(self) -> int:
        """Votes of the best-connected component (0 when all sites are down).

        This is the quantity SURV-style metrics care about: *some* site can
        access the item iff the largest component clears the quorum.
        """
        totals = self.vote_totals
        return int(totals.max()) if totals.size else 0

    def component_of(self, site: int) -> np.ndarray:
        """Site ids of the component containing ``site`` (empty if down)."""
        labels = self.labels
        if labels[site] < 0:
            return np.empty(0, dtype=np.int64)
        return np.nonzero(labels == labels[site])[0]

    def same_component(self, a: int, b: int) -> bool:
        """True iff up sites ``a`` and ``b`` can currently communicate."""
        labels = self.labels
        return labels[a] >= 0 and labels[a] == labels[b]
