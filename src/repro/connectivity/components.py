"""Component computation over a partially-failed topology.

The central quantity (paper, section 4): given which sites and links are
currently up, each up site belongs to a *component* — the set of up sites
reachable from it over up links — and what matters to the quorum consensus
protocol is the **total votes inside that component**. Down sites are
treated as belonging to a component with zero votes, so the availability
accounting naturally counts accesses submitted to down sites as denials
(the ACC metric).

Two backends compute component labels:

``component_labels``
    scipy.sparse.csgraph backend — builds the live subgraph as a CSR
    matrix and labels components in compiled code. This is the simulator's
    hot path (called once per failure/recovery event).

``components_unionfind``
    pure-Python weighted union-find with path compression — the auditable
    reference implementation; tests assert both backends agree on random
    states.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

from repro.errors import TopologyError
from repro.topology.model import Topology

__all__ = [
    "component_labels",
    "components_unionfind",
    "component_vote_totals",
    "votes_in_component_of",
    "component_members",
]

#: Label assigned to down sites; real components use labels >= 0.
DOWN_LABEL = -1


def _validate_masks(topology: Topology, site_up: np.ndarray, link_up: np.ndarray) -> None:
    if site_up.shape != (topology.n_sites,):
        raise TopologyError(
            f"site_up must have shape ({topology.n_sites},), got {site_up.shape}"
        )
    if link_up.shape != (topology.n_links,):
        raise TopologyError(
            f"link_up must have shape ({topology.n_links},), got {link_up.shape}"
        )


#: Link count above which the scipy.csgraph backend beats union-find.
#: Measured crossover on 101-site paper topologies: union-find wins up to
#: a few hundred links (scipy's per-call sparse-construction overhead
#: dominates there); csgraph wins on the fully-connected 5050-link case.
CSGRAPH_THRESHOLD = 1_000


def component_labels(
    topology: Topology,
    site_up: np.ndarray,
    link_up: np.ndarray,
) -> np.ndarray:
    """Label each site with its component id (auto-dispatching backend).

    Parameters
    ----------
    topology:
        The static network.
    site_up, link_up:
        Boolean masks over sites and link ids. A link is *usable* iff the
        link itself and both endpoints are up.

    Returns
    -------
    numpy.ndarray
        int64 array of length ``n_sites``. Up sites get consecutive
        component ids starting at 0; down sites get :data:`DOWN_LABEL`.
        Component ids are consistent within one call but carry no meaning
        across calls.

    Dispatches between the pure-Python union-find (sparse networks — the
    simulator's per-event hot path on the paper's ring topologies) and
    the scipy.sparse.csgraph backend (dense networks) on link count; both
    honour the same label contract and are cross-checked in the tests.
    """
    site_up = np.asarray(site_up, dtype=bool)
    link_up = np.asarray(link_up, dtype=bool)
    _validate_masks(topology, site_up, link_up)
    if topology.n_links <= CSGRAPH_THRESHOLD:
        return _labels_unionfind(topology, site_up, link_up)
    return _labels_csgraph(topology, site_up, link_up)


def _labels_csgraph(
    topology: Topology,
    site_up: np.ndarray,
    link_up: np.ndarray,
) -> np.ndarray:
    n = topology.n_sites
    u, v = topology.link_endpoint_arrays()
    usable = link_up & site_up[u] & site_up[v]
    uu, vv = u[usable], v[usable]
    ones = np.ones(uu.shape[0], dtype=np.int8)
    graph = coo_matrix((ones, (uu, vv)), shape=(n, n))
    _, raw_labels = connected_components(graph, directed=False)

    labels = np.full(n, DOWN_LABEL, dtype=np.int64)
    up_idx = np.nonzero(site_up)[0]
    # Re-map the raw labels of up sites onto 0..k-1; down sites keep -1.
    # Down sites received their own singleton raw labels, which we discard.
    raw_up = raw_labels[up_idx]
    _, compact = np.unique(raw_up, return_inverse=True)
    labels[up_idx] = compact
    return labels


def _labels_unionfind(
    topology: Topology,
    site_up: np.ndarray,
    link_up: np.ndarray,
) -> np.ndarray:
    n = topology.n_sites
    u, v = topology.link_endpoint_arrays()
    usable = link_up & site_up[u] & site_up[v]
    idx = np.nonzero(usable)[0]

    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in zip(u[idx].tolist(), v[idx].tolist()):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    labels = np.full(n, DOWN_LABEL, dtype=np.int64)
    next_label = 0
    root_to_label: Dict[int, int] = {}
    for site in np.nonzero(site_up)[0].tolist():
        root = find(site)
        label = root_to_label.get(root)
        if label is None:
            label = root_to_label[root] = next_label
            next_label += 1
        labels[site] = label
    return labels


class _UnionFind:
    """Weighted quick-union with path halving."""

    __slots__ = ("parent", "size")

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


def components_unionfind(
    topology: Topology,
    site_up: np.ndarray,
    link_up: np.ndarray,
) -> np.ndarray:
    """Reference union-find implementation of :func:`component_labels`.

    Returns labels with the same contract (consecutive ids over up sites,
    ``-1`` for down sites). Exists to cross-check the vectorized backend.
    """
    site_up = np.asarray(site_up, dtype=bool)
    link_up = np.asarray(link_up, dtype=bool)
    _validate_masks(topology, site_up, link_up)

    n = topology.n_sites
    uf = _UnionFind(n)
    for link_id, link in enumerate(topology.links):
        if link_up[link_id] and site_up[link.a] and site_up[link.b]:
            uf.union(link.a, link.b)

    labels = np.full(n, DOWN_LABEL, dtype=np.int64)
    next_label = 0
    root_to_label: Dict[int, int] = {}
    for site in range(n):
        if not site_up[site]:
            continue
        root = uf.find(site)
        if root not in root_to_label:
            root_to_label[root] = next_label
            next_label += 1
        labels[site] = root_to_label[root]
    return labels


def component_vote_totals(
    labels: np.ndarray,
    votes: np.ndarray,
) -> np.ndarray:
    """Per-site total votes of the component containing each site.

    Down sites (label ``-1``) get zero votes — the paper's convention that
    a down site is a member of a component of size zero.
    """
    labels = np.asarray(labels, dtype=np.int64)
    votes = np.asarray(votes, dtype=np.int64)
    if labels.shape != votes.shape:
        raise TopologyError(
            f"labels shape {labels.shape} != votes shape {votes.shape}"
        )
    up = labels >= 0
    n_components = int(labels.max()) + 1 if up.any() else 0
    totals = np.zeros(n_components, dtype=np.int64)
    np.add.at(totals, labels[up], votes[up])
    out = np.zeros(labels.shape[0], dtype=np.int64)
    out[up] = totals[labels[up]]
    return out


def votes_in_component_of(
    topology: Topology,
    site: int,
    site_up: np.ndarray,
    link_up: np.ndarray,
) -> int:
    """Total votes in the component containing ``site`` (0 if down)."""
    if not 0 <= site < topology.n_sites:
        raise TopologyError(f"unknown site {site}")
    labels = component_labels(topology, site_up, link_up)
    totals = component_vote_totals(labels, topology.votes)
    return int(totals[site])


def component_members(labels: np.ndarray) -> List[np.ndarray]:
    """Group site ids by component: ``result[c]`` holds component ``c``'s sites.

    Down sites are omitted; use ``labels == DOWN_LABEL`` to find them.
    """
    labels = np.asarray(labels, dtype=np.int64)
    up = labels >= 0
    n_components = int(labels.max()) + 1 if up.any() else 0
    order = np.argsort(labels[up], kind="stable")
    up_sites = np.nonzero(up)[0][order]
    sorted_labels = labels[up_sites]
    boundaries = np.searchsorted(sorted_labels, np.arange(n_components + 1))
    return [up_sites[boundaries[c]:boundaries[c + 1]] for c in range(n_components)]
