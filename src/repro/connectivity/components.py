"""Component computation over a partially-failed topology.

The central quantity (paper, section 4): given which sites and links are
currently up, each up site belongs to a *component* — the set of up sites
reachable from it over up links — and what matters to the quorum consensus
protocol is the **total votes inside that component**. Down sites are
treated as belonging to a component with zero votes, so the availability
accounting naturally counts accesses submitted to down sites as denials
(the ACC metric).

Two backends compute component labels:

``component_labels``
    scipy.sparse.csgraph backend — builds the live subgraph as a CSR
    matrix and labels components in compiled code. This is the simulator's
    hot path (called once per failure/recovery event).

``components_unionfind``
    pure-Python weighted union-find with path compression — the auditable
    reference implementation; tests assert both backends agree on random
    states.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

from repro.errors import TopologyError
from repro.topology.model import Topology

__all__ = [
    "component_labels",
    "batched_component_labels",
    "batched_component_entries",
    "batched_component_vote_totals",
    "batched_vote_totals",
    "components_unionfind",
    "component_vote_totals",
    "minlabel_component_labels",
    "votes_in_component_of",
    "component_members",
    "gather_groups",
]

#: Label assigned to down sites; real components use labels >= 0.
DOWN_LABEL = -1


def _validate_masks(topology: Topology, site_up: np.ndarray, link_up: np.ndarray) -> None:
    if site_up.shape != (topology.n_sites,):
        raise TopologyError(
            f"site_up must have shape ({topology.n_sites},), got {site_up.shape}"
        )
    if link_up.shape != (topology.n_links,):
        raise TopologyError(
            f"link_up must have shape ({topology.n_links},), got {link_up.shape}"
        )


#: Link count above which the scipy.csgraph backend beats union-find.
#: Re-measured after the incremental ComponentTracker landed (it absorbs
#: most small-topology per-event calls, leaving this dispatch dominated
#: by cold full recomputes): on 101-site paper topologies at p=0.9,
#: union-find wins through 1125 links (211µs vs 490µs per call — scipy's
#: sparse-construction overhead dominates), csgraph wins from 2149 links
#: (381µs vs 479µs) through the fully-connected 5050-link case (482µs vs
#: 967µs). The crossover sits near 1600 links.
CSGRAPH_THRESHOLD = 1_600


def component_labels(
    topology: Topology,
    site_up: np.ndarray,
    link_up: np.ndarray,
) -> np.ndarray:
    """Label each site with its component id (auto-dispatching backend).

    Parameters
    ----------
    topology:
        The static network.
    site_up, link_up:
        Boolean masks over sites and link ids. A link is *usable* iff the
        link itself and both endpoints are up.

    Returns
    -------
    numpy.ndarray
        int64 array of length ``n_sites``. Up sites get consecutive
        component ids starting at 0; down sites get :data:`DOWN_LABEL`.
        Component ids are consistent within one call but carry no meaning
        across calls.

    Dispatches between the pure-Python union-find (sparse networks — the
    simulator's per-event hot path on the paper's ring topologies) and
    the scipy.sparse.csgraph backend (dense networks) on link count; both
    honour the same label contract and are cross-checked in the tests.
    """
    site_up = np.asarray(site_up, dtype=bool)
    link_up = np.asarray(link_up, dtype=bool)
    _validate_masks(topology, site_up, link_up)
    if topology.n_links <= CSGRAPH_THRESHOLD:
        return _labels_unionfind(topology, site_up, link_up)
    return _labels_csgraph(topology, site_up, link_up)


def _labels_csgraph(
    topology: Topology,
    site_up: np.ndarray,
    link_up: np.ndarray,
) -> np.ndarray:
    n = topology.n_sites
    u, v = topology.link_endpoint_arrays()
    usable = link_up & site_up[u] & site_up[v]
    uu, vv = u[usable], v[usable]
    ones = np.ones(uu.shape[0], dtype=np.int8)
    graph = coo_matrix((ones, (uu, vv)), shape=(n, n))
    _, raw_labels = connected_components(graph, directed=False)

    labels = np.full(n, DOWN_LABEL, dtype=np.int64)
    up_idx = np.nonzero(site_up)[0]
    # Re-map the raw labels of up sites onto 0..k-1; down sites keep -1.
    # Down sites received their own singleton raw labels, which we discard.
    raw_up = raw_labels[up_idx]
    _, compact = np.unique(raw_up, return_inverse=True)
    labels[up_idx] = compact
    return labels


def _labels_unionfind(
    topology: Topology,
    site_up: np.ndarray,
    link_up: np.ndarray,
) -> np.ndarray:
    n = topology.n_sites
    u, v = topology.link_endpoint_arrays()
    usable = link_up & site_up[u] & site_up[v]
    idx = np.nonzero(usable)[0]

    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in zip(u[idx].tolist(), v[idx].tolist()):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    labels = np.full(n, DOWN_LABEL, dtype=np.int64)
    next_label = 0
    root_to_label: Dict[int, int] = {}
    for site in np.nonzero(site_up)[0].tolist():
        root = find(site)
        label = root_to_label.get(root)
        if label is None:
            label = root_to_label[root] = next_label
            next_label += 1
        labels[site] = label
    return labels


def batched_component_labels(
    topology: Topology,
    site_masks: np.ndarray,
    link_masks: np.ndarray,
) -> np.ndarray:
    """Label B sampled network states with ONE compiled csgraph call.

    Builds a block-diagonal sparse graph over ``B * n_sites`` nodes —
    state ``k``'s copy of site ``s`` is node ``k * n_sites + s``, and
    usable links only ever join nodes inside one block — so a single
    :func:`scipy.sparse.csgraph.connected_components` invocation labels
    every partition of every state at once. This is the Monte-Carlo
    density estimator's hot path: it replaces a Python loop of B sparse
    constructions with one.

    Parameters
    ----------
    site_masks, link_masks:
        Boolean arrays of shape ``(B, n_sites)`` / ``(B, n_links)``.

    Returns
    -------
    numpy.ndarray
        int64 labels of shape ``(B, n_sites)``. Up sites carry component
        ids that are unique across the WHOLE batch (``0..K-1`` over all
        states, *not* compacted per state); down sites get
        :data:`DOWN_LABEL`. Feed directly into
        :func:`batched_component_vote_totals`.
    """
    site_masks = np.asarray(site_masks, dtype=bool)
    link_masks = np.asarray(link_masks, dtype=bool)
    if site_masks.ndim != 2 or site_masks.shape[1] != topology.n_sites:
        raise TopologyError(
            f"site_masks must have shape (B, {topology.n_sites}), got {site_masks.shape}"
        )
    if link_masks.shape != (site_masks.shape[0], topology.n_links):
        raise TopologyError(
            f"link_masks must have shape ({site_masks.shape[0]}, {topology.n_links}), "
            f"got {link_masks.shape}"
        )
    _, raw = _batched_raw_labels(topology, site_masks, link_masks)
    B, n = site_masks.shape
    labels = np.full(B * n, DOWN_LABEL, dtype=np.int64)
    up_idx = np.nonzero(site_masks.ravel())[0]
    _, compact = np.unique(raw[up_idx], return_inverse=True)
    labels[up_idx] = compact
    return labels.reshape(B, n)


def _batched_raw_labels(
    topology: Topology,
    site_masks: np.ndarray,
    link_masks: np.ndarray,
) -> tuple:
    """One block-diagonal csgraph call over B states; raw (uncompacted) labels.

    Returns ``(n_components, raw)`` where ``raw`` has shape ``(B * n,)``
    and down sites carry their own singleton component ids (no -1
    marking) — callers mask with ``site_masks`` themselves.
    """
    B, n = site_masks.shape
    u, v = topology.link_endpoint_arrays()
    usable = link_masks & site_masks[:, u] & site_masks[:, v]
    state_idx, link_idx = np.nonzero(usable)
    offsets = state_idx * n
    uu = u[link_idx] + offsets
    vv = v[link_idx] + offsets
    ones = np.ones(uu.shape[0], dtype=np.int8)
    graph = coo_matrix((ones, (uu, vv)), shape=(B * n, B * n))
    return connected_components(graph, directed=False)


def batched_vote_totals(
    topology: Topology,
    site_masks: np.ndarray,
    link_masks: np.ndarray,
    votes: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fused masks → per-site component vote totals for B states.

    Equivalent to :func:`batched_component_labels` followed by
    :func:`batched_component_vote_totals`, but skips the per-state label
    compaction entirely — the Monte-Carlo density estimator only needs
    totals, and compaction is the most expensive non-compiled step.
    """
    site_masks = np.asarray(site_masks, dtype=bool)
    link_masks = np.asarray(link_masks, dtype=bool)
    if site_masks.ndim != 2 or site_masks.shape[1] != topology.n_sites:
        raise TopologyError(
            f"site_masks must have shape (B, {topology.n_sites}), got {site_masks.shape}"
        )
    if link_masks.shape != (site_masks.shape[0], topology.n_links):
        raise TopologyError(
            f"link_masks must have shape ({site_masks.shape[0]}, {topology.n_links}), "
            f"got {link_masks.shape}"
        )
    votes_arr = topology.votes if votes is None else np.asarray(votes, dtype=np.int64)
    n_comp, raw = _batched_raw_labels(topology, site_masks, link_masks)
    B, n = site_masks.shape
    up = site_masks.ravel()
    sums = np.bincount(
        raw[up], weights=np.tile(votes_arr, B)[up].astype(np.float64),
        minlength=n_comp,
    )
    totals = np.where(up, sums[raw], 0.0).astype(np.int64)
    return totals.reshape(B, n)


def batched_component_vote_totals(
    labels: np.ndarray,
    votes: np.ndarray,
) -> np.ndarray:
    """Per-site component vote totals for a batch of labelled states.

    ``labels`` is the ``(B, n_sites)`` output of
    :func:`batched_component_labels` (batch-global component ids); the
    result has the same shape, with down sites at 0 votes. One
    ``bincount`` covers every component of every state.
    """
    labels = np.asarray(labels, dtype=np.int64)
    votes = np.asarray(votes, dtype=np.int64)
    if labels.ndim != 2 or labels.shape[1] != votes.shape[0]:
        raise TopologyError(
            f"labels shape {labels.shape} incompatible with votes shape {votes.shape}"
        )
    B, n = labels.shape
    flat = labels.ravel()
    up = flat >= 0
    out = np.zeros(B * n, dtype=np.int64)
    if up.any():
        k = int(flat.max()) + 1
        sums = np.bincount(
            flat[up], weights=np.tile(votes, B)[up].astype(np.float64), minlength=k
        )
        out[up] = sums[flat[up]].astype(np.int64)
    return out.reshape(B, n)


def batched_component_entries(labels: np.ndarray) -> tuple:
    """Index the up entries of a batched label matrix by component id.

    ``labels`` is the ``(B, n_sites)`` output of
    :func:`batched_component_labels` (batch-global ids, down sites at
    ``-1``). Returns ``(entries, starts)`` where ``entries`` holds flat
    positions into ``labels.ravel()`` sorted by component, and component
    ``c``'s members occupy ``entries[starts[c]:starts[c + 1]]``. This is
    the batch generalization of :func:`component_members`, precomputed
    once so delta-scorers can gather "every entry in the component
    containing site ``s`` of state ``k``" without touching the other
    states (DESIGN.md §10).
    """
    flat = np.asarray(labels, dtype=np.int64).ravel()
    up_pos = np.nonzero(flat >= 0)[0]
    lab = flat[up_pos]
    order = np.argsort(lab, kind="stable")
    entries = up_pos[order]
    n_components = int(lab.max()) + 1 if lab.size else 0
    starts = np.searchsorted(lab[order], np.arange(n_components + 1))
    return entries, starts


def gather_groups(
    entries: np.ndarray, starts: np.ndarray, group_ids: np.ndarray
) -> np.ndarray:
    """Concatenate the members of the named groups (vectorized multi-slice).

    ``(entries, starts)`` come from :func:`batched_component_entries`;
    ``group_ids`` names components. Equivalent to
    ``np.concatenate([entries[starts[c]:starts[c+1]] for c in group_ids])``
    without the Python loop.
    """
    group_ids = np.asarray(group_ids, dtype=np.int64)
    lo = starts[group_ids]
    hi = starts[group_ids + 1]
    lens = hi - lo
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=entries.dtype)
    # Multi-arange: block i covers lo[i] .. hi[i]-1 of the sorted index.
    idx = np.repeat(hi - np.cumsum(lens), lens) + np.arange(total)
    return entries[idx]


def minlabel_component_labels(
    topology: Topology,
    site_up: np.ndarray,
    link_up: np.ndarray,
) -> np.ndarray:
    """Dependency-free labeller: iterated min-propagation + pointer jumping.

    Every up site starts labelled with its own index; each sweep pulls
    the minimum neighbouring label across every usable link and then
    pointer-jumps (``lab = lab[lab]``), so convergence takes
    ``O(log n_sites)`` sweeps with no sparse-matrix construction and no
    Python-level loop over edges. Honours the exact
    :func:`component_labels` contract — consecutive component ids from 0
    over up sites in first-seen order, :data:`DOWN_LABEL` for down sites
    — because a component's representative is its minimum site index,
    and scanning sites in ascending order first meets each component at
    that minimum. Cross-checked against both backends in the property
    suite; this was the candidate per-state labeller for the compiled
    enumeration backend (the collapse-DFS kernel won — see DESIGN.md
    §15) and stays as an independent witness.
    """
    site_up = np.asarray(site_up, dtype=bool)
    link_up = np.asarray(link_up, dtype=bool)
    _validate_masks(topology, site_up, link_up)

    n = topology.n_sites
    u, v = topology.link_endpoint_arrays()
    usable = link_up & site_up[u] & site_up[v]
    uu, vv = u[usable], v[usable]

    # lab[i] points at the smallest site index known reachable from i;
    # down sites park on the sentinel n (lab_ext[n] = n stays fixed).
    lab = np.arange(n + 1, dtype=np.int64)
    lab[:n][~site_up] = n
    while True:
        prev = lab.copy()
        if uu.size:
            np.minimum.at(lab, uu, lab[vv])
            np.minimum.at(lab, vv, lab[uu])
        lab[:n] = lab[lab[:n]]  # pointer jump
        if np.array_equal(lab, prev):
            break

    labels = np.full(n, DOWN_LABEL, dtype=np.int64)
    up_idx = np.nonzero(site_up)[0]
    # Roots are component-minimum site ids, so ascending root order is
    # exactly first-seen order over an ascending site scan.
    _, compact = np.unique(lab[up_idx], return_inverse=True)
    labels[up_idx] = compact
    return labels


class _UnionFind:
    """Weighted quick-union with path halving."""

    __slots__ = ("parent", "size")

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


def components_unionfind(
    topology: Topology,
    site_up: np.ndarray,
    link_up: np.ndarray,
) -> np.ndarray:
    """Reference union-find implementation of :func:`component_labels`.

    Returns labels with the same contract (consecutive ids over up sites,
    ``-1`` for down sites). Exists to cross-check the vectorized backend.
    """
    site_up = np.asarray(site_up, dtype=bool)
    link_up = np.asarray(link_up, dtype=bool)
    _validate_masks(topology, site_up, link_up)

    n = topology.n_sites
    uf = _UnionFind(n)
    for link_id, link in enumerate(topology.links):
        if link_up[link_id] and site_up[link.a] and site_up[link.b]:
            uf.union(link.a, link.b)

    labels = np.full(n, DOWN_LABEL, dtype=np.int64)
    next_label = 0
    root_to_label: Dict[int, int] = {}
    for site in range(n):
        if not site_up[site]:
            continue
        root = uf.find(site)
        if root not in root_to_label:
            root_to_label[root] = next_label
            next_label += 1
        labels[site] = root_to_label[root]
    return labels


def component_vote_totals(
    labels: np.ndarray,
    votes: np.ndarray,
) -> np.ndarray:
    """Per-site total votes of the component containing each site.

    Down sites (label ``-1``) get zero votes — the paper's convention that
    a down site is a member of a component of size zero.
    """
    labels = np.asarray(labels, dtype=np.int64)
    votes = np.asarray(votes, dtype=np.int64)
    if labels.shape != votes.shape:
        raise TopologyError(
            f"labels shape {labels.shape} != votes shape {votes.shape}"
        )
    up = labels >= 0
    n_components = int(labels.max()) + 1 if up.any() else 0
    totals = np.zeros(n_components, dtype=np.int64)
    np.add.at(totals, labels[up], votes[up])
    out = np.zeros(labels.shape[0], dtype=np.int64)
    out[up] = totals[labels[up]]
    return out


def votes_in_component_of(
    topology: Topology,
    site: int,
    site_up: np.ndarray,
    link_up: np.ndarray,
) -> int:
    """Total votes in the component containing ``site`` (0 if down)."""
    if not 0 <= site < topology.n_sites:
        raise TopologyError(f"unknown site {site}")
    labels = component_labels(topology, site_up, link_up)
    totals = component_vote_totals(labels, topology.votes)
    return int(totals[site])


def component_members(labels: np.ndarray) -> List[np.ndarray]:
    """Group site ids by component: ``result[c]`` holds component ``c``'s sites.

    Down sites are omitted; use ``labels == DOWN_LABEL`` to find them.
    """
    labels = np.asarray(labels, dtype=np.int64)
    up = labels >= 0
    n_components = int(labels.max()) + 1 if up.any() else 0
    order = np.argsort(labels[up], kind="stable")
    up_sites = np.nonzero(up)[0][order]
    sorted_labels = labels[up_sites]
    boundaries = np.searchsorted(sorted_labels, np.arange(n_components + 1))
    return [up_sites[boundaries[c]:boundaries[c + 1]] for c in range(n_components)]
