"""Zero-pickle pool transport: per-batch slots in shared memory.

The parallel fan-out used to ship every batch's numeric payload —
ACC/SURV tallies, two ``(n_sites, T+1)`` density-weight matrices, the
max-votes histogram — back through the process pool's pickle pipe. For
paper-scale topologies that is hundreds of kilobytes per batch of pure
``float64`` data being serialized, copied through a pipe, and
deserialized, all to land in numpy arrays again.

This module replaces that round-trip with one preallocated
:class:`multiprocessing.shared_memory.SharedMemory` block, carved into
fixed-size per-batch **slots**:

- The dispatcher creates a :class:`SlotPool` with one slot per batch and
  passes its name through the pool initializer.
- Each worker attaches once (detaching itself from the resource tracker
  — the dispatcher owns the block's lifetime), writes its batch's
  numbers into its assigned slot with :meth:`BatchSlotLayout.pack`, and
  returns only a slim index/metadata record across the pipe.
- The dispatcher rehydrates full ``BatchResult`` objects from the slots
  with :meth:`BatchSlotLayout.unpack` and unlinks the block.

Values cross as raw ``float64`` — no encoding, no rounding — so results
are bitwise identical to the pickle path (and therefore to a serial
run). Non-numeric payloads (telemetry snapshots, invariant-violation
records, quarantined errors) are rare and structurally pickled; they
stay on the pipe by design.

Everything degrades cleanly: :func:`shm_supported` probes the platform
once, and any ``OSError`` while creating the block falls back to the
pickle transport (see :mod:`repro.simulation.parallel`).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

import numpy as np

from repro.errors import SimulationError

__all__ = ["BatchSlotLayout", "SlotPool", "shm_supported"]

#: Scalar fields of a BatchResult, in slot order (ints cross as float64;
#: they are exact well past 2**53).
_SCALAR_FIELDS = (
    "reads_submitted",
    "reads_granted",
    "writes_submitted",
    "writes_granted",
    "surv_read",
    "surv_write",
    "measured_time",
    "n_epochs",
    "n_events",
)


@dataclass(frozen=True)
class BatchSlotLayout:
    """Fixed slot layout for one ``BatchResult``'s numeric payload.

    A slot is one contiguous ``float64`` vector::

        [ scalars (9) | density_time (n*(T+1)) | density_access (n*(T+1))
          | max_votes_time (T+1) ]

    ``n`` and ``T`` come from the simulation config's topology, so the
    dispatcher and every worker derive the identical layout without
    negotiation.
    """

    n_sites: int
    total_votes: int

    @property
    def density_floats(self) -> int:
        return self.n_sites * (self.total_votes + 1)

    @property
    def slot_floats(self) -> int:
        return len(_SCALAR_FIELDS) + 2 * self.density_floats + (
            self.total_votes + 1
        )

    @property
    def slot_bytes(self) -> int:
        return self.slot_floats * 8

    # ------------------------------------------------------------------
    def pack(self, view: np.ndarray, batch) -> None:
        """Write ``batch``'s numbers into one slot view (worker side)."""
        s = len(_SCALAR_FIELDS)
        d = self.density_floats
        view[:s] = [float(getattr(batch, name)) for name in _SCALAR_FIELDS]
        view[s: s + d] = batch.density_time._weights.ravel()
        view[s + d: s + 2 * d] = batch.density_access._weights.ravel()
        view[s + 2 * d:] = batch.max_votes_time

    def unpack(self, view: np.ndarray):
        """Rebuild a ``BatchResult`` from one slot view (dispatcher side)."""
        from repro.protocols.estimator import OnlineDensityEstimator
        from repro.simulation.engine import BatchResult

        s = len(_SCALAR_FIELDS)
        d = self.density_floats
        shape = (self.n_sites, self.total_votes + 1)
        scalars = dict(zip(_SCALAR_FIELDS, view[:s]))
        return BatchResult(
            reads_submitted=float(scalars["reads_submitted"]),
            reads_granted=float(scalars["reads_granted"]),
            writes_submitted=float(scalars["writes_submitted"]),
            writes_granted=float(scalars["writes_granted"]),
            surv_read=float(scalars["surv_read"]),
            surv_write=float(scalars["surv_write"]),
            measured_time=float(scalars["measured_time"]),
            n_epochs=int(scalars["n_epochs"]),
            n_events=int(scalars["n_events"]),
            density_time=OnlineDensityEstimator.from_weights(
                view[s: s + d].reshape(shape).copy(), self.total_votes
            ),
            density_access=OnlineDensityEstimator.from_weights(
                view[s + d: s + 2 * d].reshape(shape).copy(), self.total_votes
            ),
            max_votes_time=view[s + 2 * d:].copy(),
            trace=None,
        )


class SlotPool:
    """A shared-memory block carved into equal ``float64`` slots.

    The *creating* process owns the block: it must call :meth:`unlink`
    (normally via :meth:`close`) when the batch results have been read
    out. *Attaching* processes (pool workers) only map it and
    deliberately unregister themselves from the resource tracker, so
    worker shutdown neither warns about "leaked" segments nor
    double-unlinks the dispatcher's block.
    """

    def __init__(self, shm: shared_memory.SharedMemory, slot_floats: int,
                 n_slots: int, owner: bool) -> None:
        self._shm = shm
        self.slot_floats = int(slot_floats)
        self.n_slots = int(n_slots)
        self._owner = owner
        self._array = np.ndarray(
            (self.n_slots, self.slot_floats), dtype=np.float64,
            buffer=shm.buf,
        )

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, slot_floats: int, n_slots: int) -> "SlotPool":
        """Allocate a zeroed pool (dispatcher side). Raises ``OSError``
        when shared memory is unavailable — callers fall back to pickle."""
        if slot_floats <= 0 or n_slots <= 0:
            raise SimulationError(
                f"slot pool needs positive dimensions, got "
                f"{n_slots} x {slot_floats}"
            )
        name = f"repro_pool_{secrets.token_hex(8)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(slot_floats * n_slots * 8, 8)
        )
        pool = cls(shm, slot_floats, n_slots, owner=True)
        pool._array[:] = 0.0
        return pool

    @classmethod
    def attach(cls, name: str, slot_floats: int, n_slots: int) -> "SlotPool":
        """Map an existing pool (worker side); tracker-unregistered."""
        # Python 3.12 gained SharedMemory(track=False); on 3.11 every
        # attach registers the segment with the (fork-shared) resource
        # tracker, and unregistering afterwards would also erase the
        # dispatcher's registration. Suppress registration entirely for
        # the duration of the attach instead.
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        return cls(shm, slot_floats, n_slots, owner=False)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    def slot(self, index: int) -> np.ndarray:
        """The ``float64`` view of one slot (zero-copy)."""
        if not 0 <= index < self.n_slots:
            raise SimulationError(
                f"slot index {index} outside 0..{self.n_slots - 1}"
            )
        return self._array[index]

    def close(self) -> None:
        """Release the mapping; the owner also unlinks the segment."""
        self._array = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass


def shm_supported() -> bool:
    """Can this platform allocate POSIX/Windows shared memory at all?"""
    try:
        probe = shared_memory.SharedMemory(
            name=f"repro_probe_{secrets.token_hex(4)}", create=True, size=8
        )
    except (OSError, ValueError):
        return False
    probe.close()
    try:
        probe.unlink()
    except FileNotFoundError:
        pass
    return True
