"""Steady-state discrete event simulator (paper, section 5.2).

The simulated system follows the paper's model exactly (section 5.1):
sites and bi-directional links fail and recover as independent
alternating exponential (Poisson) processes; failures partition the
network; access requests arrive as per-site Poisson streams, each a read
with probability ``alpha``; all events are instantaneous.

Architecture: the engine advances from one *network epoch* to the next —
an epoch being the interval between consecutive failure/recovery events,
during which the component partition is constant. Per epoch it asks the
replica-control protocol for its per-site grant masks once, then accounts
for every access in the epoch either by **sampling** the Poisson counts
exactly (statistically identical to simulating each access as its own
event, by Poisson splitting) or by the **expected-value** estimator that
integrates the closed-form conditional grant probability over the epoch
(a variance-reduction technique; DESIGN.md, "Two availability
estimators").

Public surface:

- :class:`SimulationConfig` — all knobs, with the paper's defaults;
- :func:`simulate_batch` / :class:`SimulationEngine` — one batch;
- :func:`run_simulation` — warm-up + batches + Student-t confidence
  intervals, the paper's batch-means methodology;
- :class:`AccessWorkload` — uniform / zipf / hotspot / custom access
  distributions with a read fraction;
- :class:`FailureProcesses` — the per-component up/down processes.
"""

from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.processes import FailureProcesses, reliability_to_repair_time
from repro.simulation.workload import AccessWorkload, PhasedWorkload
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import BatchResult, SimulationEngine, simulate_batch
from repro.simulation.stats import (
    BatchStatistics,
    confidence_interval,
    student_t_half_width,
)
from repro.simulation.runner import SimulationResult, run_simulation
from repro.simulation.trace import NetworkTrace, TraceReplayer

__all__ = [
    "AccessWorkload",
    "BatchResult",
    "BatchStatistics",
    "Event",
    "EventKind",
    "EventQueue",
    "FailureProcesses",
    "NetworkTrace",
    "PhasedWorkload",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationResult",
    "TraceReplayer",
    "confidence_interval",
    "reliability_to_repair_time",
    "run_simulation",
    "simulate_batch",
    "student_t_half_width",
]
