"""Batch-means statistics and Student-t confidence intervals.

The paper reports "average availability over a number of batches ...
with a 95% confidence interval with an interval half-size of at most
±0.5%", running 5–18 batches as needed. Batches are independent (each is
reset to the initial state and uses an independent random stream), so the
classical batch-means estimator applies: the batch availabilities are
i.i.d., and the Student-t interval on their mean is exact under
approximate normality.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import SimulationError

__all__ = ["student_t_half_width", "confidence_interval", "BatchStatistics"]


def student_t_half_width(values: Sequence[float], confidence: float = 0.95) -> float:
    """Half-width of the Student-t CI on the mean of ``values``.

    Returns 0 for a single observation (no spread information — callers
    that need precision control should require at least two batches).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise SimulationError(f"need a non-empty 1-D value sequence, got shape {arr.shape}")
    if not 0.0 < confidence < 1.0:
        raise SimulationError(f"confidence must be in (0, 1), got {confidence}")
    n = arr.size
    if n == 1:
        return 0.0
    sem = float(arr.std(ddof=1)) / sqrt(n)
    t = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return t * sem


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """``(mean, low, high)`` of the Student-t interval."""
    arr = np.asarray(values, dtype=np.float64)
    half = student_t_half_width(arr, confidence)
    mean = float(arr.mean())
    return mean, mean - half, mean + half


@dataclass(frozen=True)
class BatchStatistics:
    """Summary of one scalar metric across batches."""

    name: str
    values: Tuple[float, ...]
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if not self.values:
            raise SimulationError(f"metric {self.name!r} has no batch values")

    @property
    def n_batches(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values, ddof=1)) if self.n_batches > 1 else 0.0

    @property
    def half_width(self) -> float:
        return student_t_half_width(self.values, self.confidence)

    @property
    def interval(self) -> Tuple[float, float]:
        half = self.half_width
        return self.mean - half, self.mean + half

    def meets_precision(self, target_half_width: float) -> bool:
        """True once the CI half-width is within the target (needs >= 2 batches)."""
        return self.n_batches >= 2 and self.half_width <= target_half_width

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.mean:.4f} ± {self.half_width:.4f} "
            f"({int(self.confidence * 100)}% CI, {self.n_batches} batches)"
        )
