"""Alternating exponential up/down processes for sites and links.

Paper, section 5.2: "Site and link failures and recoveries are modeled as
Poisson processes. The mean time-to-next-failure of each component,
``mu_f``, is the same for both sites and links. Likewise, the mean time to
recovery, ``mu_r``." With reliability 0.96, ``mu_f / (mu_f + mu_r) = .96``.

Each *component* (a site or a link — the paper's term for any fallible
network element) alternates between exponential up periods of mean
``mu_f`` and exponential down periods of mean ``mu_r``; the stationary
probability of being up is then ``mu_f / (mu_f + mu_r)``, the component's
reliability. ``FailureProcesses`` owns the per-component clocks and feeds
the engine's event queue.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.rng import RandomState, as_generator
from repro.simulation.events import EventKind, EventQueue
from repro.topology.model import Topology

__all__ = ["reliability_to_repair_time", "FailureProcesses"]

ParamLike = Union[float, Sequence[float], np.ndarray]


def reliability_to_repair_time(reliability: float, mean_time_to_failure: float) -> float:
    """Mean repair time giving a target stationary reliability.

    From ``reliability = mu_f / (mu_f + mu_r)``:
    ``mu_r = mu_f (1 - reliability) / reliability``. The paper's 0.96 at
    ``mu_f = 128`` gives ``mu_r = 128/24 ≈ 5.33``.
    """
    if not 0.0 < reliability < 1.0:
        raise SimulationError(
            f"reliability must be strictly inside (0, 1) for an alternating "
            f"process, got {reliability}"
        )
    if mean_time_to_failure <= 0.0:
        raise SimulationError(
            f"mean time to failure must be positive, got {mean_time_to_failure}"
        )
    return mean_time_to_failure * (1.0 - reliability) / reliability


def _param_vector(value: ParamLike, count: int, label: str) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(count, float(arr))
    if arr.shape != (count,):
        raise SimulationError(f"{label} must be scalar or length {count}, got shape {arr.shape}")
    if (arr <= 0.0).any():
        raise SimulationError(f"{label} values must be positive")
    return arr


class FailureProcesses:
    """Per-component failure/repair clocks over a topology.

    Sites occupy component indices ``0..n_sites-1``; links occupy
    ``n_sites..n_sites+n_links-1``. Mean times may be scalars (the paper's
    homogeneous setting) or per-component vectors (heterogeneous
    hardware, or the bus model's perfectly reliable spokes — encode those
    by simply excluding the component via ``fallible`` mask).
    """

    def __init__(
        self,
        topology: Topology,
        mean_time_to_failure: ParamLike,
        mean_time_to_repair: ParamLike,
        seed: RandomState = None,
        fallible_sites: Optional[np.ndarray] = None,
        fallible_links: Optional[np.ndarray] = None,
    ) -> None:
        self.topology = topology
        n = topology.n_sites + topology.n_links
        self.n_components = n
        self.mttf = _param_vector(mean_time_to_failure, n, "mean time to failure")
        self.mttr = _param_vector(mean_time_to_repair, n, "mean time to repair")
        self.rng = as_generator(seed)

        if fallible_sites is None:
            fallible_sites = np.ones(topology.n_sites, dtype=bool)
        if fallible_links is None:
            fallible_links = np.ones(topology.n_links, dtype=bool)
        fallible_sites = np.asarray(fallible_sites, dtype=bool)
        fallible_links = np.asarray(fallible_links, dtype=bool)
        if fallible_sites.shape != (topology.n_sites,):
            raise SimulationError(
                f"fallible_sites must have shape ({topology.n_sites},)"
            )
        if fallible_links.shape != (topology.n_links,):
            raise SimulationError(
                f"fallible_links must have shape ({topology.n_links},)"
            )
        self.fallible = np.concatenate([fallible_sites, fallible_links])

    # ------------------------------------------------------------------
    def deactivate(
        self,
        site_ids: Sequence[int] = (),
        link_ids: Sequence[int] = (),
    ) -> int:
        """Remove components from the fallible set.

        The chaos layer calls this for every component a fault schedule
        *owns*: a scripted partition that cuts a link at t=10 and heals it
        at t=40 must not race a stochastic repair of the same link at
        t=25. Must be called before :meth:`prime` /
        :meth:`prime_stationary`; returns the number of components newly
        deactivated.
        """
        removed = 0
        for site in site_ids:
            site = int(site)
            if not 0 <= site < self.topology.n_sites:
                raise SimulationError(f"cannot deactivate unknown site {site}")
            if self.fallible[site]:
                self.fallible[site] = False
                removed += 1
        for link in link_ids:
            link = int(link)
            if not 0 <= link < self.topology.n_links:
                raise SimulationError(f"cannot deactivate unknown link id {link}")
            component = self.topology.n_sites + link
            if self.fallible[component]:
                self.fallible[component] = False
                removed += 1
        return removed

    # ------------------------------------------------------------------
    def stationary_reliability(self) -> np.ndarray:
        """Per-component stationary up probability (1 for infallible ones)."""
        rel = self.mttf / (self.mttf + self.mttr)
        rel = rel.copy()
        rel[~self.fallible] = 1.0
        return rel

    def is_site_index(self, component: int) -> bool:
        return component < self.topology.n_sites

    def link_id_of(self, component: int) -> int:
        """Translate a component index into a link id."""
        if self.is_site_index(component):
            raise SimulationError(f"component {component} is a site, not a link")
        return component - self.topology.n_sites

    # ------------------------------------------------------------------
    def prime(self, queue: EventQueue, start_time: float = 0.0) -> None:
        """Schedule the first failure of every fallible component.

        The initial state is everything-up (the paper resets to the
        initial state before each batch); by memorylessness, starting
        every up-clock fresh at ``start_time`` is the correct conditional
        distribution given "all up at time 0".
        """
        indices = np.nonzero(self.fallible)[0]
        delays = self.rng.exponential(self.mttf[indices])
        for component, delay in zip(indices, delays):
            kind = (
                EventKind.SITE_FAIL
                if self.is_site_index(int(component))
                else EventKind.LINK_FAIL
            )
            target = (
                int(component)
                if self.is_site_index(int(component))
                else self.link_id_of(int(component))
            )
            queue.schedule(start_time + float(delay), kind, target)

    def prime_stationary(self, queue: EventQueue, start_time: float = 0.0):
        """Sample the stationary state and schedule matching transitions.

        Draws each fallible component up with its stationary probability
        ``mttf / (mttf + mttr)`` and schedules its next transition
        (failure if up, repair if down). Because both phase durations are
        exponential, this is *exactly* the time-stationary law of the
        alternating process — a batch started this way needs no warm-up
        at all, removing the transient bias the paper burns 100 000
        accesses to wash out.

        Returns ``(site_up, link_up)`` boolean masks for the caller to
        install into its :class:`~repro.connectivity.dynamic.NetworkState`.
        """
        site_up = np.ones(self.topology.n_sites, dtype=bool)
        link_up = np.ones(self.topology.n_links, dtype=bool)
        reliability = self.stationary_reliability()
        indices = np.nonzero(self.fallible)[0]
        draws = self.rng.random(indices.shape[0])
        for component, u in zip(indices, draws):
            component = int(component)
            up = bool(u < reliability[component])
            is_site = self.is_site_index(component)
            target = component if is_site else self.link_id_of(component)
            if up:
                delay = float(self.rng.exponential(self.mttf[component]))
                kind = EventKind.SITE_FAIL if is_site else EventKind.LINK_FAIL
            else:
                if is_site:
                    site_up[target] = False
                else:
                    link_up[target] = False
                delay = float(self.rng.exponential(self.mttr[component]))
                kind = EventKind.SITE_REPAIR if is_site else EventKind.LINK_REPAIR
            queue.schedule(start_time + delay, kind, target)
        return site_up, link_up

    def schedule_repair(self, queue: EventQueue, time: float, kind: EventKind, target: int) -> None:
        """After a failure at ``time``, schedule the matching repair."""
        component = target if kind is EventKind.SITE_FAIL else self.topology.n_sites + target
        delay = float(self.rng.exponential(self.mttr[component]))
        repair_kind = (
            EventKind.SITE_REPAIR if kind is EventKind.SITE_FAIL else EventKind.LINK_REPAIR
        )
        queue.schedule(time + delay, repair_kind, target)

    def schedule_failure(self, queue: EventQueue, time: float, kind: EventKind, target: int) -> None:
        """After a repair at ``time``, schedule the next failure."""
        component = target if kind is EventKind.SITE_REPAIR else self.topology.n_sites + target
        delay = float(self.rng.exponential(self.mttf[component]))
        fail_kind = (
            EventKind.SITE_FAIL if kind is EventKind.SITE_REPAIR else EventKind.LINK_FAIL
        )
        queue.schedule(time + delay, fail_kind, target)
