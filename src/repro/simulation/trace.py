"""Network-history traces: record, inspect, and replay failure histories.

A trace captures the sequence of topology-change events a simulation
produced, plus the initial network state. Uses:

- **debugging / observability** — inspect exactly which partitions
  occurred and when;
- **replay** — drive a :class:`~repro.connectivity.dynamic.NetworkState`
  through the same history to evaluate a *different* protocol on an
  identical failure sequence (paired comparison with zero
  failure-process variance — the strongest form of common random
  numbers);
- **serialization** — traces round-trip through plain dicts for storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.errors import SimulationError
from repro.simulation.events import Event, EventKind
from repro.topology.model import Topology

__all__ = ["NetworkTrace", "TraceReplayer", "TRACE_SCHEMA_VERSION"]

#: Serialized-trace schema version. v1 payloads predate the ``sources``
#: provenance list (and carry no ``schema`` key at all); v2 adds both.
TRACE_SCHEMA_VERSION = 2


@dataclass
class NetworkTrace:
    """An ordered record of topology-change events."""

    n_sites: int
    n_links: int
    initial_site_up: np.ndarray
    initial_link_up: np.ndarray
    events: List[Tuple[float, str, int]] = field(default_factory=list)
    #: Event provenance, parallel to ``events`` ("stochastic" or "chaos").
    #: Traces deserialized from older payloads default to all-stochastic.
    sources: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, topology: Topology,
              state: Optional[NetworkState] = None) -> "NetworkTrace":
        """A trace starting from ``state`` (default: everything up)."""
        if state is None:
            site_up = np.ones(topology.n_sites, dtype=bool)
            link_up = np.ones(topology.n_links, dtype=bool)
        else:
            site_up = state.site_up.copy()
            link_up = state.link_up.copy()
        return cls(topology.n_sites, topology.n_links, site_up, link_up)

    def record(self, event: Event) -> None:
        """Append one topology-change event (must be time-ordered)."""
        if not event.kind.is_topology_change:
            raise SimulationError(f"cannot record non-topology event {event.kind}")
        if self.events and event.time < self.events[-1][0]:
            raise SimulationError(
                f"event at {event.time} precedes last recorded time {self.events[-1][0]}"
            )
        self.events.append((event.time, event.kind.value, event.target))
        self.sources.append(getattr(event, "source", "stochastic"))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def duration(self) -> float:
        """Time of the last recorded event (0 for an empty trace)."""
        return self.events[-1][0] if self.events else 0.0

    def counts_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for _, kind, _ in self.events:
            out[kind] = out.get(kind, 0) + 1
        return out

    def counts_by_source(self) -> Dict[str, int]:
        """How many recorded events came from each provenance tag."""
        out: Dict[str, int] = {}
        for source in self._padded_sources():
            out[source] = out.get(source, 0) + 1
        return out

    def chaos_events(self) -> List[Tuple[float, str, int]]:
        """Only the injected (scripted) events — the *fault trace* proper."""
        return [
            event
            for event, source in zip(self.events, self._padded_sources())
            if source == "chaos"
        ]

    def _padded_sources(self) -> List[str]:
        """Sources aligned to len(events) for traces built without them.

        Pads with ``"stochastic"`` when short (pre-provenance traces) and
        truncates when long (never produced here, but a corrupt payload
        must not smear provenance onto events that don't exist).
        """
        n = len(self.events)
        missing = n - len(self.sources)
        if missing > 0:
            return self.sources + ["stochastic"] * missing
        if missing < 0:
            return self.sources[:n]
        return self.sources

    def to_dict(self) -> Dict:
        """JSON-compatible serialization (schema v2).

        ``sources`` is always emitted at exactly ``len(events)`` entries —
        including the empty-events case — so ``from_dict(to_dict(t))`` is
        the identity for any trace this class can produce.
        """
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "n_sites": self.n_sites,
            "n_links": self.n_links,
            "initial_site_up": self.initial_site_up.astype(int).tolist(),
            "initial_link_up": self.initial_link_up.astype(int).tolist(),
            "events": [[t, k, target] for t, k, target in self.events],
            "sources": list(self._padded_sources()),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "NetworkTrace":
        schema = int(payload.get("schema", 1))
        if not 1 <= schema <= TRACE_SCHEMA_VERSION:
            raise SimulationError(
                f"unsupported trace schema version {schema} "
                f"(this build reads 1..{TRACE_SCHEMA_VERSION})"
            )
        try:
            events = [(float(t), str(k), int(x)) for t, k, x in payload["events"]]
            sources = [str(s) for s in payload.get("sources", [])]
            if len(sources) > len(events):
                raise SimulationError(
                    f"trace dict has {len(events)} events but {len(sources)} sources"
                )
            if len(sources) < len(events):
                # v1 payloads (or hand-built dicts) lack provenance; align
                # eagerly so a later record() can't misattribute its source.
                sources = sources + ["stochastic"] * (len(events) - len(sources))
            return cls(
                n_sites=int(payload["n_sites"]),
                n_links=int(payload["n_links"]),
                initial_site_up=np.asarray(payload["initial_site_up"], dtype=bool),
                initial_link_up=np.asarray(payload["initial_link_up"], dtype=bool),
                events=events,
                sources=sources,
            )
        except KeyError as missing:
            raise SimulationError(f"trace dict missing key {missing}") from None


class TraceReplayer:
    """Drives a network state through a recorded trace.

    Iterating yields ``(epoch_start, epoch_end, tracker)`` triples — the
    constant-partition intervals between events, exactly the granularity
    the availability accounting works at. The tracker is live (it views
    the replayer's mutable state), so consumers must read what they need
    before advancing.
    """

    def __init__(self, topology: Topology, trace: NetworkTrace) -> None:
        if (topology.n_sites, topology.n_links) != (trace.n_sites, trace.n_links):
            raise SimulationError(
                f"trace was recorded on a ({trace.n_sites} sites, {trace.n_links} links) "
                f"network; topology has ({topology.n_sites}, {topology.n_links})"
            )
        self.topology = topology
        self.trace = trace

    def epochs(self, horizon: Optional[float] = None) -> Iterator[
        Tuple[float, float, ComponentTracker]
    ]:
        """Yield constant-partition epochs up to ``horizon``.

        ``horizon`` defaults to the trace duration; a longer horizon
        extends the final epoch (no further events occur).
        """
        end_time = self.trace.duration() if horizon is None else float(horizon)
        state = NetworkState(
            self.topology,
            self.trace.initial_site_up,
            self.trace.initial_link_up,
        )
        tracker = ComponentTracker(state)
        now = 0.0
        for time, kind_value, target in self.trace.events:
            if time > end_time:
                break
            if time > now:
                yield now, min(time, end_time), tracker
                now = time
            self._apply(state, EventKind(kind_value), target)
        if now < end_time:
            yield now, end_time, tracker

    @staticmethod
    def _apply(state: NetworkState, kind: EventKind, target: int) -> None:
        if kind is EventKind.SITE_FAIL:
            state.fail_site(target)
        elif kind is EventKind.SITE_REPAIR:
            state.repair_site(target)
        elif kind is EventKind.LINK_FAIL:
            state.fail_link(target)
        elif kind is EventKind.LINK_REPAIR:
            state.repair_link(target)
        else:
            raise SimulationError(f"cannot replay event kind {kind}")

    def availability_of(self, protocol, alpha: float) -> float:
        """Time-weighted ACC of ``protocol`` over the whole trace.

        Uses the expected-value accounting (the trace fixes the failure
        history; access sampling would only add noise). Assumes the
        paper's uniform access distribution.
        """
        if not 0.0 <= alpha <= 1.0:
            raise SimulationError(f"alpha must be in [0, 1], got {alpha}")
        protocol.reset()
        total_time = 0.0
        weighted = 0.0
        n = self.topology.n_sites
        for start, end, tracker in self.epochs():
            protocol.on_network_change(tracker)
            read_mask, write_mask = protocol.grant_masks(tracker)
            duration = end - start
            grant_fraction = (
                alpha * float(read_mask.sum()) / n
                + (1.0 - alpha) * float(write_mask.sum()) / n
            )
            weighted += duration * grant_fraction
            total_time += duration
        if total_time <= 0:
            raise SimulationError("trace carries no time to evaluate over")
        return weighted / total_time
