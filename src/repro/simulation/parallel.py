"""Process-pool batch fan-out (DESIGN.md §8).

Batches are independent by construction — every random stream a batch
touches derives from ``(config.seed, batch_index)`` alone — so a run is
embarrassingly parallel across batches. This module owns the worker
protocol shared by :func:`~repro.simulation.runner.run_simulation` and
:func:`~repro.faults.chaos.run_chaos_campaign`:

- The pool is initialized once per worker process with the pickled
  ``(config, protocol)`` pair plus the recording options; each task then
  ships only a ``(slot, batch_index)`` pair.
- Every batch builds a *fresh* engine, telemetry recorder, and invariant
  monitor inside the worker, and returns a plain-data
  :class:`BatchOutcome`. Per-batch (rather than per-worker) recording is
  what keeps the merge deterministic: outcomes are sorted by batch index
  before any aggregation, so counters, audit totals, and pooled
  densities are added in exactly the serial order regardless of how the
  pool scheduled the work.
- **Result transport**: by default each batch's numeric payload (the
  tallies, both density-weight matrices, and the max-votes histogram)
  is written into a preallocated shared-memory slot
  (:mod:`repro.simulation.shm`) and only a slim index/metadata record
  crosses the pickle pipe; the dispatcher rehydrates ``BatchResult``
  objects from the slots. Raw ``float64`` crosses untouched, so results
  are bitwise identical to the pickle path. Telemetry snapshots,
  invariant violations, and quarantined errors are structural and stay
  pickled. ``REPRO_POOL_TRANSPORT=pickle|shm|auto`` forces a transport;
  ``auto`` (default) uses shared memory when the platform supports it
  and falls back to pickle otherwise.
- Telemetry snapshots merge via
  :meth:`~repro.telemetry.snapshot.TelemetrySnapshot.merged`; monitor
  state merges via :func:`merge_monitor_outcomes`, which respects the
  parent monitor's ``max_records`` cap (overflow is counted, not
  stored, exactly like the live monitor).

Callback-style options (``change_observer``, a pre-populated custom
``monitor``) cannot cross a process boundary; callers reject them
before fanning out.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BatchExecutionError, SimulationError
from repro.faults.monitor import InvariantMonitor, ViolationRecord
from repro.protocols.base import ReplicaControlProtocol
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import BatchResult, SimulationEngine
from repro.simulation.shm import BatchSlotLayout, SlotPool, shm_supported
from repro.telemetry import recorder
from repro.telemetry.recorder import Telemetry
from repro.telemetry.snapshot import TelemetrySnapshot
from repro.tracing.context import SCOPE_BATCH, TraceContext

__all__ = [
    "BatchOutcome",
    "run_batches_parallel",
    "merge_monitor_outcomes",
    "resolve_transport",
]

#: Environment knob forcing the result transport.
TRANSPORT_ENV = "REPRO_POOL_TRANSPORT"


@dataclass
class BatchOutcome:
    """Plain-data result of one batch executed in a worker process."""

    batch_index: int
    #: Exactly one of ``batch`` / ``quarantine_error`` is set once the
    #: dispatcher has rehydrated shared-memory slots.
    batch: Optional[BatchResult] = None
    quarantine_error: Optional[BatchExecutionError] = None
    #: Per-batch telemetry capture (None when recording was off).
    snapshot: Optional[TelemetrySnapshot] = None
    #: Invariant-monitor state (None when no monitor was attached).
    violations: Optional[List[ViolationRecord]] = None
    checks_run: int = 0
    overflowed: int = 0
    #: Shared-memory slot holding the batch's numeric payload while the
    #: outcome is in flight (None on the pickle transport).
    slot: Optional[int] = None


def resolve_transport(requested: Optional[str] = None) -> str:
    """``"shm"`` or ``"pickle"``: the transport this run will use.

    ``requested`` (or :data:`TRANSPORT_ENV`) may be ``"shm"``,
    ``"pickle"``, or ``"auto"``; ``auto`` probes platform support.
    """
    choice = (requested or os.environ.get(TRANSPORT_ENV, "auto")).lower()
    if choice not in ("auto", "shm", "pickle"):
        raise SimulationError(
            f"unknown pool transport {choice!r}; choose auto, shm, or pickle"
        )
    if choice == "auto":
        return "shm" if shm_supported() else "pickle"
    return choice


# Per-worker-process state, installed by the pool initializer. A module
# global is the standard ProcessPoolExecutor idiom: the heavyweight
# (config, protocol) pair is pickled once per worker instead of once per
# batch.
_WORKER: Dict[str, object] = {}


def _init_worker(
    config: SimulationConfig,
    protocol: ReplicaControlProtocol,
    record_telemetry: bool,
    monitor_kwargs: Optional[dict],
    trace_parent: Optional[int] = None,
    shm_spec: Optional[Tuple[str, int, int, int]] = None,
) -> None:
    _WORKER["config"] = config
    _WORKER["protocol"] = protocol
    _WORKER["record_telemetry"] = record_telemetry
    _WORKER["monitor_kwargs"] = monitor_kwargs
    _WORKER["trace_parent"] = trace_parent
    _WORKER["shm_spec"] = shm_spec
    _WORKER.pop("slot_pool", None)


def _worker_slot_pool() -> Optional[SlotPool]:
    """Attach this worker to the dispatcher's slot pool (once)."""
    spec = _WORKER.get("shm_spec")
    if spec is None:
        return None
    pool = _WORKER.get("slot_pool")
    if pool is None:
        name, slot_floats, n_slots, _ = spec  # type: ignore[misc]
        pool = SlotPool.attach(name, slot_floats, n_slots)
        _WORKER["slot_pool"] = pool
    return pool  # type: ignore[return-value]


def _run_one_batch(task: Tuple[int, int]) -> BatchOutcome:
    slot_index, batch_index = task
    config: SimulationConfig = _WORKER["config"]  # type: ignore[assignment]
    protocol: ReplicaControlProtocol = _WORKER["protocol"]  # type: ignore[assignment]
    telemetry = Telemetry() if _WORKER["record_telemetry"] else None
    monitor_kwargs = _WORKER["monitor_kwargs"]
    monitor = (
        InvariantMonitor(telemetry=telemetry, **monitor_kwargs)  # type: ignore[arg-type]
        if monitor_kwargs is not None
        else None
    )
    if monitor is not None:
        monitor.start_batch(batch_index, seed=config.seed)
    engine = SimulationEngine(
        config,
        protocol,
        change_observer=monitor.observe if monitor is not None else None,
        telemetry=telemetry,
    )
    outcome = BatchOutcome(batch_index=batch_index)
    try:
        if telemetry is not None:
            # Batch-scope trace context: span ids derive from
            # (seed, batch_index, ordinal) and worker-root spans adopt
            # the dispatching span as parent, so the merged tree is
            # identical to a serial run's. `use` makes the recorder
            # visible to kernels that resolve via recorder.current().
            context = TraceContext(config.seed, SCOPE_BATCH, batch_index,
                                   _WORKER.get("trace_parent"))
            with recorder.use(telemetry), telemetry.spans.scoped(context):
                outcome.batch = engine.run_batch(batch_index)
        else:
            outcome.batch = engine.run_batch(batch_index)
    except BatchExecutionError as exc:
        # Break the traceback/cause chain before pickling: the cause may
        # hold arbitrary (unpicklable) protocol state. The quarantine
        # machinery only reads type/message, which we bake into a fresh
        # cause of the same class name.
        cause = exc.__cause__
        clean = BatchExecutionError(
            exc.message,
            batch_index=exc.batch_index,
            trace=exc.trace,
            sim_time=exc.sim_time,
            seed=exc.seed,
            snapshot=exc.snapshot,
        )
        if cause is not None:
            clean.__cause__ = type(cause)(str(cause)) if _safe_cause(cause) else None
            if clean.__cause__ is None:
                clean.__cause__ = RuntimeError(f"{type(cause).__name__}: {cause}")
        outcome.quarantine_error = clean
    if telemetry is not None:
        outcome.snapshot = telemetry.snapshot(meta={"batch_index": batch_index})
    if monitor is not None:
        outcome.violations = monitor.violations
        outcome.checks_run = monitor.checks_run
        outcome.overflowed = monitor.overflowed
    # Shared-memory transport: park the numeric payload in this task's
    # slot and cross the pipe with metadata only. (Batches carrying a
    # recorded trace would need the structural path, but parallel
    # workers never record traces.)
    pool = _worker_slot_pool()
    if pool is not None and outcome.batch is not None \
            and outcome.batch.trace is None:
        layout = _slot_layout(config)
        layout.pack(pool.slot(slot_index), outcome.batch)
        outcome.batch = None
        outcome.slot = slot_index
    return outcome


def _slot_layout(config: SimulationConfig) -> BatchSlotLayout:
    """Both sides derive the identical layout from the config alone."""
    topology = config.topology
    return BatchSlotLayout(n_sites=topology.n_sites,
                           total_votes=topology.total_votes)


def _safe_cause(cause: BaseException) -> bool:
    """Can ``type(cause)(str(cause))`` plausibly reconstruct the cause?"""
    try:
        type(cause)(str(cause))
        return True
    except Exception:
        return False


def run_batches_parallel(
    config: SimulationConfig,
    protocol: ReplicaControlProtocol,
    batch_indices: Sequence[int],
    n_workers: int,
    record_telemetry: bool = False,
    monitor_kwargs: Optional[dict] = None,
    trace_parent: Optional[int] = None,
    transport: Optional[str] = None,
    transport_stats: Optional[dict] = None,
) -> List[BatchOutcome]:
    """Fan ``batch_indices`` out over a process pool; outcomes in index order.

    ``monitor_kwargs`` (e.g. ``{"max_records": 1000}``) attaches a fresh
    :class:`InvariantMonitor` per batch inside each worker; ``None``
    means no monitoring. ``trace_parent`` is the dispatching span id
    (``BatchTracer.root_id``) that worker-local root spans re-parent
    under. The returned list is sorted by batch index, so every
    downstream aggregation is deterministic regardless of pool
    scheduling.

    ``transport`` overrides the :data:`TRANSPORT_ENV` knob for this run;
    ``transport_stats``, when given a dict, is filled with the transport
    actually used and the bytes that crossed the pickle pipe (the
    benchmark gate asserts the shared-memory reduction on these).
    """
    indices = list(batch_indices)
    mode = resolve_transport(transport)
    layout = _slot_layout(config)
    slot_pool: Optional[SlotPool] = None
    shm_spec: Optional[Tuple[str, int, int, int]] = None
    if mode == "shm" and indices:
        try:
            slot_pool = SlotPool.create(layout.slot_floats, len(indices))
            shm_spec = (slot_pool.name, layout.slot_floats, len(indices),
                        layout.n_sites)
        except OSError:
            # Platform refused the segment (permissions, exhausted
            # /dev/shm, ...): degrade to the pickle transport.
            mode = "pickle"
            slot_pool = None
            shm_spec = None

    tasks = list(enumerate(indices))
    try:
        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(indices)),
            initializer=_init_worker,
            initargs=(config, protocol, record_telemetry, monitor_kwargs,
                      trace_parent, shm_spec),
        ) as pool:
            outcomes = list(pool.map(_run_one_batch, tasks))
        if transport_stats is not None:
            # What actually crossed the pipe: the outcomes as the pool
            # pickled them (slim records under shm, full payloads under
            # pickle). Measured before rehydration.
            transport_stats["transport"] = mode
            transport_stats["pickled_bytes"] = sum(
                len(pickle.dumps(o, protocol=pickle.HIGHEST_PROTOCOL))
                for o in outcomes
            )
            transport_stats["n_batches"] = len(outcomes)
            transport_stats["slot_bytes"] = (
                layout.slot_bytes * len(indices) if slot_pool is not None else 0
            )
        if slot_pool is not None:
            for outcome in outcomes:
                if outcome.slot is not None:
                    outcome.batch = layout.unpack(slot_pool.slot(outcome.slot))
                    outcome.slot = None
    finally:
        if slot_pool is not None:
            slot_pool.close()
    outcomes.sort(key=lambda outcome: outcome.batch_index)
    return outcomes


def merge_monitor_outcomes(monitor: InvariantMonitor,
                           outcomes: Sequence[BatchOutcome]) -> None:
    """Fold per-batch monitor state into the campaign's parent monitor.

    Violations append in batch-index order up to the parent's
    ``max_records`` cap (the remainder is counted as overflow, matching
    live-monitor semantics); check and overflow counts add.
    """
    for outcome in outcomes:
        if outcome.violations is None:
            continue
        monitor.checks_run += outcome.checks_run
        monitor.overflowed += outcome.overflowed
        for violation in outcome.violations:
            if len(monitor.violations) >= monitor.max_records:
                monitor.overflowed += 1
            else:
                monitor.violations.append(violation)
