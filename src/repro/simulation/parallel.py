"""Process-pool batch fan-out (DESIGN.md §8).

Batches are independent by construction — every random stream a batch
touches derives from ``(config.seed, batch_index)`` alone — so a run is
embarrassingly parallel across batches. This module owns the worker
protocol shared by :func:`~repro.simulation.runner.run_simulation` and
:func:`~repro.faults.chaos.run_chaos_campaign`:

- The pool is initialized once per worker process with the pickled
  ``(config, protocol)`` pair plus the recording options; each task then
  ships only a batch index.
- Every batch builds a *fresh* engine, telemetry recorder, and invariant
  monitor inside the worker, and returns a plain-data
  :class:`BatchOutcome`. Per-batch (rather than per-worker) recording is
  what keeps the merge deterministic: outcomes are sorted by batch index
  before any aggregation, so counters, audit totals, and pooled
  densities are added in exactly the serial order regardless of how the
  pool scheduled the work.
- Telemetry snapshots merge via
  :meth:`~repro.telemetry.snapshot.TelemetrySnapshot.merged`; monitor
  state merges via :func:`merge_monitor_outcomes`, which respects the
  parent monitor's ``max_records`` cap (overflow is counted, not
  stored, exactly like the live monitor).

Callback-style options (``change_observer``, a pre-populated custom
``monitor``) cannot cross a process boundary; callers reject them
before fanning out.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import BatchExecutionError
from repro.faults.monitor import InvariantMonitor, ViolationRecord
from repro.protocols.base import ReplicaControlProtocol
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import BatchResult, SimulationEngine
from repro.telemetry import recorder
from repro.telemetry.recorder import Telemetry
from repro.telemetry.snapshot import TelemetrySnapshot
from repro.tracing.context import SCOPE_BATCH, TraceContext

__all__ = [
    "BatchOutcome",
    "run_batches_parallel",
    "merge_monitor_outcomes",
]


@dataclass
class BatchOutcome:
    """Plain-data result of one batch executed in a worker process."""

    batch_index: int
    #: Exactly one of ``batch`` / ``quarantine_error`` is set.
    batch: Optional[BatchResult] = None
    quarantine_error: Optional[BatchExecutionError] = None
    #: Per-batch telemetry capture (None when recording was off).
    snapshot: Optional[TelemetrySnapshot] = None
    #: Invariant-monitor state (None when no monitor was attached).
    violations: Optional[List[ViolationRecord]] = None
    checks_run: int = 0
    overflowed: int = 0


# Per-worker-process state, installed by the pool initializer. A module
# global is the standard ProcessPoolExecutor idiom: the heavyweight
# (config, protocol) pair is pickled once per worker instead of once per
# batch.
_WORKER: Dict[str, object] = {}


def _init_worker(
    config: SimulationConfig,
    protocol: ReplicaControlProtocol,
    record_telemetry: bool,
    monitor_kwargs: Optional[dict],
    trace_parent: Optional[int] = None,
) -> None:
    _WORKER["config"] = config
    _WORKER["protocol"] = protocol
    _WORKER["record_telemetry"] = record_telemetry
    _WORKER["monitor_kwargs"] = monitor_kwargs
    _WORKER["trace_parent"] = trace_parent


def _run_one_batch(batch_index: int) -> BatchOutcome:
    config: SimulationConfig = _WORKER["config"]  # type: ignore[assignment]
    protocol: ReplicaControlProtocol = _WORKER["protocol"]  # type: ignore[assignment]
    telemetry = Telemetry() if _WORKER["record_telemetry"] else None
    monitor_kwargs = _WORKER["monitor_kwargs"]
    monitor = (
        InvariantMonitor(telemetry=telemetry, **monitor_kwargs)  # type: ignore[arg-type]
        if monitor_kwargs is not None
        else None
    )
    if monitor is not None:
        monitor.start_batch(batch_index, seed=config.seed)
    engine = SimulationEngine(
        config,
        protocol,
        change_observer=monitor.observe if monitor is not None else None,
        telemetry=telemetry,
    )
    outcome = BatchOutcome(batch_index=batch_index)
    try:
        if telemetry is not None:
            # Batch-scope trace context: span ids derive from
            # (seed, batch_index, ordinal) and worker-root spans adopt
            # the dispatching span as parent, so the merged tree is
            # identical to a serial run's. `use` makes the recorder
            # visible to kernels that resolve via recorder.current().
            context = TraceContext(config.seed, SCOPE_BATCH, batch_index,
                                   _WORKER.get("trace_parent"))
            with recorder.use(telemetry), telemetry.spans.scoped(context):
                outcome.batch = engine.run_batch(batch_index)
        else:
            outcome.batch = engine.run_batch(batch_index)
    except BatchExecutionError as exc:
        # Break the traceback/cause chain before pickling: the cause may
        # hold arbitrary (unpicklable) protocol state. The quarantine
        # machinery only reads type/message, which we bake into a fresh
        # cause of the same class name.
        cause = exc.__cause__
        clean = BatchExecutionError(
            exc.message,
            batch_index=exc.batch_index,
            trace=exc.trace,
            sim_time=exc.sim_time,
            seed=exc.seed,
            snapshot=exc.snapshot,
        )
        if cause is not None:
            clean.__cause__ = type(cause)(str(cause)) if _safe_cause(cause) else None
            if clean.__cause__ is None:
                clean.__cause__ = RuntimeError(f"{type(cause).__name__}: {cause}")
        outcome.quarantine_error = clean
    if telemetry is not None:
        outcome.snapshot = telemetry.snapshot(meta={"batch_index": batch_index})
    if monitor is not None:
        outcome.violations = monitor.violations
        outcome.checks_run = monitor.checks_run
        outcome.overflowed = monitor.overflowed
    return outcome


def _safe_cause(cause: BaseException) -> bool:
    """Can ``type(cause)(str(cause))`` plausibly reconstruct the cause?"""
    try:
        type(cause)(str(cause))
        return True
    except Exception:
        return False


def run_batches_parallel(
    config: SimulationConfig,
    protocol: ReplicaControlProtocol,
    batch_indices: Sequence[int],
    n_workers: int,
    record_telemetry: bool = False,
    monitor_kwargs: Optional[dict] = None,
    trace_parent: Optional[int] = None,
) -> List[BatchOutcome]:
    """Fan ``batch_indices`` out over a process pool; outcomes in index order.

    ``monitor_kwargs`` (e.g. ``{"max_records": 1000}``) attaches a fresh
    :class:`InvariantMonitor` per batch inside each worker; ``None``
    means no monitoring. ``trace_parent`` is the dispatching span id
    (``BatchTracer.root_id``) that worker-local root spans re-parent
    under. The returned list is sorted by batch index, so every
    downstream aggregation is deterministic regardless of pool
    scheduling.
    """
    indices = list(batch_indices)
    with ProcessPoolExecutor(
        max_workers=min(n_workers, len(indices)),
        initializer=_init_worker,
        initargs=(config, protocol, record_telemetry, monitor_kwargs,
                  trace_parent),
    ) as pool:
        outcomes = list(pool.map(_run_one_batch, indices))
    outcomes.sort(key=lambda outcome: outcome.batch_index)
    return outcomes


def merge_monitor_outcomes(monitor: InvariantMonitor,
                           outcomes: Sequence[BatchOutcome]) -> None:
    """Fold per-batch monitor state into the campaign's parent monitor.

    Violations append in batch-index order up to the parent's
    ``max_records`` cap (the remainder is counted as overflow, matching
    live-monitor semantics); check and overflow counts add.
    """
    for outcome in outcomes:
        if outcome.violations is None:
            continue
        monitor.checks_run += outcome.checks_run
        monitor.overflowed += outcome.overflowed
        for violation in outcome.violations:
            if len(monitor.violations) >= monitor.max_records:
                monitor.overflowed += 1
            else:
                monitor.violations.append(violation)
