"""The discrete-event simulation engine.

One *batch* reproduces the paper's procedure: reset the network to the
all-up initial state, run a warm-up period, then measure availability
over a long access stream. The engine advances epoch by epoch (an epoch
is the interval between consecutive failure/repair events), asking the
replica-control protocol for its per-site grant masks once per epoch and
accounting for the epoch's accesses in bulk — statistically identical to
per-access event simulation because the access process is Poisson
(splitting/superposition), but orders of magnitude faster.

Deviation from the paper, recorded in DESIGN.md: the paper measures for a
fixed *count* of accesses (1 000 000); we measure for the fixed simulated
*time* that carries that many accesses in expectation. For steady-state
means the two stopping rules estimate the same quantity; the batch-means
confidence interval absorbs the difference.

The engine reports, per batch:

- ACC (the paper's availability): granted / submitted accesses, split by
  reads and writes;
- SURV for reads and for writes: fraction of *time* some site could
  perform the access — the paper's alternative metric (section 3);
- the empirical density matrices ``f_i`` in both time-weighted and
  access-weighted forms, which feed the Figure-1 algorithm exactly as
  the paper's on-line estimation does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Optional

import numpy as np

from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.errors import BatchExecutionError, SimulationError
from repro.protocols.base import ReplicaControlProtocol
from repro.protocols.estimator import OnlineDensityEstimator
from repro.rng import spawn, stream_for
from repro.simulation.config import SimulationConfig
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.processes import FailureProcesses
from repro.simulation.trace import NetworkTrace
from repro.telemetry import audit as _audit
from repro.telemetry.recorder import resolve as _resolve_telemetry

__all__ = ["BatchResult", "SimulationEngine", "simulate_batch"]

#: Observer signature: called after every applied topology event.
ChangeObserver = Callable[[float, ComponentTracker, ReplicaControlProtocol], None]


@dataclass
class BatchResult:
    """Measurements from one simulated batch."""

    #: Submitted / granted access volumes (floats: expected-value mode
    #: produces fractional volumes).
    reads_submitted: float
    reads_granted: float
    writes_submitted: float
    writes_granted: float
    #: Fraction of measured time some site could read / write.
    surv_read: float
    surv_write: float
    #: Measured simulated time and epoch/event counts (observability).
    measured_time: float
    n_epochs: int
    n_events: int
    #: Empirical per-site densities over component vote totals.
    density_time: OnlineDensityEstimator
    density_access: OnlineDensityEstimator
    #: Time-weighted histogram of the LARGEST component's vote total —
    #: the distribution the paper's footnote 3 says to substitute into
    #: the Figure-1 algorithm to optimize for SURV instead of ACC.
    max_votes_time: np.ndarray = field(default_factory=lambda: np.zeros(1))
    #: Recorded failure history (present when the engine was constructed
    #: with ``record_trace=True``); replayable via simulation.trace.
    trace: Optional["NetworkTrace"] = None

    @property
    def accesses_submitted(self) -> float:
        return self.reads_submitted + self.writes_submitted

    @property
    def accesses_granted(self) -> float:
        return self.reads_granted + self.writes_granted

    @property
    def availability(self) -> float:
        """ACC: fraction of all submitted accesses granted."""
        total = self.accesses_submitted
        return self.accesses_granted / total if total > 0 else 0.0

    @property
    def read_availability(self) -> float:
        return self.reads_granted / self.reads_submitted if self.reads_submitted > 0 else 0.0

    @property
    def write_availability(self) -> float:
        return (
            self.writes_granted / self.writes_submitted
            if self.writes_submitted > 0
            else 0.0
        )


class SimulationEngine:
    """Runs batches of the paper's simulation for one protocol."""

    def __init__(
        self,
        config: SimulationConfig,
        protocol: ReplicaControlProtocol,
        change_observer: Optional[ChangeObserver] = None,
        record_trace: bool = False,
        fault_schedule: Optional[object] = None,
        telemetry: Optional[object] = None,
    ) -> None:
        self.config = config
        self.protocol = protocol
        self.change_observer = change_observer
        self.record_trace = record_trace
        #: Telemetry recorder (DESIGN.md §7). Defaults to the current
        #: module-level recorder, which is the no-op null recorder unless
        #: one was activated; the disabled path costs a single boolean
        #: check per instrumentation site.
        self.telemetry = _resolve_telemetry(telemetry)
        bind = getattr(protocol, "bind_telemetry", None)
        if bind is not None:
            bind(self.telemetry)
        #: Scripted chaos injectors; an explicit argument overrides the
        #: config's. Components a schedule owns are removed from the
        #: stochastic fallible set for the whole batch.
        self.fault_schedule = (
            fault_schedule
            if fault_schedule is not None
            else getattr(config, "fault_schedule", None)
        )

    # ------------------------------------------------------------------
    def run_batch(self, batch_index: int) -> BatchResult:
        """Simulate warm-up plus one measured batch.

        Each batch gets independent random streams derived from
        ``(config.seed, batch_index)``, so results do not depend on how
        many batches run or in what order.
        """
        tel = self.telemetry
        tel.start_batch(batch_index)
        with tel.span("engine.run_batch", batch=batch_index,
                      protocol=self.protocol.name):
            return self._run_batch(batch_index)

    def _run_batch(self, batch_index: int) -> BatchResult:
        cfg = self.config
        topo = cfg.topology
        batch_seed = stream_for(cfg.seed, batch_index) if cfg.seed is not None else None
        # Three substreams are always drawn so that runs with and without
        # a fault schedule share identical failure/access streams for the
        # same seed (the first children of a stream do not depend on how
        # many siblings follow).
        failure_rng, access_rng, chaos_rng = spawn(batch_seed, 3)

        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        self.protocol.reset()

        tel = self.telemetry
        queue = EventQueue()
        processes = FailureProcesses(
            topo,
            cfg.mean_time_to_failure,
            cfg.mean_time_to_repair,
            seed=failure_rng,
            fallible_sites=cfg.fallible_sites,
            fallible_links=cfg.fallible_links,
        )
        schedule = self.fault_schedule
        if schedule is not None:
            owned_sites, owned_links = schedule.owned_components(topo)
            processes.deactivate(owned_sites, owned_links)
        with tel.span("engine.prime", initial_state=cfg.initial_state):
            if cfg.initial_state == "stationary":
                site_up, link_up = processes.prime_stationary(queue)
                for site in np.nonzero(~site_up)[0]:
                    state.fail_site(int(site))
                for link in np.nonzero(~link_up)[0]:
                    state.fail_link(int(link))
            else:
                processes.prime(queue)
        if schedule is not None:
            with tel.span("engine.apply_schedule"):
                schedule.prime(queue, topo, chaos_rng)
        self.protocol.on_network_change(tracker)

        # The trace is always recorded internally: on a mid-batch failure
        # it rides along in the BatchExecutionError so the campaign runner
        # can quarantine the batch with a replayable fault history. It is
        # only *returned* when the caller opted in via record_trace.
        trace = NetworkTrace.empty(topo, state)

        warmup_end = cfg.warmup_time
        horizon = warmup_end + cfg.batch_time

        totals_T = topo.total_votes
        density_time = OnlineDensityEstimator(topo.n_sites, totals_T)
        density_access = OnlineDensityEstimator(topo.n_sites, totals_T)
        max_votes_time = np.zeros(totals_T + 1, dtype=np.float64)

        sampled = cfg.accounting == "sampled"
        workload = cfg.workload
        counters = _EpochCounters()

        try:
            self._measure_loop(
                queue, state, tracker, processes, trace,
                warmup_end, horizon, sampled, workload,
                access_rng, density_time, density_access, max_votes_time,
                counters,
            )
        except Exception as exc:
            raise BatchExecutionError(
                f"batch {batch_index} aborted: {type(exc).__name__}: {exc}",
                batch_index=batch_index,
                sim_time=trace.duration(),
                seed=cfg.seed,
                trace=trace,
                snapshot=_failure_snapshot(state),
            ) from exc

        measured_time = horizon - warmup_end
        return BatchResult(
            reads_submitted=counters.reads_submitted,
            reads_granted=counters.reads_granted,
            writes_submitted=counters.writes_submitted,
            writes_granted=counters.writes_granted,
            surv_read=(
                counters.surv_read_time / measured_time if measured_time > 0 else 0.0
            ),
            surv_write=(
                counters.surv_write_time / measured_time if measured_time > 0 else 0.0
            ),
            measured_time=measured_time,
            n_epochs=counters.n_epochs,
            n_events=counters.n_events,
            density_time=density_time,
            density_access=density_access,
            max_votes_time=max_votes_time,
            trace=trace if self.record_trace else None,
        )

    # ------------------------------------------------------------------
    def _measure_loop(
        self,
        queue: EventQueue,
        state: NetworkState,
        tracker: ComponentTracker,
        processes: FailureProcesses,
        trace: "NetworkTrace",
        warmup_end: float,
        horizon: float,
        sampled: bool,
        workload,
        access_rng,
        density_time: OnlineDensityEstimator,
        density_access: OnlineDensityEstimator,
        max_votes_time: np.ndarray,
        counters: "_EpochCounters",
    ) -> float:
        """The epoch loop; returns the sim time reached (for error context)."""
        # Telemetry is resolved once; the disabled path adds exactly one
        # boolean test per instrumentation site (CI smoke-checks <5%).
        instruments = (
            _EngineInstruments(self.telemetry) if self.telemetry.enabled else None
        )
        now = 0.0
        while now < horizon:
            epoch_end = min(queue.peek_time(), horizon) if queue else horizon
            # Split an epoch straddling the warm-up boundary so the
            # measured part is accounted exactly.
            if now < warmup_end < epoch_end:
                epoch_end = warmup_end
            duration = epoch_end - now
            measuring = now >= warmup_end

            if duration > 0 and measuring:
                vote_totals = tracker.vote_totals
                if instruments is None:
                    read_mask, write_mask = self.protocol.grant_masks(tracker)
                else:
                    wall0 = perf_counter()
                    read_mask, write_mask = self.protocol.grant_masks(tracker)
                    instruments.grant_seconds.observe(perf_counter() - wall0)
                # PhasedWorkload exposes .at(time); plain workloads are
                # constant. Phase times are measured from the warm-up end
                # so schedules are independent of the warm-up length.
                active = (
                    workload.at(now - warmup_end)
                    if hasattr(workload, "at")
                    else workload
                )
                if sampled:
                    reads, writes = active.sample_epoch(duration, access_rng)
                else:
                    reads, writes = active.expected_epoch(duration)
                counters.reads_submitted += float(reads.sum())
                counters.writes_submitted += float(writes.sum())
                counters.reads_granted += float(reads[read_mask].sum())
                counters.writes_granted += float(writes[write_mask].sum())
                if read_mask.any():
                    counters.surv_read_time += duration
                if write_mask.any():
                    counters.surv_write_time += duration
                density_time.observe_all(vote_totals, weight=duration)
                density_access.observe_counts(vote_totals, reads + writes)
                max_votes_time[int(vote_totals.max()) if vote_totals.size else 0] += duration
                # Self-tuning protocols (AdaptiveQuorumProtocol) learn from
                # the same epoch observations the engine accounts with.
                epoch_hook = getattr(self.protocol, "record_epoch", None)
                if epoch_hook is not None:
                    epoch_hook(tracker, duration, reads=reads, writes=writes)
                counters.n_epochs += 1
                if instruments is not None:
                    instruments.account_epoch(
                        now, duration, reads, writes, read_mask, write_mask,
                        tracker, state, self.protocol,
                    )

            now = epoch_end
            if now >= horizon:
                break
            # Apply every event scheduled at exactly this instant.
            while queue and queue.peek_time() <= now:
                event = queue.pop()
                self._apply(event, state, processes, queue)
                trace.record(event)
                counters.n_events += 1
                if instruments is not None:
                    instruments.events.inc(kind=event.kind.value,
                                           source=event.source)
            if instruments is None:
                self.protocol.on_network_change(tracker)
            else:
                wall0 = perf_counter()
                self.protocol.on_network_change(tracker)
                instruments.recompute_seconds.observe(perf_counter() - wall0)
            if self.change_observer is not None:
                self.change_observer(now, tracker, self.protocol)
        return now

    # ------------------------------------------------------------------
    @staticmethod
    def _apply(
        event: Event,
        state: NetworkState,
        processes: FailureProcesses,
        queue: EventQueue,
    ) -> None:
        kind = event.kind
        chaos = event.is_chaos
        # Chaos events are applied verbatim: the fault schedule owns the
        # component's entire future (including repairs), so no stochastic
        # follow-up is scheduled for them.
        if kind is EventKind.SITE_FAIL:
            state.fail_site(event.target)
            if not chaos:
                processes.schedule_repair(queue, event.time, kind, event.target)
        elif kind is EventKind.SITE_REPAIR:
            state.repair_site(event.target)
            if not chaos:
                processes.schedule_failure(queue, event.time, kind, event.target)
        elif kind is EventKind.LINK_FAIL:
            state.fail_link(event.target)
            if not chaos:
                processes.schedule_repair(queue, event.time, kind, event.target)
        elif kind is EventKind.LINK_REPAIR:
            state.repair_link(event.target)
            if not chaos:
                processes.schedule_failure(queue, event.time, kind, event.target)
        else:
            raise SimulationError(f"engine cannot apply event kind {kind}")


class _EngineInstruments:
    """Pre-registered metric handles plus the per-epoch audit attributor.

    Only constructed when telemetry is enabled, so the disabled engine
    never touches a registry. The audit attribution decomposes the bulk
    epoch accounting by denial cause: ``site_down`` (the submitting site
    itself is down), ``stale_assignment`` (the site's component holds an
    assignment version older than the newest installed one — versioned
    protocols only), and ``no_quorum`` (everything else). The per-cause
    volumes sum exactly to the epoch's denied access volume, which is
    what makes the run's ACC reconcile against the audit log.
    """

    def __init__(self, telemetry) -> None:
        self.telemetry = telemetry
        metrics = telemetry.metrics
        self.epochs = metrics.counter(
            "repro_engine_epochs_total", "measured epochs accounted")
        self.events = metrics.counter(
            "repro_engine_events_total", "topology events applied, by kind/source")
        self.accesses = metrics.counter(
            "repro_engine_accesses_total", "access volume by op and decision")
        self.estimator_updates = metrics.counter(
            "repro_engine_estimator_updates_total",
            "on-line density estimator update calls")
        self.epoch_sim_time = metrics.histogram(
            "repro_engine_epoch_sim_time", "simulated duration of measured epochs")
        self.grant_seconds = metrics.histogram(
            "repro_engine_grant_mask_seconds",
            "wall time of protocol grant-mask evaluation (quorum checks)")
        self.recompute_seconds = metrics.histogram(
            "repro_engine_network_change_seconds",
            "wall time of post-event component recomputation / protocol update")

    # ------------------------------------------------------------------
    def account_epoch(self, now, duration, reads, writes, read_mask,
                      write_mask, tracker, state, protocol) -> None:
        self.epochs.inc()
        self.epoch_sim_time.observe(duration)
        self.estimator_updates.inc(2.0)  # density_time + density_access

        site_up = state.site_up
        vote_totals = tracker.vote_totals
        comp_version, newest = self._component_versions(tracker, protocol)
        assignment = getattr(protocol, "assignment", None)
        q_r = getattr(assignment, "read_quorum", None)
        q_w = getattr(assignment, "write_quorum", None)
        audit = self.telemetry.audit

        for op, volumes, mask in (
            ("read", reads, read_mask),
            ("write", writes, write_mask),
        ):
            granted_vol = float(volumes[mask].sum())
            if granted_vol > 0:
                self.accesses.inc(granted_vol, op=op, decision="granted")
                audit.record(
                    now, op, _audit.GRANTED, granted_vol,
                    component_votes=int(vote_totals[mask].max()),
                    component_size=int(mask.sum()),
                    read_quorum=q_r, write_quorum=q_w,
                    assignment_version=newest,
                )
            denied = ~mask
            down = denied & ~site_up
            down_vol = float(volumes[down].sum())
            if down_vol > 0:
                self.accesses.inc(down_vol, op=op, decision="denied")
                audit.record(now, op, _audit.SITE_DOWN, down_vol,
                             component_size=int(down.sum()))
            up_denied = denied & site_up
            if comp_version is not None:
                stale = up_denied & (comp_version < newest)
                stale_vol = float(volumes[stale].sum())
                if stale_vol > 0:
                    self.accesses.inc(stale_vol, op=op, decision="denied")
                    audit.record(
                        now, op, _audit.STALE_ASSIGNMENT, stale_vol,
                        component_votes=int(vote_totals[stale].max()),
                        component_size=int(stale.sum()),
                        read_quorum=q_r, write_quorum=q_w,
                        assignment_version=int(comp_version[stale].max()),
                    )
                no_quorum = up_denied & ~stale
            else:
                no_quorum = up_denied
            noq_vol = float(volumes[no_quorum].sum())
            if noq_vol > 0:
                self.accesses.inc(noq_vol, op=op, decision="denied")
                audit.record(
                    now, op, _audit.NO_QUORUM, noq_vol,
                    component_votes=int(vote_totals[no_quorum].max()),
                    component_size=int(no_quorum.sum()),
                    read_quorum=q_r, write_quorum=q_w,
                    assignment_version=newest,
                )

    @staticmethod
    def _component_versions(tracker, protocol):
        """Per-site version of the site's component (versioned protocols).

        A component's version is the newest any member holds (the QR
        propagation rule converges members to it); isolated/down sites
        keep their own. Returns (None, None) for unversioned protocols.
        """
        versions = getattr(protocol, "site_version", None)
        if versions is None:
            return None, None
        versions = np.asarray(versions)
        newest = int(versions.max())
        labels = tracker.labels
        live = labels >= 0
        comp_version = versions.copy()
        if live.any():
            n_components = int(labels[live].max()) + 1
            comp_max = np.zeros(n_components, dtype=versions.dtype)
            np.maximum.at(comp_max, labels[live], versions[live])
            comp_version[live] = comp_max[labels[live]]
        return comp_version, newest


@dataclass
class _EpochCounters:
    """Mutable accumulator threaded through the measurement loop."""

    reads_submitted: float = 0.0
    reads_granted: float = 0.0
    writes_submitted: float = 0.0
    writes_granted: float = 0.0
    surv_read_time: float = 0.0
    surv_write_time: float = 0.0
    n_epochs: int = 0
    n_events: int = 0


def _failure_snapshot(state: NetworkState) -> dict:
    """Component up-masks at the moment a batch died (for quarantine)."""
    return {
        "site_up": state.site_up.astype(int).tolist(),
        "link_up": state.link_up.astype(int).tolist(),
    }


def simulate_batch(
    config: SimulationConfig,
    protocol: ReplicaControlProtocol,
    batch_index: int = 0,
    change_observer: Optional[ChangeObserver] = None,
) -> BatchResult:
    """Convenience wrapper: one batch with a fresh engine."""
    return SimulationEngine(config, protocol, change_observer).run_batch(batch_index)
