"""High-level simulation runner: warm-up, batches, confidence intervals.

:func:`run_simulation` reproduces the paper's measurement procedure: run
``n_batches`` independent batches (optionally continuing until the 95 %
confidence half-width on availability reaches a target, the way the
paper varies 5–18 batches), and aggregate availability metrics plus the
pooled empirical density matrix.

The pooled density matrix is the run's headline by-product: fed through
:class:`~repro.quorum.availability.AvailabilityModel`, a single simulated
run yields the availability of *every* quorum assignment and *every*
read fraction — which is how the benchmark harness regenerates whole
paper figures from a handful of runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import BatchExecutionError, SimulationError
from repro.protocols.base import ReplicaControlProtocol
from repro.quorum.availability import AvailabilityModel
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import BatchResult, SimulationEngine, ChangeObserver
from repro.simulation.stats import BatchStatistics
from repro.simulation.trace import NetworkTrace
from repro.telemetry.recorder import resolve as _resolve_telemetry
from repro.telemetry.snapshot import TelemetrySnapshot
from repro.tracing.context import BatchTracer

__all__ = ["QuarantinedBatch", "SimulationResult", "run_simulation"]


@dataclass
class QuarantinedBatch:
    """A batch that died mid-flight, preserved for replay.

    Carries everything needed to reproduce the failure deterministically:
    the batch index (which, with the config seed, fixes every random
    stream), the fault trace recorded up to the abort, and the failure
    snapshot. Re-running ``SimulationEngine(config, protocol).run_batch(
    batch_index)`` reproduces the abort exactly.
    """

    batch_index: int
    seed: Optional[int]
    error_type: str
    message: str
    sim_time: float
    trace: Optional[NetworkTrace] = None
    snapshot: dict = field(default_factory=dict)

    @classmethod
    def from_error(cls, exc: BatchExecutionError) -> "QuarantinedBatch":
        cause = exc.__cause__
        return cls(
            batch_index=exc.batch_index,
            seed=exc.seed,
            error_type=type(cause).__name__ if cause is not None else "unknown",
            message=str(cause) if cause is not None else exc.message,
            sim_time=exc.sim_time if exc.sim_time is not None else 0.0,
            trace=exc.trace,
            snapshot=exc.snapshot,
        )

    def describe(self) -> str:
        events = "no trace" if self.trace is None else f"{len(self.trace)} events"
        chaos = (
            ""
            if self.trace is None
            else f", {len(self.trace.chaos_events())} injected"
        )
        return (
            f"batch {self.batch_index} (seed={self.seed}) aborted at "
            f"t={self.sim_time:.4g}: {self.error_type}: {self.message} "
            f"[{events}{chaos}]"
        )


@dataclass
class SimulationResult:
    """Aggregated outcome of a multi-batch simulation run."""

    config: SimulationConfig
    protocol_name: str
    batches: List[BatchResult]
    #: Batches that aborted and were kept aside (keep-going mode only).
    quarantined: List[QuarantinedBatch] = field(default_factory=list)
    #: Frozen telemetry capture (present when the run had an enabled
    #: recorder): metrics, span tree, and the quorum-decision audit log.
    telemetry: Optional[TelemetrySnapshot] = None

    # ------------------------------------------------------------------
    def _metric(self, name: str, extractor) -> BatchStatistics:
        return BatchStatistics(name, tuple(extractor(b) for b in self.batches))

    @property
    def n_batches(self) -> int:
        return len(self.batches)

    @property
    def availability(self) -> BatchStatistics:
        """ACC across batches."""
        return self._metric("availability(ACC)", lambda b: b.availability)

    @property
    def read_availability(self) -> BatchStatistics:
        return self._metric("read availability", lambda b: b.read_availability)

    @property
    def write_availability(self) -> BatchStatistics:
        return self._metric("write availability", lambda b: b.write_availability)

    @property
    def surv_read(self) -> BatchStatistics:
        return self._metric("SURV(read)", lambda b: b.surv_read)

    @property
    def surv_write(self) -> BatchStatistics:
        return self._metric("SURV(write)", lambda b: b.surv_write)

    def surv_statistics(self, alpha: float) -> BatchStatistics:
        """Access-mix SURV: ``alpha * SURV_read + (1-alpha) * SURV_write``.

        Combined per batch (not on the means), so the batch-means CI is
        valid for the mixed metric too. The verification subsystem uses
        this as the SURV counterpart of ACC when cross-checking engines.
        """
        return self._metric(
            f"SURV(alpha={alpha:g})",
            lambda b: alpha * b.surv_read + (1.0 - alpha) * b.surv_write,
        )

    # ------------------------------------------------------------------
    def density_matrix(self, weighting: str = "time") -> np.ndarray:
        """Pooled empirical ``f_i`` matrix across all batches.

        ``weighting`` selects the estimator: ``"time"`` (stationary
        distribution — by PASTA also the access-instant distribution) or
        ``"access"`` (the paper's literal per-access recording).
        """
        if weighting not in ("time", "access"):
            raise SimulationError(
                f"weighting must be 'time' or 'access', got {weighting!r}"
            )
        pooled = None
        for batch in self.batches:
            est = batch.density_time if weighting == "time" else batch.density_access
            if pooled is None:
                pooled = OnlinePool(est.n_sites, est.total_votes)
            pooled.add(est)
        assert pooled is not None
        return pooled.matrix()

    def max_component_density(self) -> np.ndarray:
        """Pooled time-weighted density of the largest component's votes."""
        total = None
        for batch in self.batches:
            total = batch.max_votes_time if total is None else total + batch.max_votes_time
        assert total is not None
        mass = float(total.sum())
        if mass <= 0:
            raise SimulationError("no measured time accumulated")
        return total / mass

    def surv_model(self) -> AvailabilityModel:
        """Figure-1 model optimizing SURV instead of ACC.

        Paper, footnote 3: "Our method could be adapted to find optimal
        quorum assignments using the SURV metric by substituting ... the
        distribution of the number of votes in the largest component".
        SURV_read(q_r) = P(max-component votes >= q_r) is exactly the
        upper cumulative of this density, so the SURV objective *is* an
        :class:`AvailabilityModel` over the max-component density.
        """
        density = self.max_component_density()
        return AvailabilityModel(density, density)

    def availability_model(
        self,
        weighting: str = "time",
        read_weights: Optional[np.ndarray] = None,
        write_weights: Optional[np.ndarray] = None,
    ) -> AvailabilityModel:
        """Figure-1 model built from the run's empirical densities.

        ``read_weights`` / ``write_weights`` default to the workload's own
        submission distributions, so the model matches what was simulated.
        """
        if read_weights is None:
            read_weights = self.config.workload.read_weights
        if write_weights is None:
            write_weights = self.config.workload.write_weights
        return AvailabilityModel.from_density_matrix(
            self.density_matrix(weighting),
            read_weights=read_weights,
            write_weights=write_weights,
        )

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"protocol: {self.protocol_name}",
            f"topology: {self.config.topology.name}",
            f"alpha:    {self.config.workload.alpha:g}",
            f"batches:  {self.n_batches}",
            str(self.availability),
            str(self.read_availability),
            str(self.write_availability),
            str(self.surv_read),
            str(self.surv_write),
        ]
        if self.quarantined:
            lines.append(f"quarantined: {len(self.quarantined)} batch(es)")
            lines.extend(f"  {q.describe()}" for q in self.quarantined)
        return "\n".join(lines)


class OnlinePool:
    """Accumulates raw estimator weights across batches."""

    def __init__(self, n_sites: int, total_votes: int) -> None:
        self.weights = np.zeros((n_sites, total_votes + 1), dtype=np.float64)

    def add(self, estimator) -> None:
        self.weights += estimator._weights  # noqa: SLF001 — deliberate pooling

    def matrix(self) -> np.ndarray:
        mass = self.weights.sum(axis=1, keepdims=True)
        if (mass <= 0).any():
            raise SimulationError("pooled density has an unobserved site")
        return self.weights / mass


def run_simulation(
    config: SimulationConfig,
    protocol: ReplicaControlProtocol,
    target_half_width: Optional[float] = None,
    max_batches: int = 18,
    change_observer: Optional[ChangeObserver] = None,
    fail_fast: bool = True,
    telemetry=None,
    n_workers: int = 1,
) -> SimulationResult:
    """Run the paper's batch procedure.

    Runs ``config.n_batches`` batches, then — when ``target_half_width``
    is given — keeps adding batches (up to ``max_batches``, the paper's
    18) until the 95 % CI half-width on ACC availability is within the
    target, mirroring "the number of batches ... is dictated by the
    desired confidence interval".

    ``fail_fast=True`` (the historical behavior) aborts the whole run on
    the first batch error. With ``fail_fast=False`` a failed batch is
    *quarantined* — its seed, fault trace, and failure snapshot are kept
    on ``SimulationResult.quarantined`` for deterministic replay — and
    the campaign continues with the remaining batches.

    With an enabled ``telemetry`` recorder (explicit, or scoped via
    :func:`repro.telemetry.use`), the returned result carries a
    :class:`~repro.telemetry.snapshot.TelemetrySnapshot` of the whole
    run on ``result.telemetry``.

    ``n_workers > 1`` fans the batches out over a process pool
    (DESIGN.md §8). Every batch derives all its random streams from
    ``(config.seed, batch_index)``, and outcomes are aggregated in batch
    index order, so every result aggregate — ACC, SURV, pooled densities
    — is bitwise identical to the serial run. Telemetry is recorded
    per batch inside the workers and merged in batch order; the merged
    audit totals reconcile with ACC exactly, as in the serial run. Only
    the adaptive phase differs operationally: batches are added in waves
    of ``n_workers``, so the run may finish with up to ``n_workers - 1``
    more batches than a serial adaptive run (never exceeding
    ``max_batches``). ``change_observer`` callbacks cannot cross the
    process boundary and require ``n_workers=1``.
    """
    if max_batches < config.n_batches:
        raise SimulationError(
            f"max_batches ({max_batches}) below configured n_batches ({config.n_batches})"
        )
    if n_workers <= 0:
        raise SimulationError(f"n_workers must be positive, got {n_workers}")
    telemetry = _resolve_telemetry(telemetry)
    if n_workers > 1:
        if change_observer is not None:
            raise SimulationError(
                "change_observer callbacks cannot cross the process boundary; "
                "use n_workers=1"
            )
        return _run_simulation_parallel(
            config, protocol, target_half_width, max_batches,
            fail_fast, telemetry, n_workers,
        )
    engine = SimulationEngine(config, protocol, change_observer,
                              telemetry=telemetry)
    batches: List[BatchResult] = []
    quarantined: List[QuarantinedBatch] = []
    # The serial twin uses the same deterministic trace contexts as the
    # pool workers, so its span tree (ids and all) matches any parallel
    # run of the same config bit for bit.
    tracer = BatchTracer(telemetry, config.seed,
                         protocol=protocol.name,
                         topology=config.topology.name)

    def attempt(index: int) -> None:
        try:
            with tracer.batch(index):
                batches.append(engine.run_batch(index))
        except BatchExecutionError as exc:
            if fail_fast:
                raise
            quarantined.append(QuarantinedBatch.from_error(exc))

    with tracer:
        for k in range(config.n_batches):
            attempt(k)
        if not batches:
            raise SimulationError(
                f"every batch failed ({len(quarantined)} quarantined); first: "
                f"{quarantined[0].describe()}"
            )
        result = SimulationResult(config, protocol.name, batches, quarantined)
        if target_half_width is not None:
            next_index = config.n_batches
            while (
                not result.availability.meets_precision(target_half_width)
                and len(batches) + len(quarantined) < max_batches
            ):
                attempt(next_index)
                next_index += 1
                result = SimulationResult(config, protocol.name, batches,
                                          quarantined)
    if telemetry.enabled:
        result.telemetry = telemetry.snapshot(
            meta={
                "protocol": protocol.name,
                "topology": config.topology.name,
                "alpha": config.workload.alpha,
                "n_batches": len(batches),
                "seed": config.seed,
            }
        )
    return result


def _run_simulation_parallel(
    config: SimulationConfig,
    protocol: ReplicaControlProtocol,
    target_half_width: Optional[float],
    max_batches: int,
    fail_fast: bool,
    telemetry,
    n_workers: int,
) -> SimulationResult:
    """Process-pool twin of the serial loop in :func:`run_simulation`."""
    from repro.simulation.parallel import run_batches_parallel

    batches: List[BatchResult] = []
    quarantined: List[QuarantinedBatch] = []
    snapshots: List[TelemetrySnapshot] = []
    tracer = BatchTracer(telemetry, config.seed,
                         protocol=protocol.name,
                         topology=config.topology.name)

    def run_wave(indices: List[int]) -> None:
        outcomes = run_batches_parallel(
            config, protocol, indices, n_workers,
            record_telemetry=telemetry.enabled,
            trace_parent=tracer.root_id,
        )
        for outcome in outcomes:
            if outcome.quarantine_error is not None:
                if fail_fast:
                    raise outcome.quarantine_error
                quarantined.append(
                    QuarantinedBatch.from_error(outcome.quarantine_error))
            else:
                batches.append(outcome.batch)
            if outcome.snapshot is not None:
                snapshots.append(outcome.snapshot)

    with tracer:
        run_wave(list(range(config.n_batches)))
        if not batches:
            raise SimulationError(
                f"every batch failed ({len(quarantined)} quarantined); first: "
                f"{quarantined[0].describe()}"
            )
        result = SimulationResult(config, protocol.name, batches, quarantined)
        next_index = config.n_batches
        while (
            target_half_width is not None
            and not result.availability.meets_precision(target_half_width)
            and len(batches) + len(quarantined) < max_batches
        ):
            budget = max_batches - len(batches) - len(quarantined)
            wave = list(range(next_index, next_index + min(n_workers, budget)))
            next_index += len(wave)
            run_wave(wave)
            result = SimulationResult(config, protocol.name, batches,
                                      quarantined)
    if telemetry.enabled and snapshots:
        # The dispatcher's own snapshot goes first: it holds the root
        # span the per-batch subtrees re-parent under (plus any spans
        # recorded in this process before the fan-out).
        result.telemetry = TelemetrySnapshot.merged(
            [telemetry.snapshot()] + snapshots,
            meta={
                "protocol": protocol.name,
                "topology": config.topology.name,
                "alpha": config.workload.alpha,
                "n_batches": len(batches),
                "seed": config.seed,
                "n_workers": n_workers,
            },
        )
    return result
