"""Event primitives for the discrete-event simulator.

Events are totally ordered by ``(time, sequence)``; the monotone sequence
number makes simultaneous events deterministic, which matters because the
engine's results must be exactly reproducible from a seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from itertools import count
from typing import Iterator, Optional

from repro.errors import SimulationError

__all__ = [
    "EventKind",
    "Event",
    "EventQueue",
    "SOURCE_STOCHASTIC",
    "SOURCE_CHAOS",
]


class EventKind(Enum):
    """The kinds of instantaneous events in the paper's system model."""

    SITE_FAIL = "site_fail"
    SITE_REPAIR = "site_repair"
    LINK_FAIL = "link_fail"
    LINK_REPAIR = "link_repair"
    #: Used only by trace replay / tests; the engine accounts for accesses
    #: per epoch rather than as individual queue entries.
    ACCESS = "access"

    @property
    def is_topology_change(self) -> bool:
        return self is not EventKind.ACCESS

    @property
    def is_failure(self) -> bool:
        return self in (EventKind.SITE_FAIL, EventKind.LINK_FAIL)

    @property
    def is_repair(self) -> bool:
        return self in (EventKind.SITE_REPAIR, EventKind.LINK_REPAIR)


#: Event provenance tags. Stochastic events come from the exponential
#: failure/repair processes and trigger follow-up scheduling; chaos events
#: come from a scripted fault schedule and are applied verbatim (the
#: schedule owns the component's whole future, including its repairs).
SOURCE_STOCHASTIC = "stochastic"
SOURCE_CHAOS = "chaos"


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled event.

    ``target`` is a site id for site events, a link id for link events,
    and the submitting site for access events. Ordering is by time, then
    insertion sequence. ``source`` records provenance (stochastic process
    vs. injected chaos) and does not participate in ordering.
    """

    time: float
    sequence: int
    kind: EventKind = field(compare=False)
    target: int = field(compare=False)
    source: str = field(compare=False, default=SOURCE_STOCHASTIC)

    def __post_init__(self) -> None:
        if self.time < 0.0:
            raise SimulationError(f"event time must be non-negative, got {self.time}")
        if self.target < 0:
            raise SimulationError(f"event target must be non-negative, got {self.target}")

    @property
    def is_chaos(self) -> bool:
        return self.source == SOURCE_CHAOS


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = count()

    def schedule(
        self,
        time: float,
        kind: EventKind,
        target: int,
        source: str = SOURCE_STOCHASTIC,
    ) -> Event:
        """Create and enqueue an event; returns it."""
        event = Event(
            time=time, sequence=next(self._counter), kind=kind, target=target,
            source=source,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Return (without removing) the earliest event."""
        if not self._heap:
            raise SimulationError("peek into an empty event queue")
        return self._heap[0]

    def peek_time(self) -> float:
        return self.peek().time

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain_until(self, horizon: float) -> Iterator[Event]:
        """Pop every event with ``time <= horizon`` in order."""
        while self._heap and self._heap[0].time <= horizon:
            yield heapq.heappop(self._heap)
