"""Access-request workloads.

Paper, section 5.2: each site submits access requests as a Poisson
process with mean inter-access time ``mu_t = 1``, each request being a
read with probability ``alpha``, and "both read and write requests are
submitted uniformly at random to every site". By Poisson superposition
the network-wide request stream is Poisson with rate
``sum_i rate_i``; by Poisson splitting, the number of requests in an
epoch, their submitting sites, and their read/write kinds can be sampled
jointly as Poisson + multinomial + binomial draws — exactly equivalent in
distribution to event-by-event generation, and what makes a million
accesses affordable in Python.

Beyond the paper's uniform setting, :class:`AccessWorkload` supports
skewed access patterns (zipf, hotspot, arbitrary weights) and distinct
read and write site distributions ``r_i != w_i``, which is what the
Figure-1 algorithm consumes in the general case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.rng import RandomState, as_generator

__all__ = ["AccessWorkload", "PhasedWorkload"]


def _normalize_weights(weights: Sequence[float] | np.ndarray, n_sites: int,
                       label: str) -> np.ndarray:
    arr = np.asarray(weights, dtype=np.float64)
    if arr.shape != (n_sites,):
        raise SimulationError(f"{label} must have shape ({n_sites},), got {arr.shape}")
    if (arr < 0).any():
        raise SimulationError(f"{label} must be non-negative")
    total = float(arr.sum())
    if total <= 0:
        raise SimulationError(f"{label} must have positive total mass")
    return arr / total


@dataclass(frozen=True)
class AccessWorkload:
    """Read fraction plus per-site submission distributions.

    Attributes
    ----------
    alpha:
        Fraction of accesses that are reads (the paper's primary knob).
    read_weights, write_weights:
        The paper's ``r_i`` and ``w_i``: each a probability vector over
        sites. Uniform by default.
    rate_per_site:
        Poisson submission rate of each site (``1 / mu_t``); the paper
        uses ``mu_t = 1``. The aggregate network rate is
        ``n_sites * rate_per_site`` regardless of the weight vectors
        (weights redistribute, they do not rescale).
    """

    n_sites: int
    alpha: float
    read_weights: np.ndarray
    write_weights: np.ndarray
    rate_per_site: float = 1.0

    def __post_init__(self) -> None:
        if self.n_sites <= 0:
            raise SimulationError(f"need at least one site, got {self.n_sites}")
        if not 0.0 <= self.alpha <= 1.0:
            raise SimulationError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.rate_per_site <= 0:
            raise SimulationError(
                f"rate_per_site must be positive, got {self.rate_per_site}"
            )
        object.__setattr__(
            self, "read_weights",
            _normalize_weights(self.read_weights, self.n_sites, "read_weights"),
        )
        object.__setattr__(
            self, "write_weights",
            _normalize_weights(self.write_weights, self.n_sites, "write_weights"),
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, n_sites: int, alpha: float, rate_per_site: float = 1.0) -> "AccessWorkload":
        """The paper's workload: uniform submission, read fraction ``alpha``."""
        w = np.full(n_sites, 1.0 / n_sites)
        return cls(n_sites, alpha, w, w.copy(), rate_per_site)

    @classmethod
    def zipf(cls, n_sites: int, alpha: float, exponent: float = 1.0,
             rate_per_site: float = 1.0) -> "AccessWorkload":
        """Zipf-skewed submissions: site ``i`` gets weight ``1/(i+1)^exponent``."""
        if exponent < 0:
            raise SimulationError(f"zipf exponent must be non-negative, got {exponent}")
        w = 1.0 / np.power(np.arange(1, n_sites + 1, dtype=np.float64), exponent)
        w /= w.sum()
        return cls(n_sites, alpha, w, w.copy(), rate_per_site)

    @classmethod
    def hotspot(cls, n_sites: int, alpha: float, hot_sites: Sequence[int],
                hot_fraction: float = 0.8, rate_per_site: float = 1.0) -> "AccessWorkload":
        """A fraction of traffic concentrates on a few hot sites."""
        if not 0.0 < hot_fraction < 1.0:
            raise SimulationError(f"hot_fraction must be in (0, 1), got {hot_fraction}")
        hot = sorted(set(int(s) for s in hot_sites))
        if not hot:
            raise SimulationError("need at least one hot site")
        if hot[0] < 0 or hot[-1] >= n_sites:
            raise SimulationError("hot site outside network")
        if len(hot) >= n_sites:
            raise SimulationError("hot set must be a proper subset of the sites")
        w = np.full(n_sites, (1.0 - hot_fraction) / (n_sites - len(hot)))
        w[hot] = hot_fraction / len(hot)
        return cls(n_sites, alpha, w, w.copy(), rate_per_site)

    @classmethod
    def with_distinct_read_write(
        cls,
        alpha: float,
        read_weights: Sequence[float],
        write_weights: Sequence[float],
        rate_per_site: float = 1.0,
    ) -> "AccessWorkload":
        """General ``r_i != w_i`` workload (reads and writes from different sites)."""
        r = np.asarray(read_weights, dtype=np.float64)
        return cls(r.shape[0], alpha, r, np.asarray(write_weights, dtype=np.float64),
                   rate_per_site)

    # ------------------------------------------------------------------
    @property
    def aggregate_rate(self) -> float:
        """Network-wide Poisson request rate."""
        return self.n_sites * self.rate_per_site

    def with_alpha(self, alpha: float) -> "AccessWorkload":
        """Same distributions, different read fraction."""
        return AccessWorkload(
            self.n_sites, alpha, self.read_weights, self.write_weights, self.rate_per_site
        )

    def sample_epoch(
        self, duration: float, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample the accesses of one epoch of length ``duration``.

        Returns ``(reads_per_site, writes_per_site)`` int64 arrays. The
        joint law matches event-by-event simulation: total count is
        Poisson(rate * duration), thinned into reads with probability
        ``alpha``, and each kind distributed over sites by its own weight
        vector.
        """
        if duration < 0:
            raise SimulationError(f"duration must be non-negative, got {duration}")
        total = int(rng.poisson(self.aggregate_rate * duration))
        if total == 0:
            zero = np.zeros(self.n_sites, dtype=np.int64)
            return zero, zero.copy()
        n_reads = int(rng.binomial(total, self.alpha))
        n_writes = total - n_reads
        reads = rng.multinomial(n_reads, self.read_weights).astype(np.int64)
        writes = rng.multinomial(n_writes, self.write_weights).astype(np.int64)
        return reads, writes

    def expected_epoch(self, duration: float) -> Tuple[np.ndarray, np.ndarray]:
        """Expected per-site read/write counts for one epoch (float arrays).

        The expected-value accounting mode uses these in place of sampled
        counts; see DESIGN.md on variance reduction.
        """
        if duration < 0:
            raise SimulationError(f"duration must be non-negative, got {duration}")
        volume = self.aggregate_rate * duration
        reads = volume * self.alpha * self.read_weights
        writes = volume * (1.0 - self.alpha) * self.write_weights
        return reads, writes


class PhasedWorkload:
    """A piecewise-constant schedule of workloads (section 4.3 scenarios).

    The dynamic reassignment protocol exists to exploit *temporal*
    characteristics of the access stream — e.g. write-heavy business
    hours followed by read-heavy reporting. ``PhasedWorkload`` expresses
    that as a sequence of ``(start_time, AccessWorkload)`` phases; the
    engine asks for the phase in force at each epoch's start (epochs are
    short relative to any realistic phase length, so intra-epoch phase
    boundaries are not split).

    All phases must cover the same sites. The phase list must start at
    time 0 and be strictly increasing in start time.
    """

    def __init__(self, phases: Sequence[Tuple[float, AccessWorkload]]) -> None:
        if not phases:
            raise SimulationError("need at least one workload phase")
        starts = [float(t) for t, _ in phases]
        if starts[0] != 0.0:
            raise SimulationError(f"first phase must start at time 0, got {starts[0]}")
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise SimulationError("phase start times must be strictly increasing")
        sites = {w.n_sites for _, w in phases}
        if len(sites) != 1:
            raise SimulationError(f"phases cover different site counts: {sorted(sites)}")
        rates = {w.aggregate_rate for _, w in phases}
        if len(rates) != 1:
            # Permitting rate changes would make "accesses per batch"
            # ambiguous; keep the rate fixed and vary alpha/weights.
            raise SimulationError("all phases must share the aggregate access rate")
        self._starts = np.asarray(starts)
        self._workloads = [w for _, w in phases]

    @property
    def n_sites(self) -> int:
        return self._workloads[0].n_sites

    @property
    def aggregate_rate(self) -> float:
        return self._workloads[0].aggregate_rate

    @property
    def alpha(self) -> float:
        """Alpha of the first phase (reporting convenience)."""
        return self._workloads[0].alpha

    @property
    def read_weights(self) -> np.ndarray:
        return self._workloads[0].read_weights

    @property
    def write_weights(self) -> np.ndarray:
        return self._workloads[0].write_weights

    @property
    def n_phases(self) -> int:
        return len(self._workloads)

    def at(self, time: float) -> AccessWorkload:
        """The workload in force at ``time``."""
        if time < 0:
            raise SimulationError(f"time must be non-negative, got {time}")
        index = int(np.searchsorted(self._starts, time, side="right")) - 1
        return self._workloads[index]

    def with_alpha(self, alpha: float) -> "PhasedWorkload":
        """Replace alpha in every phase (keeps the schedule)."""
        return PhasedWorkload(
            [(float(t), w.with_alpha(alpha)) for t, w in zip(self._starts, self._workloads)]
        )
