"""Simulation configuration with the paper's section 5.2 defaults.

The paper's parameterization:

- mean inter-access time per site ``mu_t = 1``;
- ``rho = mu_t / mu_f = 1/128``, so mean time to failure ``mu_f = 128``;
- component reliability 0.96, so ``mu_r = mu_f * (1-.96)/.96 ≈ 5.33``;
- 100 000 warm-up accesses, 1 000 000 accesses per batch, 5–18 batches,
  targeting a 95 % confidence half-width of at most 0.5 %.

Those full-scale values live in :data:`repro.experiments.paper.PAPER_SCALE`;
the defaults here are laptop-scale (identical dynamics, fewer accesses)
so that tests and examples finish in seconds. Estimates remain unbiased —
only the confidence interval widens, and it is always reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

import numpy as np

from repro.errors import SimulationError
from repro.simulation.processes import reliability_to_repair_time
from repro.simulation.workload import AccessWorkload
from repro.topology.model import Topology

__all__ = ["SimulationConfig"]

#: Supported access-accounting modes (DESIGN.md: "Two availability estimators").
ACCOUNTING_MODES = ("sampled", "expected")

#: Supported batch initial states.
INITIAL_STATES = ("all_up", "stationary")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything one batch of simulation needs besides the protocol.

    Attributes
    ----------
    topology:
        The network (sites, links, votes).
    workload:
        Access process: read fraction and site distributions.
    mean_time_to_failure, mean_time_to_repair:
        Exponential means — scalars for the paper's homogeneous setting,
        or per-component vectors of length ``n_sites + n_links`` (sites
        first) for heterogeneous hardware. Use :meth:`paper_like` to
        derive the scalars from ``rho`` and a reliability target.
    warmup_accesses:
        Expected number of accesses to discard before measuring.
    accesses_per_batch:
        Expected number of measured accesses per batch.
    n_batches:
        Batches for the batch-means confidence interval.
    accounting:
        ``"sampled"`` draws the access counts of every epoch exactly;
        ``"expected"`` integrates conditional grant probabilities
        (variance-reduced, unbiased for ACC).
    initial_state:
        ``"all_up"`` starts each batch with everything operational — the
        paper's reset, which is why it needs a long warm-up.
        ``"stationary"`` samples the exact stationary up/down state of
        every component (valid because phase durations are exponential),
        so no warm-up is required and short batches are unbiased.
    hub_sites_infallible / hub_links_infallible:
        Masks for the bus encoding: mark spoke links / hub site as never
        failing. ``None`` means everything fails.
    seed:
        Reproducibility seed; batch ``k`` derives an independent stream.
    fault_schedule:
        Optional :class:`~repro.faults.schedule.FaultSchedule` of scripted
        chaos injectors, primed into every batch alongside the stochastic
        processes. Components the schedule owns are removed from the
        stochastic fallible set automatically.
    """

    topology: Topology
    workload: AccessWorkload
    mean_time_to_failure: Union[float, np.ndarray] = 128.0
    mean_time_to_repair: Union[float, np.ndarray] = reliability_to_repair_time(0.96, 128.0)
    warmup_accesses: float = 1_000.0
    accesses_per_batch: float = 10_000.0
    n_batches: int = 5
    accounting: str = "sampled"
    initial_state: str = "all_up"
    fallible_sites: Optional[np.ndarray] = None
    fallible_links: Optional[np.ndarray] = None
    seed: Optional[int] = 0
    fault_schedule: Optional[object] = None

    def __post_init__(self) -> None:
        if self.workload.n_sites != self.topology.n_sites:
            raise SimulationError(
                f"workload covers {self.workload.n_sites} sites but the topology "
                f"has {self.topology.n_sites}"
            )
        n_components = self.topology.n_sites + self.topology.n_links
        for label, value in (
            ("mean_time_to_failure", self.mean_time_to_failure),
            ("mean_time_to_repair", self.mean_time_to_repair),
        ):
            arr = np.asarray(value, dtype=np.float64)
            if arr.ndim not in (0, 1):
                raise SimulationError(f"{label} must be a scalar or 1-D vector")
            if arr.ndim == 1 and arr.shape != (n_components,):
                raise SimulationError(
                    f"{label} vector must have length n_sites + n_links = "
                    f"{n_components}, got {arr.shape[0]}"
                )
            if (arr <= 0).any():
                raise SimulationError(f"{label} must be positive")
        if self.warmup_accesses < 0:
            raise SimulationError(
                f"warmup_accesses must be non-negative, got {self.warmup_accesses}"
            )
        if self.accesses_per_batch <= 0:
            raise SimulationError(
                f"accesses_per_batch must be positive, got {self.accesses_per_batch}"
            )
        if self.n_batches <= 0:
            raise SimulationError(f"n_batches must be positive, got {self.n_batches}")
        if self.accounting not in ACCOUNTING_MODES:
            raise SimulationError(
                f"accounting must be one of {ACCOUNTING_MODES}, got {self.accounting!r}"
            )
        if self.initial_state not in INITIAL_STATES:
            raise SimulationError(
                f"initial_state must be one of {INITIAL_STATES}, got {self.initial_state!r}"
            )
        schedule = self.fault_schedule
        if schedule is not None and (
            not callable(getattr(schedule, "prime", None))
            or not callable(getattr(schedule, "owned_components", None))
        ):
            raise SimulationError(
                "fault_schedule must expose prime(queue, topology, rng) and "
                f"owned_components(topology); got {type(schedule).__name__}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def paper_like(
        cls,
        topology: Topology,
        alpha: float,
        reliability: float = 0.96,
        rho: float = 1.0 / 128.0,
        rate_per_site: float = 1.0,
        **overrides,
    ) -> "SimulationConfig":
        """Build a config from the paper's dimensionless parameters.

        ``rho`` is the ratio of mean time-to-next-access to mean
        time-to-next-failure; with ``mu_t = 1/rate_per_site`` that fixes
        ``mu_f = mu_t / rho`` and the reliability target fixes ``mu_r``.
        """
        if rho <= 0:
            raise SimulationError(f"rho must be positive, got {rho}")
        mu_t = 1.0 / rate_per_site
        mu_f = mu_t / rho
        mu_r = reliability_to_repair_time(reliability, mu_f)
        workload = AccessWorkload.uniform(topology.n_sites, alpha, rate_per_site)
        return cls(
            topology=topology,
            workload=workload,
            mean_time_to_failure=mu_f,
            mean_time_to_repair=mu_r,
            **overrides,
        )

    # ------------------------------------------------------------------
    @property
    def component_reliability(self) -> Union[float, np.ndarray]:
        """Stationary up-probability of each fallible component.

        A scalar in the homogeneous case, a vector when either mean is
        per-component.
        """
        mttf = np.asarray(self.mean_time_to_failure, dtype=np.float64)
        mttr = np.asarray(self.mean_time_to_repair, dtype=np.float64)
        rel = mttf / (mttf + mttr)
        return float(rel) if rel.ndim == 0 else rel

    @property
    def warmup_time(self) -> float:
        """Simulated time carrying ``warmup_accesses`` expected accesses."""
        return self.warmup_accesses / self.workload.aggregate_rate

    @property
    def batch_time(self) -> float:
        """Simulated time carrying ``accesses_per_batch`` expected accesses."""
        return self.accesses_per_batch / self.workload.aggregate_rate

    def with_alpha(self, alpha: float) -> "SimulationConfig":
        """Same config, different read fraction."""
        return replace(self, workload=self.workload.with_alpha(alpha))

    def with_accounting(self, accounting: str) -> "SimulationConfig":
        return replace(self, accounting=accounting)

    def with_initial_state(self, initial_state: str) -> "SimulationConfig":
        return replace(self, initial_state=initial_state)

    def with_seed(self, seed: Optional[int]) -> "SimulationConfig":
        return replace(self, seed=seed)

    def with_fault_schedule(self, fault_schedule) -> "SimulationConfig":
        """Same config with a (possibly different) chaos fault schedule."""
        return replace(self, fault_schedule=fault_schedule)
