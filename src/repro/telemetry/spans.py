"""Span-based tracing: nested timed sections with wall and CPU clocks.

A span marks one named section of work (``engine.run_batch``,
``optimizer.sweep``). Spans nest: the collector keeps an active stack,
so a span opened while another is open records it as its parent, and the
exported span tree reconstructs exactly where time went. Both wall time
(``perf_counter``) and CPU time (``process_time``) are captured, so I/O
or GC stalls are distinguishable from compute.

Finished spans are kept up to ``max_spans``; beyond that they are
dropped (counted in ``overflowed`` and, when the collector was handed a
``repro_spans_dropped_total`` counter, incremented per span name so the
loss is visible in every snapshot and merge) but their durations still
feed the ``repro_span_seconds`` histogram, so aggregate timings stay
exact even on runs with millions of spans.

While a :class:`~repro.tracing.context.TraceContext` is active
(:meth:`SpanCollector.scoped`), span ids come from the context's
deterministic derivation instead of the sequential counter, and a span
opened with an empty stack adopts the context's ``parent_span_id`` —
this is how worker-local spans re-parent under the dispatching span
when snapshots merge across the process pool.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.telemetry.metrics import Histogram

__all__ = ["SpanRecord", "ActiveSpan", "SpanCollector", "NULL_SPAN"]


@dataclass
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    attrs: Dict[str, object]
    start: float  # perf_counter at entry (run-relative once exported)
    wall: float
    cpu: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attrs": dict(self.attrs),
            "start": self.start,
            "wall": self.wall,
            "cpu": self.cpu,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SpanRecord":
        return cls(
            span_id=int(payload["span_id"]),
            parent_id=(None if payload.get("parent_id") is None
                       else int(payload["parent_id"])),
            name=str(payload["name"]),
            attrs=dict(payload.get("attrs", {})),
            start=float(payload["start"]),
            wall=float(payload["wall"]),
            cpu=float(payload["cpu"]),
        )


class ActiveSpan:
    """Context manager for one span; created by :meth:`SpanCollector.span`."""

    __slots__ = ("_collector", "name", "attrs", "span_id", "parent_id",
                 "_wall0", "_cpu0")

    def __init__(self, collector: "SpanCollector", name: str,
                 attrs: Dict[str, object]) -> None:
        self._collector = collector
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "ActiveSpan":
        collector = self._collector
        context = collector._context
        if context is not None:
            self.span_id = context.span_id(collector._ctx_ordinal)
            collector._ctx_ordinal += 1
        else:
            self.span_id = collector._next_id
            collector._next_id += 1
        stack = collector._stack
        if stack:
            self.parent_id = stack[-1].span_id
        else:
            self.parent_id = (context.parent_span_id
                              if context is not None else None)
        stack.append(self)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        collector = self._collector
        # Pop down to (and including) this span: tolerant of a child that
        # leaked past its parent's exit via an exception.
        stack = collector._stack
        while stack:
            if stack.pop() is self:
                break
        collector._finish(self, wall, cpu)


class _NullSpan:
    """Shared no-op span: the disabled path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class SpanCollector:
    """Collects finished spans and aggregates their durations."""

    def __init__(self, max_spans: int = 10_000,
                 dropped_counter=None) -> None:
        self.max_spans = int(max_spans)
        self.records: List[SpanRecord] = []
        self.overflowed = 0
        #: Counter-like sink for ``repro_spans_dropped_total`` (by name);
        #: None keeps the collector usable standalone.
        self.dropped_counter = dropped_counter
        self.seconds = Histogram(
            "repro_span_seconds", "wall-clock duration of traced spans",
        )
        self._stack: List[ActiveSpan] = []
        self._next_id = 1
        self._epoch = time.perf_counter()
        self._context = None  # active TraceContext, if any
        self._ctx_ordinal = 0

    def span(self, name: str, **attrs: object) -> ActiveSpan:
        return ActiveSpan(self, name, attrs)

    @contextmanager
    def scoped(self, context) -> Iterator[None]:
        """Derive ids from ``context`` for spans opened in this block.

        Contexts nest (the previous one is restored on exit) and each
        activation restarts the ordinal at 0, so the ids produced inside
        a ``scoped`` block depend only on the context coordinates and
        the (deterministic) order spans are opened in — not on how many
        spans any *other* context or the sequential counter issued.
        """
        previous = (self._context, self._ctx_ordinal)
        self._context = context
        self._ctx_ordinal = 0
        try:
            yield
        finally:
            self._context, self._ctx_ordinal = previous

    def _finish(self, span: ActiveSpan, wall: float, cpu: float) -> None:
        self.seconds.observe(wall, name=span.name)
        if len(self.records) >= self.max_spans:
            self.overflowed += 1
            if self.dropped_counter is not None:
                self.dropped_counter.inc(name=span.name)
            return
        self.records.append(
            SpanRecord(
                span_id=span.span_id,
                parent_id=span.parent_id,
                name=span.name,
                attrs=span.attrs,
                start=span._wall0 - self._epoch,
                wall=wall,
                cpu=cpu,
            )
        )

    # ------------------------------------------------------------------
    def children_of(self, span_id: Optional[int]) -> List[SpanRecord]:
        return [r for r in self.records if r.parent_id == span_id]

    def by_name(self, name: str) -> List[SpanRecord]:
        return [r for r in self.records if r.name == name]

    def __len__(self) -> int:
        return len(self.records)
