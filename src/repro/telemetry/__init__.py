"""Telemetry: metrics, span tracing, and the quorum-decision audit log.

The observability layer for the whole simulation stack (DESIGN.md §7).
Three surfaces behind one recorder object:

- **metrics** — labeled :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` series in a :class:`MetricsRegistry`;
- **spans** — nested timed sections with wall + CPU clocks;
- **audit** — per-decision grant/denial records with causes, making ACC
  decomposable (``site_down`` / ``no_quorum`` / ``stale_assignment``).

Instrumented code takes an optional ``telemetry`` argument and resolves
it with :func:`resolve`; the default is the module-level :data:`NULL`
recorder, whose every operation is a no-op, so an uninstrumented run
pays (nearly) nothing. Enable by passing a :class:`Telemetry` instance
or scoping one with :func:`use`; freeze results with
:meth:`Telemetry.snapshot` and export via :mod:`repro.telemetry.export`.
"""

from repro.telemetry.audit import (
    AuditLog,
    AuditRecord,
    DENIAL_REASONS,
    GRANTED,
    NO_QUORUM,
    SITE_DOWN,
    STALE_ASSIGNMENT,
)
from repro.telemetry.export import (
    load_snapshot_jsonl,
    render_report,
    to_jsonl_lines,
    to_prometheus,
    write_jsonl,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
)
from repro.telemetry.recorder import (
    NULL,
    NullTelemetry,
    Telemetry,
    current,
    resolve,
    set_current,
    use,
)
from repro.telemetry.snapshot import TelemetrySnapshot
from repro.telemetry.spans import SpanCollector, SpanRecord

__all__ = [
    "AuditLog",
    "AuditRecord",
    "Counter",
    "DENIAL_REASONS",
    "GRANTED",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NO_QUORUM",
    "NULL",
    "NullTelemetry",
    "P2Quantile",
    "SITE_DOWN",
    "STALE_ASSIGNMENT",
    "SpanCollector",
    "SpanRecord",
    "Telemetry",
    "TelemetrySnapshot",
    "current",
    "load_snapshot_jsonl",
    "render_report",
    "resolve",
    "set_current",
    "to_jsonl_lines",
    "to_prometheus",
    "use",
    "write_jsonl",
]
