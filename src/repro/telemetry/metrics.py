"""Metric primitives: counters, gauges, and histograms with labels.

The registry is deliberately small and dependency-free. Metrics are
identified by name; each metric holds one time series per label set
(labels are passed as keyword arguments to the observation methods, the
way Prometheus client libraries do it). Histograms combine fixed
cumulative buckets — chosen for latency-style measurements — with P²
streaming quantile estimators (Jain & Chlamtac 1985), so medians and
tail quantiles are available without storing samples.

Everything here is the *enabled* implementation. The zero-overhead
disabled path lives in :mod:`repro.telemetry.recorder`: the null recorder
hands out shared no-op metric objects, so instrumented code never
branches on an "is telemetry on?" flag at the call site.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "P2Quantile",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
]

#: Label sets are canonicalized to sorted item tuples so that
#: ``inc(op="read", site=3)`` and ``inc(site=3, op="read")`` hit the
#: same series.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets: latency-shaped, seconds. Wide enough for
#: both microsecond hot-path timings and multi-second batch spans.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: Quantiles every histogram tracks with P² estimators.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class P2Quantile:
    """Streaming quantile estimation via the P² algorithm.

    Maintains five markers whose heights converge on the ``q``-quantile
    without storing observations. Exact for the first five samples;
    afterwards a piecewise-parabolic update keeps the markers at ideal
    positions. Accuracy is ample for telemetry (a few percent of the
    distribution's local density scale).
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments", "_count")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ReproError(f"quantile must lie strictly in (0, 1), got {q}")
        self.q = q
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._count = 0

    def observe(self, value: float) -> None:
        self._count += 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(float(value))
            heights.sort()
            return
        # Find the cell k containing the observation, clamping extremes.
        if value < heights[0]:
            heights[0] = float(value)
            k = 0
        elif value >= heights[4]:
            heights[4] = float(value)
            k = 3
        else:
            k = 0
            while k < 3 and value >= heights[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = self._desired[i] - self._positions[i]
            pos_next = self._positions[i + 1] - self._positions[i]
            pos_prev = self._positions[i - 1] - self._positions[i]
            if (delta >= 1.0 and pos_next > 1.0) or (delta <= -1.0 and pos_prev < -1.0):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                self._positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate (NaN before any observation)."""
        if not self._heights:
            return math.nan
        if self._count <= 5:
            # Exact small-sample quantile (nearest-rank on sorted heights).
            rank = max(0, min(len(self._heights) - 1,
                              int(math.ceil(self.q * len(self._heights))) - 1))
            return self._heights[rank]
        return self._heights[2]


class Counter:
    """A monotonically increasing sum, one series per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease (amount={amount})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + float(amount)

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over all label sets."""
        return sum(self._series.values())

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._series)


class Gauge:
    """A point-in-time value, one series per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._series[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: object) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + float(amount)

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), math.nan)

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._series)


class _HistogramSeries:
    """Per-label-set histogram state: buckets + moments + quantiles."""

    __slots__ = ("bucket_counts", "count", "sum", "sum_sq", "min", "max", "quantiles")

    def __init__(self, n_buckets: int, quantiles: Sequence[float]) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.count = 0
        self.sum = 0.0
        self.sum_sq = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.quantiles = {q: P2Quantile(q) for q in quantiles}

    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def stddev(self) -> float:
        if self.count < 2:
            return 0.0 if self.count == 1 else math.nan
        var = max(0.0, self.sum_sq / self.count - self.mean() ** 2)
        return math.sqrt(var)


class Histogram:
    """Fixed cumulative buckets plus streaming quantiles per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> None:
        self.name = name
        self.help = help
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ReproError(f"histogram {name} needs at least one bucket bound")
        self.buckets = bounds
        self.quantile_levels = tuple(quantiles)
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def _get(self, labels: Dict[str, object]) -> _HistogramSeries:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(len(self.buckets), self.quantile_levels)
            self._series[key] = series
        return series

    def observe(self, value: float, **labels: object) -> None:
        value = float(value)
        series = self._get(labels)
        # Linear scan: bucket lists are short and observations heavily
        # favour the low buckets for timing data.
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        series.bucket_counts[idx] += 1
        series.count += 1
        series.sum += value
        series.sum_sq += value * value
        series.min = min(series.min, value)
        series.max = max(series.max, value)
        for estimator in series.quantiles.values():
            estimator.observe(value)

    def count(self, **labels: object) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels: object) -> float:
        series = self._series.get(_label_key(labels))
        return series.sum if series else 0.0

    def quantile(self, q: float, **labels: object) -> float:
        series = self._series.get(_label_key(labels))
        if series is None or q not in series.quantiles:
            return math.nan
        return series.quantiles[q].value()

    def series(self) -> Dict[LabelKey, _HistogramSeries]:
        return dict(self._series)


class MetricsRegistry:
    """Creates and holds metrics by name; idempotent per (name, kind)."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _register(self, cls, name: str, help: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ReproError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"cannot re-register as {cls.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    def get(self, name: str):
        return self._metrics.get(name)

    def __iter__(self) -> Iterable[object]:
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)
