"""Exporters: Prometheus text, JSON-lines, and the human report.

All three consume a :class:`~repro.telemetry.snapshot.TelemetrySnapshot`
(plain data), never a live recorder, so exporting cannot perturb a run
and ``repro metrics`` can re-render a stream written days earlier.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import ReproError
from repro.telemetry.snapshot import TelemetrySnapshot

__all__ = [
    "to_prometheus",
    "to_jsonl_lines",
    "write_jsonl",
    "load_snapshot_jsonl",
    "render_report",
]


def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{_prom_name(k)}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(snapshot: TelemetrySnapshot) -> str:
    """Prometheus text exposition format (counters, gauges, histograms)."""
    lines: List[str] = []

    def emit_scalar(metric: Dict[str, object], kind: str) -> None:
        name = _prom_name(metric["name"])
        if metric.get("help"):
            lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for series in metric["series"]:
            lines.append(f"{name}{_prom_labels(series['labels'])} {series['value']:g}")

    for metric in snapshot.counters:
        emit_scalar(metric, "counter")
    for metric in snapshot.gauges:
        emit_scalar(metric, "gauge")
    for metric in snapshot.histograms:
        name = _prom_name(metric["name"])
        if metric.get("help"):
            lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} histogram")
        bounds = list(metric["buckets"]) + ["+Inf"]
        for series in metric["series"]:
            labels = series["labels"]
            cumulative = 0
            for bound, count in zip(bounds, series["bucket_counts"]):
                cumulative += count
                le = "+Inf" if bound == "+Inf" else f"{bound:g}"
                le_label = 'le="' + le + '"'
                lines.append(
                    f"{name}_bucket{_prom_labels(labels, le_label)} {cumulative}"
                )
            lines.append(f"{name}_sum{_prom_labels(labels)} {series['sum']:g}")
            lines.append(f"{name}_count{_prom_labels(labels)} {series['count']}")
    return "\n".join(lines) + "\n"


def to_jsonl_lines(snapshot: TelemetrySnapshot) -> List[str]:
    return [json.dumps(record, sort_keys=True) for record in snapshot.to_records()]


def write_jsonl(snapshot: TelemetrySnapshot, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text("\n".join(to_jsonl_lines(snapshot)) + "\n")
    return path


def load_snapshot_jsonl(path: Union[str, Path]) -> TelemetrySnapshot:
    path = Path(path)
    if not path.exists():
        raise ReproError(f"telemetry stream not found: {path}")
    records = []
    with path.open() as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{path}:{line_no}: invalid JSON in telemetry stream: {exc}"
                ) from None
    return TelemetrySnapshot.from_records(records)


# ----------------------------------------------------------------------
# Human report
# ----------------------------------------------------------------------

def _span_rollup(snapshot: TelemetrySnapshot) -> List[Dict[str, object]]:
    """Cumulative wall/CPU per span name, from the aggregate histogram."""
    rollup: Dict[str, Dict[str, object]] = {}
    for series in snapshot.histogram_series("repro_span_seconds"):
        name = series["labels"].get("name", "?")
        rollup[name] = {
            "name": name,
            "count": series["count"],
            "wall": series["sum"],
            "mean": series["mean"] or 0.0,
            "p50": (series["quantiles"] or {}).get("0.5"),
        }
    # CPU totals come from the retained span records (capped, best-effort).
    for span in snapshot.spans:
        entry = rollup.get(span["name"])
        if entry is not None:
            entry["cpu"] = entry.get("cpu", 0.0) + span["cpu"]
    return sorted(rollup.values(), key=lambda e: -e["wall"])


def render_report(snapshot: TelemetrySnapshot) -> str:
    """The ``repro metrics`` summary: spans, key counters, audit causes."""
    lines: List[str] = ["telemetry report", "================"]
    meta = {k: v for k, v in snapshot.meta.items() if k != "created_at"}
    for key in sorted(meta):
        lines.append(f"{key:<14}: {meta[key]}")

    rollup = _span_rollup(snapshot)
    if rollup:
        lines.append("")
        lines.append("spans (cumulative wall time)")
        lines.append(f"  {'name':<32} {'calls':>7} {'wall s':>10} {'mean s':>10} {'cpu s':>10}")
        for entry in rollup:
            cpu = entry.get("cpu")
            lines.append(
                f"  {entry['name']:<32} {entry['count']:>7} "
                f"{entry['wall']:>10.4f} {entry['mean']:>10.6f} "
                f"{cpu if cpu is None else format(cpu, '10.4f'):>10}"
            )
        if snapshot.span_overflow:
            lines.append(f"  ({snapshot.span_overflow} spans beyond the record cap; "
                         "aggregates above remain exact)")

    if snapshot.phases:
        from repro.tracing.export import top_phases

        lines.append("")
        lines.append("phases (top by cumulative wall time)")
        lines.append(f"  {'name':<32} {'calls':>9} {'wall s':>10} {'cpu s':>10}")
        for entry in top_phases(snapshot.phases, limit=10):
            lines.append(
                f"  {entry['name']:<32} {entry['count']:>9} "
                f"{float(entry['wall']):>10.4f} {float(entry['cpu']):>10.4f}"
            )
        if len(snapshot.phases) > 10:
            lines.append(f"  (+ {len(snapshot.phases) - 10} more phases)")

    if snapshot.spans:
        from repro.telemetry.spans import SpanRecord
        from repro.tracing.export import critical_path

        path = critical_path(
            [SpanRecord.from_dict(span) for span in snapshot.spans])
        if len(path) > 1:
            lines.append("")
            lines.append("critical path (max-wall chain through the span tree)")
            for depth, record in enumerate(path):
                lines.append(
                    f"  {'  ' * depth}{record.name}  "
                    f"wall={record.wall:.4f}s cpu={record.cpu:.4f}s"
                )

    interesting = [
        metric for metric in snapshot.counters
        if metric["name"] != "repro_span_seconds" and metric["series"]
    ]
    if interesting:
        lines.append("")
        lines.append("counters")
        for metric in interesting:
            for series in metric["series"]:
                labels = ",".join(f"{k}={v}" for k, v in sorted(series["labels"].items()))
                suffix = f"{{{labels}}}" if labels else ""
                lines.append(f"  {metric['name']}{suffix:<40} {series['value']:g}")

    retry_rows: List[str] = []
    for metric in snapshot.counters:
        if metric["name"] not in ("repro_retry_attempts_total",
                                  "repro_retry_exhausted_total"):
            continue
        kind = ("scheduled" if metric["name"] == "repro_retry_attempts_total"
                else "exhausted")
        for series in sorted(
            metric["series"],
            key=lambda s: (s["labels"].get("op", ""), s["labels"].get("cause", "")),
        ):
            labels = series["labels"]
            retry_rows.append(
                f"  {kind:<10} {labels.get('op', '?'):<6} "
                f"{labels.get('cause', '?'):<18} {series['value']:>12g}"
            )
    if retry_rows:
        lines.append("")
        lines.append("retry pressure (by op and denial cause)")
        lines.extend(retry_rows)

    submitted = snapshot.audit_volume()
    if submitted > 0:
        granted = snapshot.audit_volume(reason="granted")
        denied = submitted - granted
        lines.append("")
        lines.append("quorum-decision audit")
        lines.append(f"  submitted : {submitted:g}")
        lines.append(f"  granted   : {granted:g}  (ACC = {granted / submitted:.4f})")
        lines.append(f"  denied    : {denied:g}")
        by_reason = snapshot.denials_by_reason()
        for reason in sorted(by_reason):
            share = by_reason[reason] / denied if denied > 0 else 0.0
            lines.append(f"    {reason:<18} {by_reason[reason]:>12g}  ({share:6.1%})")
        residual = denied - sum(by_reason.values())
        lines.append(f"  unattributed denial volume: {abs(residual):.3g}")
    return "\n".join(lines)
