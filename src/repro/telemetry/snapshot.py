"""TelemetrySnapshot: a frozen, serializable capture of one run.

The live :class:`~repro.telemetry.recorder.Telemetry` object is mutable
and full of estimator state; the snapshot is plain data — dicts, lists,
floats — so it can ride on a :class:`~repro.simulation.runner.
SimulationResult`, stream to JSON-lines, render to Prometheus text, and
round-trip back for ``repro metrics`` without importing any simulator
machinery.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import ReproError
from repro.telemetry.audit import GRANTED

__all__ = ["TelemetrySnapshot"]

#: Serialization format version for the JSON-lines stream.
SCHEMA_VERSION = 1


def _labels_dict(key) -> Dict[str, str]:
    return {k: v for k, v in key}


@dataclass
class TelemetrySnapshot:
    """Plain-data capture of metrics, spans, and the audit log."""

    meta: Dict[str, object] = field(default_factory=dict)
    counters: List[Dict[str, object]] = field(default_factory=list)
    gauges: List[Dict[str, object]] = field(default_factory=list)
    histograms: List[Dict[str, object]] = field(default_factory=list)
    spans: List[Dict[str, object]] = field(default_factory=list)
    span_overflow: int = 0
    audit_records: List[Dict[str, object]] = field(default_factory=list)
    audit_totals: List[Dict[str, object]] = field(default_factory=list)
    audit_overflow: int = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_telemetry(cls, telemetry, meta: Optional[dict] = None
                       ) -> "TelemetrySnapshot":
        from repro.telemetry.metrics import Counter, Gauge, Histogram

        snap = cls(meta={"created_at": _time.time(), **(meta or {})})
        metrics = list(telemetry.metrics)
        # The span-duration histogram is aggregated alongside user metrics.
        metrics.append(telemetry.spans.seconds)
        for metric in metrics:
            if isinstance(metric, Counter):
                snap.counters.append(_scalar_metric(metric))
            elif isinstance(metric, Gauge):
                snap.gauges.append(_scalar_metric(metric))
            elif isinstance(metric, Histogram):
                snap.histograms.append(_histogram_metric(metric))
        snap.spans = [record.to_dict() for record in telemetry.spans.records]
        snap.span_overflow = telemetry.spans.overflowed
        snap.audit_records = [record.to_dict() for record in telemetry.audit.records]
        snap.audit_totals = telemetry.audit.totals_as_dicts()
        snap.audit_overflow = telemetry.audit.overflowed
        return snap

    # ------------------------------------------------------------------
    # Metric lookups (reports and tests)
    # ------------------------------------------------------------------
    def _find(self, collection: List[Dict[str, object]], name: str
              ) -> Optional[Dict[str, object]]:
        for metric in collection:
            if metric["name"] == name:
                return metric
        return None

    def counter_value(self, name: str, **labels: object) -> float:
        """Value of one counter series (0 when absent); no labels = sum."""
        metric = self._find(self.counters, name)
        if metric is None:
            return 0.0
        if not labels:
            return sum(s["value"] for s in metric["series"])
        want = {k: str(v) for k, v in labels.items()}
        return sum(
            s["value"]
            for s in metric["series"]
            if all(s["labels"].get(k) == v for k, v in want.items())
        )

    def gauge_value(self, name: str, **labels: object) -> float:
        metric = self._find(self.gauges, name)
        if metric is None:
            return math.nan
        want = {k: str(v) for k, v in labels.items()}
        for series in metric["series"]:
            if series["labels"] == want:
                return series["value"]
        return math.nan

    def histogram_series(self, name: str) -> List[Dict[str, object]]:
        metric = self._find(self.histograms, name)
        return list(metric["series"]) if metric else []

    # ------------------------------------------------------------------
    # Audit views
    # ------------------------------------------------------------------
    def audit_volume(self, op: Optional[str] = None,
                     reason: Optional[str] = None) -> float:
        return sum(
            entry["volume"]
            for entry in self.audit_totals
            if (op is None or entry["op"] == op)
            and (reason is None or entry["reason"] == reason)
        )

    def denials_by_reason(self, op: Optional[str] = None) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for entry in self.audit_totals:
            if entry["reason"] == GRANTED:
                continue
            if op is None or entry["op"] == op:
                out[entry["reason"]] = out.get(entry["reason"], 0.0) + entry["volume"]
        return out

    def audit_availability(self) -> float:
        submitted = self.audit_volume()
        return self.audit_volume(reason=GRANTED) / submitted if submitted > 0 else 0.0

    # ------------------------------------------------------------------
    # JSON-lines round trip
    # ------------------------------------------------------------------
    def to_records(self) -> Iterator[Dict[str, object]]:
        """Typed record stream: one dict per JSON line."""
        yield {
            "type": "meta",
            "schema": SCHEMA_VERSION,
            "meta": self.meta,
            "span_overflow": self.span_overflow,
            "audit_overflow": self.audit_overflow,
        }
        for kind, collection in (
            ("counter", self.counters),
            ("gauge", self.gauges),
            ("histogram", self.histograms),
        ):
            for metric in collection:
                yield {"type": kind, **metric}
        for span in self.spans:
            yield {"type": "span", **span}
        for record in self.audit_records:
            yield {"type": "audit", **record}
        for total in self.audit_totals:
            yield {"type": "audit_total", **total}

    @classmethod
    def from_records(cls, records) -> "TelemetrySnapshot":
        snap = cls()
        seen_meta = False
        for record in records:
            kind = record.get("type")
            payload = {k: v for k, v in record.items() if k != "type"}
            if kind == "meta":
                schema = int(payload.get("schema", 0))
                if schema != SCHEMA_VERSION:
                    raise ReproError(
                        f"telemetry stream schema {schema} not supported "
                        f"(expected {SCHEMA_VERSION})"
                    )
                snap.meta = dict(payload.get("meta", {}))
                snap.span_overflow = int(payload.get("span_overflow", 0))
                snap.audit_overflow = int(payload.get("audit_overflow", 0))
                seen_meta = True
            elif kind == "counter":
                snap.counters.append(payload)
            elif kind == "gauge":
                snap.gauges.append(payload)
            elif kind == "histogram":
                snap.histograms.append(payload)
            elif kind == "span":
                snap.spans.append(payload)
            elif kind == "audit":
                snap.audit_records.append(payload)
            elif kind == "audit_total":
                snap.audit_totals.append(payload)
            else:
                raise ReproError(f"unknown telemetry record type {kind!r}")
        if not seen_meta:
            raise ReproError("telemetry stream carries no meta record")
        return snap


def _scalar_metric(metric) -> Dict[str, object]:
    return {
        "name": metric.name,
        "help": metric.help,
        "series": [
            {"labels": _labels_dict(key), "value": value}
            for key, value in sorted(metric.series().items())
        ],
    }


def _histogram_metric(metric) -> Dict[str, object]:
    series = []
    for key, state in sorted(metric.series().items()):
        series.append(
            {
                "labels": _labels_dict(key),
                "bucket_counts": list(state.bucket_counts),
                "count": state.count,
                "sum": state.sum,
                "min": None if math.isinf(state.min) else state.min,
                "max": None if math.isinf(state.max) else state.max,
                "mean": None if state.count == 0 else state.mean(),
                "stddev": None if state.count == 0 else state.stddev(),
                "quantiles": {
                    str(q): (None if math.isnan(est.value()) else est.value())
                    for q, est in state.quantiles.items()
                },
            }
        )
    return {
        "name": metric.name,
        "help": metric.help,
        "buckets": list(metric.buckets),
        "series": series,
    }
