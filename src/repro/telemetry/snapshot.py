"""TelemetrySnapshot: a frozen, serializable capture of one run.

The live :class:`~repro.telemetry.recorder.Telemetry` object is mutable
and full of estimator state; the snapshot is plain data — dicts, lists,
floats — so it can ride on a :class:`~repro.simulation.runner.
SimulationResult`, stream to JSON-lines, render to Prometheus text, and
round-trip back for ``repro metrics`` without importing any simulator
machinery.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import ReproError
from repro.telemetry.audit import GRANTED

__all__ = ["TelemetrySnapshot"]

#: Serialization format version for the JSON-lines stream. v2 adds
#: ``phase`` records (PR 7); v1 streams are still readable.
SCHEMA_VERSION = 2
_READABLE_SCHEMAS = (1, 2)


def _labels_dict(key) -> Dict[str, str]:
    return {k: v for k, v in key}


@dataclass
class TelemetrySnapshot:
    """Plain-data capture of metrics, spans, and the audit log."""

    meta: Dict[str, object] = field(default_factory=dict)
    counters: List[Dict[str, object]] = field(default_factory=list)
    gauges: List[Dict[str, object]] = field(default_factory=list)
    histograms: List[Dict[str, object]] = field(default_factory=list)
    spans: List[Dict[str, object]] = field(default_factory=list)
    span_overflow: int = 0
    phases: List[Dict[str, object]] = field(default_factory=list)
    audit_records: List[Dict[str, object]] = field(default_factory=list)
    audit_totals: List[Dict[str, object]] = field(default_factory=list)
    audit_overflow: int = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_telemetry(cls, telemetry, meta: Optional[dict] = None
                       ) -> "TelemetrySnapshot":
        from repro.telemetry.metrics import Counter, Gauge, Histogram

        snap = cls(meta={"created_at": _time.time(), **(meta or {})})
        metrics = list(telemetry.metrics)
        # The span-duration histogram is aggregated alongside user metrics.
        metrics.append(telemetry.spans.seconds)
        for metric in metrics:
            if isinstance(metric, Counter):
                snap.counters.append(_scalar_metric(metric))
            elif isinstance(metric, Gauge):
                snap.gauges.append(_scalar_metric(metric))
            elif isinstance(metric, Histogram):
                snap.histograms.append(_histogram_metric(metric))
        snap.spans = [record.to_dict() for record in telemetry.spans.records]
        snap.span_overflow = telemetry.spans.overflowed
        profiler = getattr(telemetry, "phases", None)
        snap.phases = profiler.snapshot() if profiler is not None else []
        snap.audit_records = [record.to_dict() for record in telemetry.audit.records]
        snap.audit_totals = telemetry.audit.totals_as_dicts()
        snap.audit_overflow = telemetry.audit.overflowed
        return snap

    # ------------------------------------------------------------------
    # Merging (parallel batch fan-out)
    # ------------------------------------------------------------------
    @classmethod
    def merged(cls, snapshots: List["TelemetrySnapshot"],
               meta: Optional[dict] = None) -> "TelemetrySnapshot":
        """Combine per-worker snapshots into one (DESIGN.md §8).

        Callers pass snapshots in batch-index order; the merge is
        deterministic given that order. Semantics per record type:

        - **counters** — per-label-set values add; audit totals likewise,
          so reconciliation invariants (ACC == granted/submitted) survive.
        - **gauges** — point-in-time values: the last snapshot holding a
          series wins (workers set disjoint series in practice).
        - **histograms** — bucket counts add, ``count``/``sum`` add,
          ``min``/``max`` combine, stddev is recomputed from pooled
          second moments (``sum_sq`` reconstructed per side from
          ``stddev``/``mean``/``count``), and quantiles are re-estimated
          from the merged buckets — P² marker state is not mergeable, so
          when several sides carry samples the pooled estimate
          interpolates within the merged cumulative bucket profile.
          A series present in only one snapshot is copied verbatim.
        - **spans / audit records** — concatenate; overflow counts add.
        - **phases** — (count, wall, cpu) add per phase name.
        """
        if not snapshots:
            raise ReproError("cannot merge zero telemetry snapshots")
        snap = cls(meta={
            "created_at": max(float(s.meta.get("created_at", 0.0)) for s in snapshots),
            "merged_from": len(snapshots),
            **(meta or {}),
        })
        snap.counters = _merge_scalar([s.counters for s in snapshots], add=True)
        snap.gauges = _merge_scalar([s.gauges for s in snapshots], add=False)
        snap.histograms = _merge_histograms([s.histograms for s in snapshots])
        from repro.tracing.profiler import merge_phase_lists

        snap.phases = merge_phase_lists(s.phases for s in snapshots)
        for source in snapshots:
            snap.spans.extend(source.spans)
            snap.span_overflow += source.span_overflow
            snap.audit_records.extend(source.audit_records)
            snap.audit_overflow += source.audit_overflow
        totals: Dict[tuple, float] = {}
        for source in snapshots:
            for entry in source.audit_totals:
                key = (entry["op"], entry["reason"])
                totals[key] = totals.get(key, 0.0) + float(entry["volume"])
        snap.audit_totals = [
            {"op": op, "reason": reason, "volume": volume}
            for (op, reason), volume in sorted(totals.items())
        ]
        return snap

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Pairwise convenience wrapper around :meth:`merged`."""
        return TelemetrySnapshot.merged([self, other])

    # ------------------------------------------------------------------
    # Metric lookups (reports and tests)
    # ------------------------------------------------------------------
    def _find(self, collection: List[Dict[str, object]], name: str
              ) -> Optional[Dict[str, object]]:
        for metric in collection:
            if metric["name"] == name:
                return metric
        return None

    def counter_value(self, name: str, **labels: object) -> float:
        """Value of one counter series (0 when absent); no labels = sum."""
        metric = self._find(self.counters, name)
        if metric is None:
            return 0.0
        if not labels:
            return sum(s["value"] for s in metric["series"])
        want = {k: str(v) for k, v in labels.items()}
        return sum(
            s["value"]
            for s in metric["series"]
            if all(s["labels"].get(k) == v for k, v in want.items())
        )

    def gauge_value(self, name: str, **labels: object) -> float:
        metric = self._find(self.gauges, name)
        if metric is None:
            return math.nan
        want = {k: str(v) for k, v in labels.items()}
        for series in metric["series"]:
            if series["labels"] == want:
                return series["value"]
        return math.nan

    def histogram_series(self, name: str) -> List[Dict[str, object]]:
        metric = self._find(self.histograms, name)
        return list(metric["series"]) if metric else []

    # ------------------------------------------------------------------
    # Audit views
    # ------------------------------------------------------------------
    def audit_volume(self, op: Optional[str] = None,
                     reason: Optional[str] = None) -> float:
        return sum(
            entry["volume"]
            for entry in self.audit_totals
            if (op is None or entry["op"] == op)
            and (reason is None or entry["reason"] == reason)
        )

    def denials_by_reason(self, op: Optional[str] = None) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for entry in self.audit_totals:
            if entry["reason"] == GRANTED:
                continue
            if op is None or entry["op"] == op:
                out[entry["reason"]] = out.get(entry["reason"], 0.0) + entry["volume"]
        return out

    def audit_availability(self) -> float:
        submitted = self.audit_volume()
        return self.audit_volume(reason=GRANTED) / submitted if submitted > 0 else 0.0

    # ------------------------------------------------------------------
    # JSON-lines round trip
    # ------------------------------------------------------------------
    def to_records(self) -> Iterator[Dict[str, object]]:
        """Typed record stream: one dict per JSON line."""
        yield {
            "type": "meta",
            "schema": SCHEMA_VERSION,
            "meta": self.meta,
            "span_overflow": self.span_overflow,
            "audit_overflow": self.audit_overflow,
        }
        for kind, collection in (
            ("counter", self.counters),
            ("gauge", self.gauges),
            ("histogram", self.histograms),
        ):
            for metric in collection:
                yield {"type": kind, **metric}
        for span in self.spans:
            yield {"type": "span", **span}
        for phase in self.phases:
            yield {"type": "phase", **phase}
        for record in self.audit_records:
            yield {"type": "audit", **record}
        for total in self.audit_totals:
            yield {"type": "audit_total", **total}

    @classmethod
    def from_records(cls, records) -> "TelemetrySnapshot":
        snap = cls()
        seen_meta = False
        for record in records:
            kind = record.get("type")
            payload = {k: v for k, v in record.items() if k != "type"}
            if kind == "meta":
                schema = int(payload.get("schema", 0))
                if schema not in _READABLE_SCHEMAS:
                    raise ReproError(
                        f"telemetry stream schema {schema} not supported "
                        f"(expected one of {_READABLE_SCHEMAS})"
                    )
                snap.meta = dict(payload.get("meta", {}))
                snap.span_overflow = int(payload.get("span_overflow", 0))
                snap.audit_overflow = int(payload.get("audit_overflow", 0))
                seen_meta = True
            elif kind == "counter":
                snap.counters.append(payload)
            elif kind == "gauge":
                snap.gauges.append(payload)
            elif kind == "histogram":
                snap.histograms.append(payload)
            elif kind == "span":
                snap.spans.append(payload)
            elif kind == "phase":
                snap.phases.append(payload)
            elif kind == "audit":
                snap.audit_records.append(payload)
            elif kind == "audit_total":
                snap.audit_totals.append(payload)
            else:
                raise ReproError(f"unknown telemetry record type {kind!r}")
        if not seen_meta:
            raise ReproError("telemetry stream carries no meta record")
        return snap


def _scalar_metric(metric) -> Dict[str, object]:
    return {
        "name": metric.name,
        "help": metric.help,
        "series": [
            {"labels": _labels_dict(key), "value": value}
            for key, value in sorted(metric.series().items())
        ],
    }


def _series_key(labels: Dict[str, str]) -> tuple:
    return tuple(sorted(labels.items()))


def _merge_scalar(collections: List[List[Dict[str, object]]],
                  add: bool) -> List[Dict[str, object]]:
    """Merge counter/gauge metric lists: add values or last-writer-wins."""
    order: List[str] = []
    helps: Dict[str, str] = {}
    values: Dict[str, Dict[tuple, float]] = {}
    labels_of: Dict[str, Dict[tuple, Dict[str, str]]] = {}
    for collection in collections:
        for metric in collection:
            name = str(metric["name"])
            if name not in values:
                order.append(name)
                helps[name] = str(metric.get("help", ""))
                values[name] = {}
                labels_of[name] = {}
            for series in metric["series"]:
                key = _series_key(series["labels"])
                labels_of[name][key] = dict(series["labels"])
                if add:
                    values[name][key] = values[name].get(key, 0.0) + float(series["value"])
                else:
                    values[name][key] = float(series["value"])
    return [
        {
            "name": name,
            "help": helps[name],
            "series": [
                {"labels": labels_of[name][key], "value": value}
                for key, value in sorted(values[name].items())
            ],
        }
        for name in sorted(order)
    ]


def _bucket_quantile(q: float, buckets: List[float],
                     bucket_counts: List[float], count: float,
                     lo: float, hi: float) -> float:
    """Pooled quantile re-estimate from a merged cumulative bucket profile.

    Linear interpolation within the bin containing rank ``q * count``;
    the open-ended bins are clamped to the observed ``min``/``max``.
    """
    target = q * count
    cumulative = 0.0
    for i, bin_count in enumerate(bucket_counts):
        if bin_count <= 0:
            continue
        if cumulative + bin_count >= target:
            lower = lo if i == 0 else max(lo, buckets[i - 1])
            upper = hi if i >= len(buckets) else min(hi, buckets[i])
            frac = min(1.0, max(0.0, (target - cumulative) / bin_count))
            if lower > 0.0 and upper > lower:
                # Default buckets are log-spaced; geometric interpolation
                # within a bin tracks latency-shaped data far better than
                # linear for wide bins.
                return lower * (upper / lower) ** frac
            return lower + (upper - lower) * frac
        cumulative += bin_count
    return hi


def _merge_histogram_series(series_list: List[Dict[str, object]],
                            buckets: List[float]) -> Dict[str, object]:
    nonempty = [s for s in series_list if s["count"] > 0]
    if len(nonempty) <= 1:
        # 0 or 1 side carries samples: copy it verbatim — its P² quantile
        # estimates are strictly better than a bucket re-estimate.
        base = dict(nonempty[0] if nonempty else series_list[0])
        base["labels"] = dict(base["labels"])
        return base
    bucket_counts = [0] * len(nonempty[0]["bucket_counts"])
    count = 0
    total = 0.0
    sum_sq = 0.0
    lo = math.inf
    hi = -math.inf
    for series in nonempty:
        if len(series["bucket_counts"]) != len(bucket_counts):
            raise ReproError(
                "cannot merge histogram series with differing bucket layouts"
            )
        for i, bin_count in enumerate(series["bucket_counts"]):
            bucket_counts[i] += bin_count
        count += series["count"]
        total += series["sum"]
        mean = float(series["mean"])
        stddev = float(series["stddev"])
        sum_sq += (stddev * stddev + mean * mean) * series["count"]
        if series["min"] is not None:
            lo = min(lo, float(series["min"]))
        if series["max"] is not None:
            hi = max(hi, float(series["max"]))
    mean = total / count
    var = max(0.0, sum_sq / count - mean * mean)
    levels = sorted({q for s in nonempty for q in s["quantiles"]})
    return {
        "labels": dict(series_list[0]["labels"]),
        "bucket_counts": bucket_counts,
        "count": count,
        "sum": total,
        "min": lo,
        "max": hi,
        "mean": mean,
        "stddev": math.sqrt(var),
        "quantiles": {
            q: _bucket_quantile(float(q), buckets, bucket_counts, count, lo, hi)
            for q in levels
        },
    }


def _merge_histograms(collections: List[List[Dict[str, object]]]
                      ) -> List[Dict[str, object]]:
    helps: Dict[str, str] = {}
    buckets_of: Dict[str, List[float]] = {}
    grouped: Dict[str, Dict[tuple, List[Dict[str, object]]]] = {}
    for collection in collections:
        for metric in collection:
            name = str(metric["name"])
            if name not in grouped:
                helps[name] = str(metric.get("help", ""))
                buckets_of[name] = list(metric["buckets"])
                grouped[name] = {}
            elif list(metric["buckets"]) != buckets_of[name]:
                raise ReproError(
                    f"cannot merge histogram {name!r}: bucket bounds differ"
                )
            for series in metric["series"]:
                key = _series_key(series["labels"])
                grouped[name].setdefault(key, []).append(series)
    return [
        {
            "name": name,
            "help": helps[name],
            "buckets": buckets_of[name],
            "series": [
                _merge_histogram_series(series_list, buckets_of[name])
                for _, series_list in sorted(grouped[name].items())
            ],
        }
        for name in sorted(grouped)
    ]


def _histogram_metric(metric) -> Dict[str, object]:
    series = []
    for key, state in sorted(metric.series().items()):
        series.append(
            {
                "labels": _labels_dict(key),
                "bucket_counts": list(state.bucket_counts),
                "count": state.count,
                "sum": state.sum,
                "min": None if math.isinf(state.min) else state.min,
                "max": None if math.isinf(state.max) else state.max,
                "mean": None if state.count == 0 else state.mean(),
                "stddev": None if state.count == 0 else state.stddev(),
                "quantiles": {
                    str(q): (None if math.isnan(est.value()) else est.value())
                    for q, est in state.quantiles.items()
                },
            }
        )
    return {
        "name": metric.name,
        "help": metric.help,
        "buckets": list(metric.buckets),
        "series": series,
    }
