"""Recorders: the enabled telemetry pipeline and its null twin.

:class:`Telemetry` bundles the three observation surfaces — a
:class:`~repro.telemetry.metrics.MetricsRegistry`, a
:class:`~repro.telemetry.spans.SpanCollector`, and an
:class:`~repro.telemetry.audit.AuditLog` — behind one object that the
simulation stack threads through itself.

:class:`NullTelemetry` is the disabled path. Its ``enabled`` flag lets
hot loops skip whole instrumentation blocks with a single boolean test,
and every surface it exposes is a shared no-op singleton, so code that
does call through it costs one attribute lookup and an empty method.
The module-level :data:`NULL` instance is the default recorder
everywhere: constructing a simulation without telemetry never allocates
telemetry state.

A module-level *current* recorder supports layers that are awkward to
plumb an argument through (the quorum optimizer, the CLI):
:func:`set_current` installs one, :func:`use` scopes one to a ``with``
block, and :func:`resolve` is the idiom constructors use
(``self.telemetry = resolve(telemetry)``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.telemetry.audit import AuditLog
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.spans import NULL_SPAN, SpanCollector
from repro.tracing.profiler import NULL_PROFILER, PhaseProfiler

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL",
    "current",
    "set_current",
    "use",
    "resolve",
]


class Telemetry:
    """An enabled recorder: metrics + spans + audit, snapshot-able."""

    enabled = True

    def __init__(self, max_spans: int = 10_000,
                 max_audit_records: int = 50_000) -> None:
        self.metrics = MetricsRegistry()
        self.spans = SpanCollector(
            max_spans=max_spans,
            dropped_counter=self.metrics.counter(
                "repro_spans_dropped_total",
                "finished spans discarded past the collector cap",
            ),
        )
        self.audit = AuditLog(max_records=max_audit_records)
        self.phases = PhaseProfiler()

    # Convenience pass-throughs -----------------------------------------
    def span(self, name: str, **attrs: object):
        return self.spans.span(name, **attrs)

    def counter(self, name: str, help: str = "") -> Counter:
        return self.metrics.counter(name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self.metrics.gauge(name, help)

    def histogram(self, name: str, help: str = "", buckets=None) -> Histogram:
        return self.metrics.histogram(name, help, buckets=buckets)

    def start_batch(self, batch_index: int) -> None:
        """Tag subsequent audit records with the batch index."""
        self.audit.start_batch(batch_index)

    def snapshot(self, meta: Optional[dict] = None):
        """Freeze everything observed so far into a TelemetrySnapshot."""
        from repro.telemetry.snapshot import TelemetrySnapshot

        return TelemetrySnapshot.from_telemetry(self, meta=meta)


class _NullMetric:
    """Accepts any metric-style call and does nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def add(self, amount: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0

    def count(self, **labels: object) -> int:
        return 0


_NULL_METRIC = _NullMetric()


class _NullRegistry:
    """Hands out the shared no-op metric for every registration."""

    __slots__ = ()

    def counter(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, help: str = "", buckets=None) -> _NullMetric:
        return _NULL_METRIC

    def get(self, name: str) -> None:
        return None

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0


class _NullAudit:
    """No-op audit log (volumes are not tracked when disabled)."""

    __slots__ = ()
    overflowed = 0
    records: tuple = ()

    def start_batch(self, batch_index: int) -> None:
        pass

    def record(self, time: float, op: str, reason: str,
               volume: float = 1.0, **detail: object) -> None:
        pass

    def denials_by_reason(self, op=None) -> dict:
        return {}

    def __len__(self) -> int:
        return 0


class NullTelemetry:
    """The zero-overhead disabled recorder."""

    enabled = False

    def __init__(self) -> None:
        self.metrics = _NullRegistry()
        self.audit = _NullAudit()
        self.phases = NULL_PROFILER

    def span(self, name: str, **attrs: object):
        return NULL_SPAN

    def counter(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, help: str = "", buckets=None) -> _NullMetric:
        return _NULL_METRIC

    def start_batch(self, batch_index: int) -> None:
        pass

    def snapshot(self, meta: Optional[dict] = None) -> None:
        return None


#: The process-wide disabled recorder; also the default "current" one.
NULL = NullTelemetry()

TelemetryLike = Union[Telemetry, NullTelemetry]

_current: TelemetryLike = NULL


def current() -> TelemetryLike:
    """The recorder in force for code without an explicit one."""
    return _current


def set_current(telemetry: Optional[TelemetryLike]) -> TelemetryLike:
    """Install (or, with None, clear) the process-wide recorder."""
    global _current
    previous = _current
    _current = telemetry if telemetry is not None else NULL
    return previous


@contextmanager
def use(telemetry: TelemetryLike) -> Iterator[TelemetryLike]:
    """Scope ``telemetry`` as the current recorder for a with-block."""
    previous = set_current(telemetry)
    try:
        yield telemetry
    finally:
        set_current(previous)


def resolve(telemetry: Optional[TelemetryLike]) -> TelemetryLike:
    """The constructor idiom: explicit argument, else the current recorder."""
    return telemetry if telemetry is not None else _current
