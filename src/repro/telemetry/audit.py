"""The quorum-decision audit log: every grant/denial, with its cause.

ACC — the paper's headline metric — is a single ratio; the audit log is
its decomposition. Each record says *why* an access (or, from the bulk
simulation engine, a volume of statistically identical accesses) ended
the way it did:

- ``granted``          — a quorum was present;
- ``site_down``        — the submitting site itself was down (ACC counts
  these as denials);
- ``no_quorum``        — the site was up but its component's votes fell
  short of the quorum in force;
- ``stale_assignment`` — the component was denied while holding an
  assignment version older than the newest installed one (the QR
  propagation rule's observable cost).

Aggregate volumes per ``(op, reason)`` are tracked unconditionally and
exactly — the record list may be capped (``max_records``), but the
totals always reconcile with the run's ACC numerator and denominator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "GRANTED",
    "SITE_DOWN",
    "NO_QUORUM",
    "STALE_ASSIGNMENT",
    "DENIAL_REASONS",
    "AuditRecord",
    "AuditLog",
]

GRANTED = "granted"
SITE_DOWN = "site_down"
NO_QUORUM = "no_quorum"
STALE_ASSIGNMENT = "stale_assignment"

#: Every reason an access can be denied.
DENIAL_REASONS = (SITE_DOWN, NO_QUORUM, STALE_ASSIGNMENT)


@dataclass
class AuditRecord:
    """One audited quorum decision (or an epoch-aggregate of identical ones)."""

    time: float
    op: str  # "read" | "write"
    reason: str
    #: Access volume carried by this record: 1.0 on the per-access
    #: database path; an expected/sampled epoch volume on the engine path.
    volume: float
    site: Optional[int] = None
    #: Votes visible in the deciding component (largest affected
    #: component's votes for aggregates), and its member count.
    component_votes: Optional[int] = None
    component_size: Optional[int] = None
    #: Quorums in force at decision time, when the protocol exposes them.
    read_quorum: Optional[int] = None
    write_quorum: Optional[int] = None
    #: Assignment version held by the deciding component (versioned
    #: protocols only).
    assignment_version: Optional[int] = None
    batch_index: Optional[int] = None

    @property
    def granted(self) -> bool:
        return self.reason == GRANTED

    def to_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "op": self.op,
            "reason": self.reason,
            "volume": self.volume,
            "site": self.site,
            "component_votes": self.component_votes,
            "component_size": self.component_size,
            "read_quorum": self.read_quorum,
            "write_quorum": self.write_quorum,
            "assignment_version": self.assignment_version,
            "batch_index": self.batch_index,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AuditRecord":
        def opt_int(key: str) -> Optional[int]:
            value = payload.get(key)
            return None if value is None else int(value)

        return cls(
            time=float(payload["time"]),
            op=str(payload["op"]),
            reason=str(payload["reason"]),
            volume=float(payload["volume"]),
            site=opt_int("site"),
            component_votes=opt_int("component_votes"),
            component_size=opt_int("component_size"),
            read_quorum=opt_int("read_quorum"),
            write_quorum=opt_int("write_quorum"),
            assignment_version=opt_int("assignment_version"),
            batch_index=opt_int("batch_index"),
        )

    def __str__(self) -> str:
        where = f"site {self.site}" if self.site is not None else "aggregate"
        quorum = (
            f", q_r={self.read_quorum}/q_w={self.write_quorum}"
            if self.read_quorum is not None
            else ""
        )
        version = (
            f", v{self.assignment_version}"
            if self.assignment_version is not None
            else ""
        )
        return (
            f"[t={self.time:.4g}] {self.op} x{self.volume:g} at {where}: "
            f"{self.reason} (votes={self.component_votes}{quorum}{version})"
        )


@dataclass
class AuditLog:
    """Accumulates audit records with exact per-cause volume totals."""

    max_records: int = 50_000
    records: List[AuditRecord] = field(default_factory=list)
    overflowed: int = 0
    #: Exact volume per (op, reason), never capped.
    totals: Dict[Tuple[str, str], float] = field(default_factory=dict)
    _batch_index: Optional[int] = None

    def start_batch(self, batch_index: int) -> None:
        """Tag subsequent records with ``batch_index``."""
        self._batch_index = batch_index

    def record(
        self,
        time: float,
        op: str,
        reason: str,
        volume: float = 1.0,
        **detail: object,
    ) -> None:
        if volume <= 0:
            return
        key = (op, reason)
        self.totals[key] = self.totals.get(key, 0.0) + float(volume)
        if len(self.records) >= self.max_records:
            self.overflowed += 1
            return
        self.records.append(
            AuditRecord(
                time=time,
                op=op,
                reason=reason,
                volume=float(volume),
                batch_index=self._batch_index,
                **detail,
            )
        )

    # ------------------------------------------------------------------
    # Reconciliation views
    # ------------------------------------------------------------------
    def volume(self, op: Optional[str] = None,
               reason: Optional[str] = None) -> float:
        """Total volume matching the given op and/or reason filters."""
        return sum(
            v
            for (rec_op, rec_reason), v in self.totals.items()
            if (op is None or rec_op == op)
            and (reason is None or rec_reason == reason)
        )

    def submitted(self, op: Optional[str] = None) -> float:
        return self.volume(op=op)

    def granted(self, op: Optional[str] = None) -> float:
        return self.volume(op=op, reason=GRANTED)

    def denied(self, op: Optional[str] = None) -> float:
        return self.submitted(op) - self.granted(op)

    def denials_by_reason(self, op: Optional[str] = None) -> Dict[str, float]:
        """Per-cause denial volumes (only causes actually observed)."""
        out: Dict[str, float] = {}
        for (rec_op, reason), v in self.totals.items():
            if reason == GRANTED:
                continue
            if op is None or rec_op == op:
                out[reason] = out.get(reason, 0.0) + v
        return out

    def availability(self) -> float:
        """ACC over everything audited (granted / submitted)."""
        total = self.submitted()
        return self.granted() / total if total > 0 else 0.0

    def totals_as_dicts(self) -> List[Dict[str, object]]:
        return [
            {"op": op, "reason": reason, "volume": volume}
            for (op, reason), volume in sorted(self.totals.items())
        ]

    def __len__(self) -> int:
        return len(self.records)
