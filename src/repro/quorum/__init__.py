"""The paper's core contribution: quorum machinery and optimal assignment.

Layout:

- :mod:`repro.quorum.votes` — vote assignments (uniform / weighted).
- :mod:`repro.quorum.assignment` — :class:`QuorumAssignment` with the
  consistency constraints of section 2.1 (``q_r + q_w > T``,
  ``q_w > T/2``).
- :mod:`repro.quorum.availability` — the Figure-1 algebra: mixing per-site
  densities into ``r(v)``/``w(v)`` and evaluating
  ``A(α, q_r) = α·R(q_r) + (1-α)·W(T-q_r+1)`` for one ``q_r`` or all of
  them at once.
- :mod:`repro.quorum.optimizer` — step 4 of Figure 1: exhaustive,
  endpoint-first, integer golden-section, and continuous-Brent search for
  the maximizing ``q_r``.
- :mod:`repro.quorum.constraints` — the section 5.4 enhancements: weighted
  availability ``A(ω, α, q)`` and optimization under a minimum write
  throughput ``A_w``.
- :mod:`repro.quorum.coterie` — the coterie view of quorum systems
  (Garcia-Molina & Barbara) used to cross-check vote-based assignments.
"""

from repro.quorum.votes import VoteAssignment
from repro.quorum.assignment import QuorumAssignment
from repro.quorum.availability import (
    AvailabilityModel,
    availability,
    availability_curve,
    read_availability,
    write_availability,
)
from repro.quorum.optimizer import (
    OptimizationResult,
    optimal_read_quorum,
    optimize_availability,
)
from repro.quorum.constraints import (
    feasible_read_quorums,
    optimize_with_write_floor,
    weighted_availability,
    weighted_availability_curve,
)
from repro.quorum.coterie import Coterie, coterie_from_votes
from repro.quorum.vote_optimizer import VoteSearchResult, optimize_votes

__all__ = [
    "AvailabilityModel",
    "Coterie",
    "OptimizationResult",
    "QuorumAssignment",
    "VoteAssignment",
    "VoteSearchResult",
    "availability",
    "availability_curve",
    "coterie_from_votes",
    "feasible_read_quorums",
    "optimal_read_quorum",
    "optimize_availability",
    "optimize_votes",
    "optimize_with_write_floor",
    "read_availability",
    "weighted_availability",
    "weighted_availability_curve",
    "write_availability",
]
