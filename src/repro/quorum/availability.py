"""The Figure-1 availability algebra.

Given per-site component-vote densities ``f_i(v)`` and the access
distributions, the paper forms (step 2)

    r(v) = sum_i r_i f_i(v),    w(v) = sum_i w_i f_i(v)

— the probability that an arbitrary read (write) lands at a site whose
component holds exactly ``v`` votes — and evaluates (step 3)

    A(alpha, q_r) = alpha * R(q_r) + (1 - alpha) * W(T - q_r + 1)

where ``R(q) = sum_{k >= q} r(k)`` and ``W(q) = sum_{k >= q} w(k)`` are
upper cumulative sums. Everything here is vectorized: one call produces
the availability at every feasible ``q_r`` simultaneously, which is what
makes regenerating a whole paper figure from a single simulation run
cheap.

:class:`AvailabilityModel` bundles ``T``, ``r(v)`` and ``w(v)`` so the
optimizers and the write-constraint machinery share one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.analytic.density import density_matrix_mean, validate_density
from repro.errors import DensityError, QuorumConstraintError
from repro.quorum.assignment import QuorumAssignment

__all__ = [
    "read_availability",
    "write_availability",
    "availability",
    "availability_curve",
    "upper_cumulative",
    "AvailabilityModel",
]

QuorumLike = Union[int, np.ndarray, Sequence[int]]


def upper_cumulative(density: np.ndarray) -> np.ndarray:
    """``U[q] = sum_{k >= q} density[k]`` for q in 0..T (length T+1).

    This is the survival function the whole Figure-1 algebra rests on:
    ``R``, ``W``, and the SURV objective are all upper cumulatives of some
    vote density. Public so the verification subsystem's metamorphic
    relations can state identities directly against it.
    """
    return np.cumsum(density[::-1])[::-1]


#: Backwards-compatible private alias.
_upper_cumulative = upper_cumulative


def _check_alpha(alpha: float) -> float:
    if not 0.0 <= alpha <= 1.0:
        raise QuorumConstraintError(f"read fraction alpha must be in [0, 1], got {alpha}")
    return float(alpha)


def read_availability(read_density: np.ndarray, read_quorum: QuorumLike) -> Union[float, np.ndarray]:
    """``R(q_r)``: probability an arbitrary read is granted.

    ``read_density`` is ``r(v)`` (length ``T + 1``); ``read_quorum`` may be
    a scalar or an array of quorums, and the result matches its shape.
    """
    density = validate_density(read_density)
    T = density.shape[0] - 1
    upper = _upper_cumulative(density)
    q = np.asarray(read_quorum, dtype=np.int64)
    if (q < 1).any() or (q > T).any():
        raise QuorumConstraintError(f"read quorum must be in 1..{T}")
    result = upper[q]
    return float(result) if np.isscalar(read_quorum) or q.ndim == 0 else result


def write_availability(write_density: np.ndarray, write_quorum: QuorumLike) -> Union[float, np.ndarray]:
    """``W(q_w)``: probability an arbitrary write is granted."""
    density = validate_density(write_density)
    T = density.shape[0] - 1
    upper = _upper_cumulative(density)
    q = np.asarray(write_quorum, dtype=np.int64)
    if (q < 1).any() or (q > T).any():
        raise QuorumConstraintError(f"write quorum must be in 1..{T}")
    result = upper[q]
    return float(result) if np.isscalar(write_quorum) or q.ndim == 0 else result


def availability(
    alpha: float,
    read_density: np.ndarray,
    write_density: np.ndarray,
    read_quorum: QuorumLike,
) -> Union[float, np.ndarray]:
    """Step 3 of Figure 1 for one or many read quorums.

    ``A(alpha, q_r) = alpha * R(q_r) + (1 - alpha) * W(T - q_r + 1)``.
    """
    alpha = _check_alpha(alpha)
    r = validate_density(read_density)
    w = validate_density(write_density)
    if r.shape != w.shape:
        raise DensityError(
            f"read/write densities must share a vote range, got {r.shape} vs {w.shape}"
        )
    T = r.shape[0] - 1
    q_r = np.asarray(read_quorum, dtype=np.int64)
    q_w = T - q_r + 1
    read_part = read_availability(r, q_r if q_r.ndim else int(q_r))
    write_part = write_availability(w, q_w if q_w.ndim else int(q_w))
    return alpha * read_part + (1.0 - alpha) * write_part


def availability_curve(
    alpha: float,
    read_density: np.ndarray,
    write_density: np.ndarray,
) -> np.ndarray:
    """``A(alpha, q_r)`` at every feasible ``q_r`` (1..floor(T/2)).

    Index ``k`` of the result is the availability at ``q_r = k + 1`` —
    exactly one curve of a paper figure.
    """
    r = validate_density(read_density)
    T = r.shape[0] - 1
    q_max = max(T // 2, 1)
    quorums = np.arange(1, q_max + 1)
    return np.asarray(availability(alpha, read_density, write_density, quorums))


@dataclass(frozen=True)
class AvailabilityModel:
    """``T`` plus the mixed densities ``r(v)``, ``w(v)`` of Figure 1 step 2.

    Construct directly from densities, or from a per-site density matrix
    with :meth:`from_density_matrix`. Densities are validated once at
    construction; all evaluation methods are then cheap lookups.
    """

    read_density: np.ndarray
    write_density: np.ndarray

    def __post_init__(self) -> None:
        r = validate_density(self.read_density)
        w = validate_density(self.write_density)
        if r.shape != w.shape:
            raise DensityError(
                f"read/write densities must share a vote range, got {r.shape} vs {w.shape}"
            )
        r.setflags(write=False)
        w.setflags(write=False)
        object.__setattr__(self, "read_density", r)
        object.__setattr__(self, "write_density", w)

    # ------------------------------------------------------------------
    @classmethod
    def from_density_matrix(
        cls,
        matrix: np.ndarray,
        read_weights: Optional[np.ndarray] = None,
        write_weights: Optional[np.ndarray] = None,
    ) -> "AvailabilityModel":
        """Mix per-site ``f_i`` rows with the access distributions.

        ``read_weights[i]`` is the paper's ``r_i`` (fraction of reads
        submitted at site ``i``); ``write_weights`` is ``w_i``. Both
        default to uniform, in which case ``r(v) = w(v)`` (section 4.1).
        """
        r = density_matrix_mean(matrix, read_weights)
        w = r if (write_weights is None and read_weights is None) else density_matrix_mean(
            matrix, write_weights
        )
        return cls(r, w)

    # ------------------------------------------------------------------
    @property
    def total_votes(self) -> int:
        return int(self.read_density.shape[0] - 1)

    @property
    def max_read_quorum(self) -> int:
        """``floor(T/2)``, the largest non-dominated read quorum."""
        return max(self.total_votes // 2, 1)

    def feasible_read_quorums(self) -> np.ndarray:
        """All feasible read quorums ``1..floor(T/2)`` as an array."""
        return np.arange(1, self.max_read_quorum + 1)

    # ------------------------------------------------------------------
    def read_availability(self, read_quorum: QuorumLike) -> Union[float, np.ndarray]:
        """``R(q_r)`` under this model."""
        return read_availability(self.read_density, read_quorum)

    def write_availability_at(self, read_quorum: QuorumLike) -> Union[float, np.ndarray]:
        """``W(T - q_r + 1)``: write availability induced by ``q_r``.

        This is also ``A(0, q_r)`` — the bottom curve of every paper
        figure, used by the write-floor constraint of section 5.4.
        """
        q_r = np.asarray(read_quorum, dtype=np.int64)
        q_w = self.total_votes - q_r + 1
        return write_availability(self.write_density, q_w if q_w.ndim else int(q_w))

    def availability(self, alpha: float, read_quorum: QuorumLike) -> Union[float, np.ndarray]:
        """``A(alpha, q_r)``."""
        return availability(alpha, self.read_density, self.write_density, read_quorum)

    def curve(self, alpha: float) -> np.ndarray:
        """``A(alpha, q_r)`` over all feasible quorums (a figure curve)."""
        return availability_curve(alpha, self.read_density, self.write_density)

    def assignment(self, read_quorum: int) -> QuorumAssignment:
        """Materialize ``q_r`` into a validated :class:`QuorumAssignment`."""
        return QuorumAssignment.from_read_quorum(self.total_votes, read_quorum)
