"""Vote assignment optimization for heterogeneous networks.

The paper fixes a uniform one-vote-per-copy assignment (its topologies
and reliabilities are symmetric) and optimizes the quorums; the related
work it builds on (Cheung, Ahamad & Ammar, GIT-ICS-88/20) optimizes the
*vote* assignment too. This module provides that companion optimization
for the asymmetric cases the paper leaves open: given a topology with
per-site reliabilities, find an integer vote vector (of fixed total) and
the matching optimal quorums that maximize availability.

The objective for a candidate vote vector ``w`` is
``max_{q_r} A(alpha, q_r)`` under the component-vote density induced by
``w`` — evaluated by common-random-numbers Monte-Carlo (the same
network-state sample set scores every candidate, so comparisons between
candidates are low-variance even when each estimate is noisy).

Two search strategies:

- ``exhaustive`` — all compositions of ``total_votes`` over the sites
  (tiny systems only; the ground truth for tests);
- ``hillclimb`` — steepest-ascent over single-vote moves (shift one vote
  from site a to site b), restarted from the uniform assignment; each
  step re-uses the shared state sample.

Scoring is fully vectorized (DESIGN.md §10): the shared
:class:`_StateSample` batch-labels all sampled states once at
construction, scores a candidate with one scatter-add over the
precomputed label matrix, and evaluates hillclimb single-vote moves by
*delta* — a move only changes vote totals inside the components
containing the two sites involved, so most of the histogram is reused.
All three scoring paths (``delta``, ``batched``, and the retained
``reference`` per-state loop) produce bitwise-identical availabilities
because every intermediate is an exact small integer.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional, Tuple

import numpy as np

from repro.connectivity.components import (
    batched_component_entries,
    batched_component_labels,
    gather_groups,
)
from repro.errors import OptimizationError, VoteAssignmentError
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import OptimizationResult, optimal_read_quorum
from repro.rng import RandomState, as_generator
from repro.telemetry.recorder import current as _current_recorder
from repro.topology.model import Topology
from dataclasses import dataclass

__all__ = ["VoteSearchResult", "optimize_votes", "availability_of_votes"]

#: Exhaustive composition enumeration guard.
MAX_EXHAUSTIVE_STATES = 200_000

#: Candidate scoring strategies for :func:`optimize_votes`.
SCORING_MODES = ("delta", "batched", "reference")


@dataclass(frozen=True)
class VoteSearchResult:
    """Outcome of a vote-assignment search."""

    votes: Tuple[int, ...]
    quorum: OptimizationResult
    availability: float
    method: str
    candidates_evaluated: int

    @property
    def total_votes(self) -> int:
        return int(sum(self.votes))


class _StateSample:
    """Common random numbers: one set of network states scores all vote vectors.

    All ``n_samples`` states are labelled at construction with a single
    block-diagonal :func:`batched_component_labels` call; the label
    matrix plus its by-component entry index are the only per-sample
    structures any scoring path touches afterwards.
    """

    def __init__(
        self,
        topology: Topology,
        p,
        r,
        n_samples: int,
        seed: RandomState,
    ) -> None:
        rng = as_generator(seed)
        site_rel = np.asarray(p, dtype=np.float64)
        link_rel = np.asarray(r, dtype=np.float64)
        if site_rel.ndim == 0:
            site_rel = np.full(topology.n_sites, float(site_rel))
        if link_rel.ndim == 0:
            link_rel = np.full(topology.n_links, float(link_rel))
        if site_rel.shape != (topology.n_sites,):
            raise OptimizationError(
                f"site reliability must be scalar or length {topology.n_sites}"
            )
        if link_rel.shape != (topology.n_links,):
            raise OptimizationError(
                f"link reliability must be scalar or length {topology.n_links}"
            )
        self.site_masks = rng.random((n_samples, topology.n_sites)) < site_rel
        link_draws = rng.random((n_samples, topology.n_links))
        with _current_recorder().phases.phase("votesearch.label"):
            self.labels = batched_component_labels(
                topology, self.site_masks, link_draws < link_rel
            )
        self.n_samples = n_samples
        self.n_sites = topology.n_sites

        # Scoring precomputation: flat positions of up entries, their
        # sites and (batch-global) component ids, plus the per-site count
        # of down states that always lands in the zero-votes bin.
        n = self.n_sites
        flat = self.labels.ravel()
        self._up_pos = np.nonzero(flat >= 0)[0]
        self._up_labels = flat[self._up_pos]
        self._up_sites = self._up_pos % n
        self._n_components = int(self._up_labels.max()) + 1 if self._up_labels.size else 0
        down_sites = np.nonzero(flat < 0)[0] % n
        self._down_counts = np.bincount(down_sites, minlength=n).astype(np.float64)
        self._comp_entries, self._comp_starts = batched_component_entries(self.labels)

    # ------------------------------------------------------------------
    # Vectorized scoring
    # ------------------------------------------------------------------
    def vote_counts(self, votes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """State-count histogram ``(n_sites, T+1)`` plus per-entry totals.

        One weighted ``bincount`` sums each component's votes, a gather
        spreads them back to entries, and a second ``bincount`` bins the
        ``(site, total)`` pairs — no per-state Python loop. Counts are
        exact small integers held in float64, so every scoring path that
        consumes them agrees bitwise. ``totals_flat`` (totals indexed by
        flat position into ``labels.ravel()``, down entries at 0) feeds
        :meth:`moved_counts`.
        """
        with _current_recorder().phases.phase("votesearch.score"):
            votes = np.asarray(votes, dtype=np.int64)
            n, T = self.n_sites, int(votes.sum())
            if self._up_labels.size:
                comp_sums = np.bincount(
                    self._up_labels,
                    weights=votes[self._up_sites].astype(np.float64),
                    minlength=self._n_components,
                )
                totals_up = comp_sums[self._up_labels].astype(np.int64)
            else:
                totals_up = np.empty(0, dtype=np.int64)
            bins = self._up_sites * (T + 1) + totals_up
            counts = np.bincount(bins, minlength=n * (T + 1)).astype(np.float64)
            counts = counts.reshape(n, T + 1)
            counts[:, 0] += self._down_counts
            totals_flat = np.zeros(self.n_samples * n, dtype=np.int64)
            totals_flat[self._up_pos] = totals_up
            return counts, totals_flat

    def moved_counts(
        self,
        counts: np.ndarray,
        totals_flat: np.ndarray,
        votes: np.ndarray,
        a: int,
        b: int,
    ) -> np.ndarray:
        """Histogram for ``votes`` with one vote moved ``a -> b``, by delta.

        A single-vote move only changes totals inside the components
        containing ``a`` or ``b``; states where the two sites share a
        component (or where the moving site is down) contribute no
        change. Only the affected entries are re-binned, so a hillclimb
        sweep over all ``O(n^2)`` moves costs far less than ``n^2`` full
        rescores — and, because counts are exact integers, the result is
        bitwise identical to ``vote_counts(moved votes)``.
        """
        if votes[a] <= 0:
            raise OptimizationError(f"site {a} has no vote to move")
        with _current_recorder().phases.phase("votesearch.delta"):
            n, T = self.n_sites, int(np.asarray(votes).sum())
            la = self.labels[:, a]
            lb = self.labels[:, b]
            out = counts.copy()
            flat_out = out.reshape(-1)
            separated = la != lb
            for comps, delta in (
                (la[(la >= 0) & separated], -1),
                (lb[(lb >= 0) & separated], +1),
            ):
                if comps.size == 0:
                    continue
                entries = gather_groups(
                    self._comp_entries, self._comp_starts, comps)
                old_bins = (entries % n) * (T + 1) + totals_flat[entries]
                flat_out -= np.bincount(old_bins, minlength=n * (T + 1))
                flat_out += np.bincount(old_bins + delta, minlength=n * (T + 1))
            return out

    def density_matrix(self, votes: np.ndarray) -> np.ndarray:
        """Empirical per-site density of component votes under ``votes``."""
        counts, _ = self.vote_counts(votes)
        return counts / self.n_samples

    # ------------------------------------------------------------------
    # Reference scoring (the retained pre-vectorization loop)
    # ------------------------------------------------------------------
    def density_matrix_reference(self, votes: np.ndarray) -> np.ndarray:
        """The per-state scoring loop kept as the oracle and bench baseline.

        Identical math to :meth:`density_matrix`, one state at a time.
        Labels are batch-global here (they were per-state before the
        batching), so each state's ids are shifted to a local base first;
        grouping within a state — the only thing scoring depends on — is
        unchanged.
        """
        votes = np.asarray(votes, dtype=np.int64)
        T = int(votes.sum())
        counts = np.zeros((self.n_sites, T + 1), dtype=np.float64)
        site_ids = np.arange(self.n_sites)
        for k in range(self.n_samples):
            labels = self.labels[k]
            up = labels >= 0
            totals = np.zeros(self.n_sites, dtype=np.int64)
            if up.any():
                base = int(labels[up].min())
                local = labels[up] - base
                sums = np.zeros(int(local.max()) + 1, dtype=np.int64)
                np.add.at(sums, local, votes[up])
                totals[up] = sums[local]
            counts[site_ids, totals] += 1.0
        return counts / self.n_samples


def availability_of_votes(
    sample: _StateSample,
    votes: np.ndarray,
    alpha: float,
) -> Tuple[float, OptimizationResult]:
    """Best-quorum availability of one vote vector on a shared sample."""
    matrix = sample.density_matrix(votes)
    model = AvailabilityModel.from_density_matrix(matrix)
    result = optimal_read_quorum(model, alpha)
    return result.availability, result


def _compositions(total: int, parts: int):
    """All non-negative integer vectors of length ``parts`` summing to ``total``."""
    for dividers in combinations(range(total + parts - 1), parts - 1):
        prev = -1
        out = []
        for d in dividers:
            out.append(d - prev - 1)
            prev = d
        out.append(total + parts - 2 - prev)
        yield out


def optimize_votes(
    topology: Topology,
    alpha: float,
    p,
    r,
    total_votes: Optional[int] = None,
    method: str = "hillclimb",
    n_samples: int = 2_000,
    max_iterations: int = 50,
    seed: RandomState = 0,
    scoring: str = "delta",
) -> VoteSearchResult:
    """Find a vote vector (and its optimal quorums) maximizing availability.

    Parameters
    ----------
    topology:
        The network; its current vote vector is ignored.
    alpha:
        Read fraction of the workload.
    p, r:
        Site / link reliabilities (scalars or vectors) defining the
        failure model.
    total_votes:
        Vote budget ``T``; defaults to one per site.
    method:
        ``"hillclimb"`` (default) or ``"exhaustive"`` (tiny systems).
    n_samples:
        Network states in the common-random-numbers sample.
    scoring:
        ``"delta"`` (default — hillclimb moves are delta-scored against
        the sweep's base histogram), ``"batched"`` (every candidate fully
        rescored by the vectorized path), or ``"reference"`` (the
        retained per-state loop; the ablation baseline). All three give
        bitwise-identical results; only the wall-clock differs.
    """
    if not 0.0 <= alpha <= 1.0:
        raise OptimizationError(f"alpha must be in [0, 1], got {alpha}")
    if scoring not in SCORING_MODES:
        raise OptimizationError(
            f"unknown scoring {scoring!r}; choose from {SCORING_MODES}"
        )
    n = topology.n_sites
    T = n if total_votes is None else int(total_votes)
    if T <= 0:
        raise VoteAssignmentError(f"vote budget must be positive, got {T}")

    sample = _StateSample(topology, p, r, n_samples=n_samples, seed=seed)
    evaluated = 0

    def score(votes: np.ndarray) -> Tuple[float, OptimizationResult]:
        nonlocal evaluated
        evaluated += 1
        matrix = (
            sample.density_matrix_reference(votes)
            if scoring == "reference"
            else sample.density_matrix(votes)
        )
        model = AvailabilityModel.from_density_matrix(matrix)
        result = optimal_read_quorum(model, alpha)
        return result.availability, result

    if method == "exhaustive":
        from math import comb

        n_states = comb(T + n - 1, n - 1)
        if n_states > MAX_EXHAUSTIVE_STATES:
            raise OptimizationError(
                f"exhaustive vote search over {n_states} compositions exceeds the "
                f"{MAX_EXHAUSTIVE_STATES} cap; use method='hillclimb'"
            )
        best: Optional[Tuple[float, np.ndarray, OptimizationResult]] = None
        for comp in _compositions(T, n):
            votes = np.asarray(comp, dtype=np.int64)
            if votes.sum() != T or (votes < 0).any() or votes.max() == 0:
                continue
            value, quorum = score(votes)
            if best is None or value > best[0] + 1e-12:
                best = (value, votes, quorum)
        assert best is not None
        value, votes, quorum = best
        return VoteSearchResult(
            tuple(int(v) for v in votes), quorum, value, "exhaustive", evaluated
        )

    if method != "hillclimb":
        raise OptimizationError(
            f"unknown method {method!r}; choose 'hillclimb' or 'exhaustive'"
        )

    # Hill-climb from (near-)uniform. Steepest ascent: every single-vote
    # move is scored, the best strictly-improving one is taken. Exact
    # value ties resolve to the lowest (a, b) — moves are enumerated in
    # ascending (a, b) order and a later candidate must be strictly
    # better to displace the incumbent — so the search is deterministic
    # for every scoring mode.
    votes = np.full(n, T // n, dtype=np.int64)
    votes[: T - int(votes.sum())] += 1
    value, quorum = score(votes)
    use_delta = scoring == "delta"
    for _ in range(max_iterations):
        if use_delta:
            base_counts, base_totals = sample.vote_counts(votes)
        best_move: Optional[Tuple[float, int, int, OptimizationResult]] = None
        for a in range(n):
            if votes[a] == 0:
                continue
            for b in range(n):
                if a == b:
                    continue
                if use_delta:
                    evaluated += 1
                    cand_counts = sample.moved_counts(
                        base_counts, base_totals, votes, a, b
                    )
                    model = AvailabilityModel.from_density_matrix(
                        cand_counts / sample.n_samples
                    )
                    cand_quorum = optimal_read_quorum(model, alpha)
                    cand_value = cand_quorum.availability
                else:
                    votes[a] -= 1
                    votes[b] += 1
                    cand_value, cand_quorum = score(votes)
                    votes[a] += 1
                    votes[b] -= 1
                if cand_value > value + 1e-12 and (
                    best_move is None or cand_value > best_move[0]
                ):
                    best_move = (cand_value, a, b, cand_quorum)
        if best_move is None:
            break
        value, a, b, quorum = best_move
        votes[a] -= 1
        votes[b] += 1
    return VoteSearchResult(
        tuple(int(v) for v in votes), quorum, value, "hillclimb", evaluated
    )
