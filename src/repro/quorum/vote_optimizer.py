"""Vote assignment optimization for heterogeneous networks.

The paper fixes a uniform one-vote-per-copy assignment (its topologies
and reliabilities are symmetric) and optimizes the quorums; the related
work it builds on (Cheung, Ahamad & Ammar, GIT-ICS-88/20) optimizes the
*vote* assignment too. This module provides that companion optimization
for the asymmetric cases the paper leaves open: given a topology with
per-site reliabilities, find an integer vote vector (of fixed total) and
the matching optimal quorums that maximize availability.

The objective for a candidate vote vector ``w`` is
``max_{q_r} A(alpha, q_r)`` under the component-vote density induced by
``w`` — evaluated analytically where a closed form applies (trees) and
by common-random-numbers Monte-Carlo otherwise (the same network-state
sample set scores every candidate, so comparisons between candidates are
low-variance even when each estimate is noisy).

Two search strategies:

- ``exhaustive`` — all compositions of ``total_votes`` over the sites
  (tiny systems only; the ground truth for tests);
- ``hillclimb`` — steepest-ascent over single-vote moves (shift one vote
  from site a to site b), restarted from the uniform assignment; each
  step re-uses the shared state sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.connectivity.components import component_labels
from repro.errors import OptimizationError, VoteAssignmentError
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import OptimizationResult, optimal_read_quorum
from repro.rng import RandomState, as_generator
from repro.topology.model import Topology

__all__ = ["VoteSearchResult", "optimize_votes", "availability_of_votes"]

#: Exhaustive composition enumeration guard.
MAX_EXHAUSTIVE_STATES = 200_000


@dataclass(frozen=True)
class VoteSearchResult:
    """Outcome of a vote-assignment search."""

    votes: Tuple[int, ...]
    quorum: OptimizationResult
    availability: float
    method: str
    candidates_evaluated: int

    @property
    def total_votes(self) -> int:
        return int(sum(self.votes))


class _StateSample:
    """Common random numbers: one set of network states scores all vote vectors."""

    def __init__(
        self,
        topology: Topology,
        p,
        r,
        n_samples: int,
        seed: RandomState,
    ) -> None:
        rng = as_generator(seed)
        site_rel = np.asarray(p, dtype=np.float64)
        link_rel = np.asarray(r, dtype=np.float64)
        if site_rel.ndim == 0:
            site_rel = np.full(topology.n_sites, float(site_rel))
        if link_rel.ndim == 0:
            link_rel = np.full(topology.n_links, float(link_rel))
        if site_rel.shape != (topology.n_sites,):
            raise OptimizationError(
                f"site reliability must be scalar or length {topology.n_sites}"
            )
        if link_rel.shape != (topology.n_links,):
            raise OptimizationError(
                f"link reliability must be scalar or length {topology.n_links}"
            )
        self.site_masks = rng.random((n_samples, topology.n_sites)) < site_rel
        link_draws = rng.random((n_samples, topology.n_links))
        self.labels = np.empty((n_samples, topology.n_sites), dtype=np.int64)
        for k in range(n_samples):
            self.labels[k] = component_labels(
                topology, self.site_masks[k], link_draws[k] < link_rel
            )
        self.n_samples = n_samples
        self.n_sites = topology.n_sites

    def density_matrix(self, votes: np.ndarray) -> np.ndarray:
        """Empirical per-site density of component votes under ``votes``."""
        T = int(votes.sum())
        counts = np.zeros((self.n_sites, T + 1), dtype=np.float64)
        site_ids = np.arange(self.n_sites)
        for k in range(self.n_samples):
            labels = self.labels[k]
            up = labels >= 0
            totals = np.zeros(self.n_sites, dtype=np.int64)
            if up.any():
                n_comp = int(labels.max()) + 1
                sums = np.zeros(n_comp, dtype=np.int64)
                np.add.at(sums, labels[up], votes[up])
                totals[up] = sums[labels[up]]
            counts[site_ids, totals] += 1.0
        return counts / self.n_samples


def availability_of_votes(
    sample: _StateSample,
    votes: np.ndarray,
    alpha: float,
) -> Tuple[float, OptimizationResult]:
    """Best-quorum availability of one vote vector on a shared sample."""
    matrix = sample.density_matrix(votes)
    model = AvailabilityModel.from_density_matrix(matrix)
    result = optimal_read_quorum(model, alpha)
    return result.availability, result


def _compositions(total: int, parts: int):
    """All non-negative integer vectors of length ``parts`` summing to ``total``."""
    for dividers in combinations(range(total + parts - 1), parts - 1):
        prev = -1
        out = []
        for d in dividers:
            out.append(d - prev - 1)
            prev = d
        out.append(total + parts - 2 - prev)
        yield out


def optimize_votes(
    topology: Topology,
    alpha: float,
    p,
    r,
    total_votes: Optional[int] = None,
    method: str = "hillclimb",
    n_samples: int = 2_000,
    max_iterations: int = 50,
    seed: RandomState = 0,
) -> VoteSearchResult:
    """Find a vote vector (and its optimal quorums) maximizing availability.

    Parameters
    ----------
    topology:
        The network; its current vote vector is ignored.
    alpha:
        Read fraction of the workload.
    p, r:
        Site / link reliabilities (scalars or vectors) defining the
        failure model.
    total_votes:
        Vote budget ``T``; defaults to one per site.
    method:
        ``"hillclimb"`` (default) or ``"exhaustive"`` (tiny systems).
    n_samples:
        Network states in the common-random-numbers sample.
    """
    if not 0.0 <= alpha <= 1.0:
        raise OptimizationError(f"alpha must be in [0, 1], got {alpha}")
    n = topology.n_sites
    T = n if total_votes is None else int(total_votes)
    if T <= 0:
        raise VoteAssignmentError(f"vote budget must be positive, got {T}")

    sample = _StateSample(topology, p, r, n_samples=n_samples, seed=seed)
    evaluated = 0

    def score(votes: np.ndarray) -> Tuple[float, OptimizationResult]:
        nonlocal evaluated
        evaluated += 1
        return availability_of_votes(sample, votes, alpha)

    if method == "exhaustive":
        from math import comb

        n_states = comb(T + n - 1, n - 1)
        if n_states > MAX_EXHAUSTIVE_STATES:
            raise OptimizationError(
                f"exhaustive vote search over {n_states} compositions exceeds the "
                f"{MAX_EXHAUSTIVE_STATES} cap; use method='hillclimb'"
            )
        best: Optional[Tuple[float, np.ndarray, OptimizationResult]] = None
        for comp in _compositions(T, n):
            votes = np.asarray(comp, dtype=np.int64)
            if votes.sum() != T or (votes < 0).any() or votes.max() == 0:
                continue
            value, quorum = score(votes)
            if best is None or value > best[0] + 1e-12:
                best = (value, votes, quorum)
        assert best is not None
        value, votes, quorum = best
        return VoteSearchResult(
            tuple(int(v) for v in votes), quorum, value, "exhaustive", evaluated
        )

    if method != "hillclimb":
        raise OptimizationError(
            f"unknown method {method!r}; choose 'hillclimb' or 'exhaustive'"
        )

    # Hill-climb from (near-)uniform.
    votes = np.full(n, T // n, dtype=np.int64)
    votes[: T - int(votes.sum())] += 1
    value, quorum = score(votes)
    for _ in range(max_iterations):
        improved = False
        best_move: Optional[Tuple[float, int, int, OptimizationResult]] = None
        for a in range(n):
            if votes[a] == 0:
                continue
            for b in range(n):
                if a == b:
                    continue
                votes[a] -= 1
                votes[b] += 1
                cand_value, cand_quorum = score(votes)
                votes[a] += 1
                votes[b] -= 1
                if cand_value > value + 1e-12 and (
                    best_move is None or cand_value > best_move[0]
                ):
                    best_move = (cand_value, a, b, cand_quorum)
        if best_move is not None:
            value, a, b, quorum = best_move
            votes[a] -= 1
            votes[b] += 1
            improved = True
        if not improved:
            break
    return VoteSearchResult(
        tuple(int(v) for v in votes), quorum, value, "hillclimb", evaluated
    )
