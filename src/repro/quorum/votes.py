"""Vote assignments for weighted voting (Gifford '79).

Each copy of the replicated item carries a non-negative integer number of
votes; quorums are expressed in votes, not copies, so an administrator can
bias the system toward well-connected or reliable sites. The paper's
evaluation uses the uniform one-vote-per-copy assignment (its topologies
are symmetric), but the machinery is general.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import VoteAssignmentError

__all__ = ["VoteAssignment"]


class VoteAssignment:
    """An immutable per-site vote vector."""

    __slots__ = ("_votes",)

    def __init__(self, votes: Sequence[int] | np.ndarray) -> None:
        arr = np.asarray(list(votes) if not isinstance(votes, np.ndarray) else votes,
                         dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise VoteAssignmentError(
                f"votes must be a non-empty 1-D sequence, got shape {arr.shape}"
            )
        if (arr < 0).any():
            raise VoteAssignmentError("votes must be non-negative")
        if arr.sum() <= 0:
            raise VoteAssignmentError("total votes T must be positive")
        arr = arr.copy()
        arr.setflags(write=False)
        self._votes = arr

    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, n_sites: int, votes_per_site: int = 1) -> "VoteAssignment":
        """One vote (or ``votes_per_site``) at every site — the paper's default."""
        if n_sites <= 0:
            raise VoteAssignmentError(f"need at least one site, got {n_sites}")
        if votes_per_site <= 0:
            raise VoteAssignmentError(f"votes_per_site must be positive, got {votes_per_site}")
        return cls(np.full(n_sites, votes_per_site, dtype=np.int64))

    @classmethod
    def single_site(cls, n_sites: int, site: int) -> "VoteAssignment":
        """All votes at one site: the primary-copy degenerate assignment."""
        if not 0 <= site < n_sites:
            raise VoteAssignmentError(f"site {site} outside 0..{n_sites - 1}")
        votes = np.zeros(n_sites, dtype=np.int64)
        votes[site] = 1
        return cls(votes)

    # ------------------------------------------------------------------
    @property
    def votes(self) -> np.ndarray:
        """Read-only int64 vote vector."""
        return self._votes

    @property
    def n_sites(self) -> int:
        return int(self._votes.shape[0])

    @property
    def total(self) -> int:
        """``T``, the total number of votes."""
        return int(self._votes.sum())

    def votes_of(self, sites: Iterable[int]) -> int:
        """Total votes held by a collection of sites (e.g. one component)."""
        idx = np.fromiter((int(s) for s in sites), dtype=np.int64)
        if idx.size == 0:
            return 0
        if (idx < 0).any() or (idx >= self.n_sites).any():
            raise VoteAssignmentError("site index out of range")
        if np.unique(idx).size != idx.size:
            raise VoteAssignmentError("duplicate site in vote query")
        return int(self._votes[idx].sum())

    def is_uniform(self) -> bool:
        """True iff every site carries the same (positive) vote count."""
        return bool((self._votes == self._votes[0]).all() and self._votes[0] > 0)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VoteAssignment):
            return NotImplemented
        return bool(np.array_equal(self._votes, other._votes))

    def __hash__(self) -> int:
        return hash(self._votes.tobytes())

    def __repr__(self) -> str:
        return f"VoteAssignment(n_sites={self.n_sites}, T={self.total})"
