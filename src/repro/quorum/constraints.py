"""Section 5.4: write-throughput constraints on the optimal assignment.

The unconstrained optimum frequently lands at ``q_r = 1`` (ROWA), where a
write succeeds only when *every* copy is reachable — effectively zero
write throughput in a large system. The paper offers two remedies:

1. **Weighted availability** ``A(omega, alpha, q) = alpha R(q) +
   omega (1-alpha) W(T-q+1)`` — fold a write weight ``omega`` into the
   objective. Provided for completeness; the paper declines to recommend
   it because ``omega`` has no principled scale.
2. **Write floor** (preferred): restrict to read quorums whose induced
   write availability ``A(0, q_r) = W(T - q_r + 1)`` is at least a floor
   ``A_w``, then maximize ``A(alpha, q_r)`` over that feasible set.
   ``W`` is non-decreasing in ``q_r`` (larger ``q_r`` means smaller
   ``q_w``), so the feasible set is always an upper range of quorums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import OptimizationError
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import OptimizationResult, _best_index, _result

__all__ = [
    "weighted_availability",
    "weighted_availability_curve",
    "feasible_read_quorums",
    "optimize_with_write_floor",
]


def weighted_availability(
    model: AvailabilityModel,
    omega: float,
    alpha: float,
    read_quorum,
):
    """``A(omega, alpha, q_r)`` — the write-weighted objective.

    ``omega = 1`` recovers the plain availability; ``omega > 1`` biases
    toward write throughput. Note the result is no longer a probability
    once ``omega != 1``.
    """
    if omega < 0.0:
        raise OptimizationError(f"write weight omega must be non-negative, got {omega}")
    read_part = model.read_availability(read_quorum)
    write_part = model.write_availability_at(read_quorum)
    return alpha * np.asarray(read_part) + omega * (1.0 - alpha) * np.asarray(write_part)


def weighted_availability_curve(
    model: AvailabilityModel,
    omega: float,
    alpha: float,
) -> np.ndarray:
    """The weighted objective at every feasible ``q_r``."""
    return np.asarray(
        weighted_availability(model, omega, alpha, model.feasible_read_quorums())
    )


def feasible_read_quorums(
    model: AvailabilityModel,
    min_write_availability: float,
) -> np.ndarray:
    """Read quorums whose induced write availability meets the floor.

    Returns the (possibly empty) array of ``q_r`` with
    ``A(0, q_r) >= min_write_availability``. By monotonicity this is a
    suffix ``q*..floor(T/2)`` of the feasible range.
    """
    if not 0.0 <= min_write_availability <= 1.0:
        raise OptimizationError(
            f"write availability floor must be in [0, 1], got {min_write_availability}"
        )
    quorums = model.feasible_read_quorums()
    write_curve = np.asarray(model.write_availability_at(quorums))
    return quorums[write_curve >= min_write_availability]


def optimize_with_write_floor(
    model: AvailabilityModel,
    alpha: float,
    min_write_availability: float,
) -> OptimizationResult:
    """Maximize ``A(alpha, q_r)`` subject to ``A(0, q_r) >= A_w``.

    This reproduces the paper's worked example (section 5.4): on its
    Topology 2 at ``alpha = 0.75`` the unconstrained optimum sits at
    ``q_r = 1`` with availability ~72% but write availability ~0;
    demanding ``A_w >= 20%`` moves the optimum to ``q_r = 28`` with
    availability ~50%.

    Raises :class:`~repro.errors.OptimizationError` when no quorum meets
    the floor (the floor exceeds even the majority assignment's write
    availability).
    """
    if not 0.0 <= alpha <= 1.0:
        raise OptimizationError(f"alpha must be in [0, 1], got {alpha}")
    feasible = feasible_read_quorums(model, min_write_availability)
    if feasible.size == 0:
        best_possible = float(
            np.asarray(model.write_availability_at(model.max_read_quorum))
        )
        raise OptimizationError(
            f"no read quorum achieves write availability >= "
            f"{min_write_availability:.4f}; the best achievable floor is "
            f"{best_possible:.4f} at q_r = {model.max_read_quorum}"
        )
    values = np.asarray(model.availability(alpha, feasible))
    idx = _best_index(values)
    return _result(
        model,
        alpha,
        int(feasible[idx]),
        float(values[idx]),
        f"write-floor({min_write_availability:g})",
        int(feasible.size),
    )
