"""Coteries: the set-system view of quorum consensus.

A *coterie* (Garcia-Molina & Barbara, JACM 1985; paper footnote 1) over a
site set ``U`` is a collection ``C`` of quorums (subsets of ``U``) such
that

- **intersection**: every two quorums share at least one site, and
- **minimality**: no quorum contains another.

Coteries subsume voting: the sets of sites whose votes total at least
``q_w`` (with ``q_w > T/2``) form the quorum groups of a coterie once
non-minimal groups are dropped. The paper's protocols are all vote-based,
but the coterie view is the natural correctness oracle: the
quorum-consensus safety argument is exactly "every read group intersects
every write group, and write groups pairwise intersect" — properties this
module checks explicitly, and which the test suite uses to validate
:class:`~repro.quorum.assignment.QuorumAssignment` for many weighted vote
vectors.

Everything here is exponential in the number of sites and is intended for
small systems (analysis, tests) — production code paths never enumerate
coteries.
"""

from __future__ import annotations

from itertools import combinations
from typing import AbstractSet, FrozenSet, Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import QuorumConstraintError, VoteAssignmentError
from repro.quorum.votes import VoteAssignment

__all__ = ["Coterie", "coterie_from_votes", "read_groups_from_votes"]

#: Enumerating quorum groups is Θ(2^n); refuse beyond this many sites.
MAX_SITES = 20

Group = FrozenSet[int]


class Coterie:
    """An immutable, validated coterie."""

    __slots__ = ("_groups", "_universe")

    def __init__(self, groups: Iterable[AbstractSet[int]], universe: Optional[int] = None) -> None:
        frozen: Tuple[Group, ...] = tuple(
            sorted({frozenset(int(s) for s in g) for g in groups}, key=sorted)
        )
        if not frozen:
            raise QuorumConstraintError("a coterie must contain at least one quorum group")
        for group in frozen:
            if not group:
                raise QuorumConstraintError("quorum groups must be non-empty")
        members = frozenset().union(*frozen)
        if universe is None:
            universe = max(members) + 1
        if any(s < 0 or s >= universe for s in members):
            raise QuorumConstraintError(
                f"group member outside universe 0..{universe - 1}"
            )
        for g1, g2 in combinations(frozen, 2):
            if not g1 & g2:
                raise QuorumConstraintError(
                    f"intersection property violated: {sorted(g1)} and {sorted(g2)} are disjoint"
                )
            if g1 < g2 or g2 < g1:
                raise QuorumConstraintError(
                    f"minimality violated: {sorted(g1)} vs {sorted(g2)}"
                )
        self._groups = frozen
        self._universe = universe

    # ------------------------------------------------------------------
    @property
    def groups(self) -> Tuple[Group, ...]:
        return self._groups

    @property
    def universe(self) -> int:
        return self._universe

    def __iter__(self) -> Iterator[Group]:
        return iter(self._groups)

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, group: AbstractSet[int]) -> bool:
        return frozenset(group) in set(self._groups)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Coterie):
            return NotImplemented
        return set(self._groups) == set(other._groups)

    def __hash__(self) -> int:
        return hash(self._groups)

    def __repr__(self) -> str:
        shown = ", ".join(str(sorted(g)) for g in self._groups[:4])
        suffix = ", ..." if len(self._groups) > 4 else ""
        return f"Coterie([{shown}{suffix}], universe={self._universe})"

    # ------------------------------------------------------------------
    def permits(self, component: AbstractSet[int]) -> bool:
        """True iff ``component`` contains some quorum group.

        This is the coterie-side statement of "the component holds a write
        quorum of votes".
        """
        comp = frozenset(component)
        return any(group <= comp for group in self._groups)

    def dominates(self, other: "Coterie") -> bool:
        """Garcia-Molina & Barbara domination: ``self`` dominates ``other``.

        ``C`` dominates ``D`` iff ``C != D`` and every group of ``D`` is a
        superset of some group of ``C``. A dominated coterie is strictly
        worse: any component that could act under ``D`` can act under
        ``C``, but not vice versa.
        """
        if self == other:
            return False
        return all(
            any(mine <= theirs for mine in self._groups) for theirs in other._groups
        )

    def is_dominated(self) -> bool:
        """True iff *some* coterie dominates this one (exhaustive check).

        Uses the classical criterion: ``C`` is dominated iff there exists
        a set ``H`` that (a) intersects every group of ``C`` but (b)
        contains no group of ``C`` — then ``C + {H}`` (minimized)
        dominates ``C``. Exponential; guarded by :data:`MAX_SITES`.
        """
        if self._universe > MAX_SITES:
            raise QuorumConstraintError(
                f"domination check is exponential; universe {self._universe} exceeds "
                f"{MAX_SITES} sites"
            )
        sites = range(self._universe)
        for size in range(1, self._universe + 1):
            for candidate in combinations(sites, size):
                h = frozenset(candidate)
                intersects_all = all(h & g for g in self._groups)
                contains_none = not any(g <= h for g in self._groups)
                if intersects_all and contains_none:
                    return True
        return False


def read_groups_from_votes(votes: VoteAssignment, read_quorum: int) -> Tuple[Group, ...]:
    """Minimal site sets whose votes total at least ``read_quorum``.

    Unlike write groups these need not pairwise intersect (read quorums
    only intersect *write* quorums), so the result is a plain tuple of
    groups rather than a :class:`Coterie`.
    """
    return _minimal_groups(votes, read_quorum)


def _minimal_groups(votes: VoteAssignment, threshold: int) -> Tuple[Group, ...]:
    if votes.n_sites > MAX_SITES:
        raise VoteAssignmentError(
            f"group enumeration is exponential; {votes.n_sites} sites exceeds {MAX_SITES}"
        )
    if threshold <= 0 or threshold > votes.total:
        raise QuorumConstraintError(
            f"vote threshold must be in 1..T={votes.total}, got {threshold}"
        )
    vote_arr = votes.votes
    positive_sites = [s for s in range(votes.n_sites) if vote_arr[s] > 0]

    groups: list[Group] = []
    # Enumerate by increasing size so supersets of found groups can be
    # skipped via the minimality test.
    for size in range(1, len(positive_sites) + 1):
        for combo in combinations(positive_sites, size):
            if int(vote_arr[list(combo)].sum()) < threshold:
                continue
            candidate = frozenset(combo)
            if any(g <= candidate for g in groups):
                continue  # non-minimal
            groups.append(candidate)
    return tuple(sorted(groups, key=sorted))


def coterie_from_votes(votes: VoteAssignment, write_quorum: int) -> Coterie:
    """The coterie induced by a vote assignment and a write quorum.

    Requires ``write_quorum > T/2`` so the resulting groups pairwise
    intersect (two disjoint site sets cannot both hold a strict majority
    of votes). The :class:`Coterie` constructor re-checks both coterie
    properties, making this function an executable proof of the
    section 2.1 safety argument for any concrete vote vector.
    """
    if 2 * write_quorum <= votes.total:
        raise QuorumConstraintError(
            f"write quorum must exceed T/2 = {votes.total / 2}, got {write_quorum}"
        )
    return Coterie(_minimal_groups(votes, write_quorum), universe=votes.n_sites)
