"""Quorum assignments and the section 2.1 consistency constraints.

A quorum assignment for a system with ``T`` total votes is the pair
``(q_r, q_w)``. Consistency (one-copy serializability) requires

1. ``q_r + q_w > T`` — every read quorum intersects every write quorum,
   so each read sees the most recent write;
2. ``q_w > T/2`` — every two write quorums intersect, so writes are
   totally ordered and simultaneous writes in disjoint partitions are
   impossible.

The paper treats ``q_r`` as the primary variable with
``q_w = T - q_r + 1`` (the loosest write quorum condition 1 permits) and
restricts ``1 <= q_r <= floor(T/2)`` since larger read quorums are
strictly dominated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuorumConstraintError

__all__ = ["QuorumAssignment"]


@dataclass(frozen=True)
class QuorumAssignment:
    """An immutable, validated ``(q_r, q_w)`` pair for ``T`` total votes."""

    total_votes: int
    read_quorum: int
    write_quorum: int

    def __post_init__(self) -> None:
        T, q_r, q_w = self.total_votes, self.read_quorum, self.write_quorum
        if T <= 0:
            raise QuorumConstraintError(f"total votes must be positive, got T={T}")
        if not 1 <= q_r <= T:
            raise QuorumConstraintError(f"read quorum must satisfy 1 <= q_r <= T, got q_r={q_r}, T={T}")
        if not 1 <= q_w <= T:
            raise QuorumConstraintError(f"write quorum must satisfy 1 <= q_w <= T, got q_w={q_w}, T={T}")
        if q_r + q_w <= T:
            raise QuorumConstraintError(
                f"read/write quorums must intersect: need q_r + q_w > T, got {q_r} + {q_w} <= {T}"
            )
        if 2 * q_w <= T:
            raise QuorumConstraintError(
                f"write quorums must intersect: need q_w > T/2, got q_w={q_w}, T={T}"
            )

    # ------------------------------------------------------------------
    # Constructors for the named protocol instances (section 2.1)
    # ------------------------------------------------------------------
    @classmethod
    def from_read_quorum(cls, total_votes: int, read_quorum: int) -> "QuorumAssignment":
        """The paper's convention: given ``q_r``, take ``q_w = T - q_r + 1``.

        ``read_quorum`` must lie in ``1 .. floor(T/2)``; anything larger is
        dominated (the same writes would be allowed with cheaper reads).
        """
        if not 1 <= read_quorum <= total_votes // 2 and total_votes > 1:
            raise QuorumConstraintError(
                f"q_r must lie in 1..floor(T/2) = 1..{total_votes // 2}, got {read_quorum}"
            )
        if total_votes == 1 and read_quorum != 1:
            raise QuorumConstraintError("with T = 1 the only read quorum is 1")
        return cls(total_votes, read_quorum, total_votes - read_quorum + 1)

    @classmethod
    def majority(cls, total_votes: int) -> "QuorumAssignment":
        """Majority consensus (Thomas '79): the ``q_r = floor(T/2)`` instance.

        The paper states the equivalence as ``q_r = floor(T/2)``,
        ``q_w = floor(T/2) + 1``, which satisfies condition 1
        (``q_r + q_w > T``) only for even ``T``; for odd ``T`` (including
        the paper's own 101-site system) that literal pair sums to exactly
        ``T``. We therefore take the paper's own assignment convention
        ``q_w = T - q_r + 1`` at ``q_r = floor(T/2)``, giving
        ``(T/2, T/2 + 1)`` for even ``T`` — the literal majority pair —
        and ``((T-1)/2, (T+3)/2)`` for odd ``T``, the right edge of every
        availability figure. With ``T = 1`` this degenerates to
        ``q_r = q_w = 1``.
        """
        if total_votes == 1:
            return cls(1, 1, 1)
        q_r = total_votes // 2
        return cls(total_votes, q_r, total_votes - q_r + 1)

    @classmethod
    def read_one_write_all(cls, total_votes: int) -> "QuorumAssignment":
        """The ROWA instance: ``q_r = 1``, ``q_w = T``."""
        return cls(total_votes, 1, total_votes)

    # ------------------------------------------------------------------
    @property
    def is_majority(self) -> bool:
        """True iff this is the majority-consensus instance."""
        if self.total_votes == 1:
            return self.read_quorum == 1 and self.write_quorum == 1
        q_r = self.total_votes // 2
        return (
            self.read_quorum == q_r
            and self.write_quorum == self.total_votes - q_r + 1
        )

    @property
    def is_read_one_write_all(self) -> bool:
        """True iff this is the ROWA instance."""
        return self.read_quorum == 1 and self.write_quorum == self.total_votes

    def allows_read(self, component_votes: int) -> bool:
        """May a read proceed in a component holding ``component_votes``?"""
        return component_votes >= self.read_quorum

    def allows_write(self, component_votes: int) -> bool:
        """May a write proceed in a component holding ``component_votes``?"""
        return component_votes >= self.write_quorum

    def allows(self, component_votes: int, is_read: bool) -> bool:
        """Dispatch on operation kind."""
        return (
            self.allows_read(component_votes)
            if is_read
            else self.allows_write(component_votes)
        )

    def distinguishes_reads(self) -> bool:
        """False when ``q_r`` and ``q_w`` differ by at most one.

        At ``q_r = floor(T/2)`` the two quorums are nearly equal and the
        protocol effectively treats reads like writes — which is why all
        availability curves of a topology converge there (section 5.3).
        """
        return self.write_quorum - self.read_quorum > 1

    def __str__(self) -> str:
        return f"(q_r={self.read_quorum}, q_w={self.write_quorum}, T={self.total_votes})"
