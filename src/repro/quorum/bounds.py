"""Provable availability bounds (paper, section 3 and companion [15]).

The paper states two structural facts about the metrics:

- "the reliability of a single site is a lower bound for SURV, since
  SURV is always realizable by a single copy, and an upper bound for
  ACC, since at least the site at which the request originates must be
  up";
- within the quorum consensus family, the availability function is
  pointwise dominated by taking the cheapest legal quorum for each
  operation kind: reads at ``q_r = 1`` and writes at the smallest
  write quorum consistency permits, ``q_w = floor(T/2) + 1``. No valid
  ``(q_r, q_w)`` pair can beat both terms at once (condition 1 couples
  them), so this is a strict upper envelope, not an achievable point.

These are small functions, but they earn their keep in the test suite:
every simulated protocol's measured ACC is checked against
:func:`site_reliability_acc_bound`, and every optimizer result against
:func:`quorum_consensus_upper_bound` — a cheap, independent sanity net
over the whole pipeline.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import OptimizationError
from repro.quorum.availability import AvailabilityModel

__all__ = [
    "site_reliability_acc_bound",
    "single_copy_surv_bound",
    "quorum_consensus_upper_bound",
    "replication_headroom",
]


def _check_alpha(alpha: float) -> float:
    if not 0.0 <= alpha <= 1.0:
        raise OptimizationError(f"alpha must be in [0, 1], got {alpha}")
    return float(alpha)


def site_reliability_acc_bound(site_reliability: float) -> float:
    """Upper bound on ACC for *any* protocol: the submitting site must be up."""
    if not 0.0 <= site_reliability <= 1.0:
        raise OptimizationError(
            f"site reliability must be in [0, 1], got {site_reliability}"
        )
    return float(site_reliability)


def single_copy_surv_bound(site_reliability: float) -> float:
    """Lower bound on achievable SURV: one unreplicated copy achieves this.

    (A single copy at a site is accessible somewhere whenever that site
    is up — no quorum machinery can be *forced* below it, though a bad
    quorum assignment on a partitioned network certainly can be.)
    """
    if not 0.0 <= site_reliability <= 1.0:
        raise OptimizationError(
            f"site reliability must be in [0, 1], got {site_reliability}"
        )
    return float(site_reliability)


def quorum_consensus_upper_bound(
    model: AvailabilityModel, alpha: float
) -> float:
    """Pointwise upper envelope of ``A(alpha, q_r)`` over valid assignments.

    ``alpha * R(1) + (1 - alpha) * W(floor(T/2) + 1)``: the best possible
    read term and the best possible write term, which no single valid
    assignment attains simultaneously (except degenerately at
    ``T <= 2``). Every :func:`~repro.quorum.optimizer.optimal_read_quorum`
    result is <= this.
    """
    alpha = _check_alpha(alpha)
    T = model.total_votes
    min_write_quorum = T // 2 + 1
    from repro.quorum.availability import read_availability, write_availability

    best_read = float(np.asarray(read_availability(model.read_density, 1)))
    best_write = float(
        np.asarray(write_availability(model.write_density, min_write_quorum))
    )
    return alpha * best_read + (1.0 - alpha) * best_write


def replication_headroom(
    model: AvailabilityModel, alpha: float, site_reliability: float
) -> float:
    """How far the best quorum assignment sits below the ACC ceiling.

    ``site_reliability - max_q A(alpha, q_r)``: zero means replication
    has extracted everything the metric allows (every curve in the
    paper's dense-topology figures plateaus at exactly this ceiling);
    large values quantify the partition penalty on sparse networks.
    """
    from repro.quorum.optimizer import optimal_read_quorum

    best = optimal_read_quorum(model, alpha).availability
    ceiling = site_reliability_acc_bound(site_reliability)
    return ceiling - best
