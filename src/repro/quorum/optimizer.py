"""Step 4 of Figure 1: find the read quorum maximizing availability.

``q_r`` ranges over the integers ``1 .. floor(T/2)``, so exhaustive search
is polynomial and — with the vectorized curve evaluation — effectively
free. The paper nevertheless points out structure worth exploiting:
``A(alpha, q_r)`` is "frequently maximized when q_r = 1 or
q_r = floor(T/2)" and is typically unimodal, enabling golden-section
search; Brent's method applies to a continuous interpolation. We provide
all four strategies behind one entry point. The exhaustive strategy is
the correctness reference; the others are property-tested to agree with
it on unimodal inputs (and the golden/endpoint strategies *verify* their
answer against the endpoints, mirroring the paper's observation).

Ties are broken toward the smaller ``q_r``: cheaper reads at equal
availability.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Callable, Optional

import numpy as np
from scipy import optimize as scipy_optimize

from repro.errors import OptimizationError
from repro.quorum.assignment import QuorumAssignment
from repro.quorum.availability import AvailabilityModel
from repro.telemetry.recorder import current as _current_telemetry

__all__ = ["OptimizationResult", "optimal_read_quorum", "optimize_availability"]

#: Inverse golden ratio, the golden-section reduction factor.
_INV_PHI = (sqrt(5.0) - 1.0) / 2.0

#: Availability differences below this are treated as ties.
_TIE_TOLERANCE = 1e-12


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a quorum optimization.

    ``evaluations`` counts calls to the availability function, the natural
    cost unit when densities come from on-line estimation refreshes.
    """

    assignment: QuorumAssignment
    availability: float
    method: str
    evaluations: int
    alpha: float

    @property
    def read_quorum(self) -> int:
        return self.assignment.read_quorum

    @property
    def write_quorum(self) -> int:
        return self.assignment.write_quorum


def _result(model: AvailabilityModel, alpha: float, q_r: int,
            value: float, method: str, evaluations: int) -> OptimizationResult:
    return OptimizationResult(
        assignment=model.assignment(q_r),
        availability=float(value),
        method=method,
        evaluations=evaluations,
        alpha=alpha,
    )


def _best_index(values: np.ndarray) -> int:
    """Index of the maximum, ties broken toward the smallest index."""
    best = float(values.max())
    return int(np.nonzero(values >= best - _TIE_TOLERANCE)[0][0])


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

def _exhaustive(model: AvailabilityModel, alpha: float) -> OptimizationResult:
    curve = model.curve(alpha)
    idx = _best_index(curve)
    return _result(model, alpha, idx + 1, curve[idx], "exhaustive", int(curve.shape[0]))


def _endpoints(model: AvailabilityModel, alpha: float) -> OptimizationResult:
    """Evaluate only ``q_r = 1`` and ``q_r = floor(T/2)``.

    Exact when the maximum sits at an endpoint — the situation the paper
    reports for all but one of its thirty curves. Use as a fast heuristic
    or as the seed for a local search; it is *not* guaranteed optimal.
    """
    q_max = model.max_read_quorum
    candidates = [1] if q_max == 1 else [1, q_max]
    values = np.asarray([model.availability(alpha, q) for q in candidates])
    idx = _best_index(values)
    return _result(model, alpha, candidates[idx], values[idx], "endpoints", len(candidates))


def _golden(model: AvailabilityModel, alpha: float) -> OptimizationResult:
    """Integer golden-section search, endpoint-checked.

    Classic golden-section on the integer lattice: maintain a bracket
    ``[lo, hi]`` with two interior probes; shrink toward the better probe.
    Exact for strictly unimodal sequences; for the plateaus and
    multi-modal shapes real curves can have, the final answer is compared
    against both endpoints (the paper's observation that optima
    concentrate there makes this cheap insurance).
    """
    q_max = model.max_read_quorum
    cache: dict[int, float] = {}

    def f(q: int) -> float:
        if q not in cache:
            cache[q] = float(model.availability(alpha, q))
        return cache[q]

    lo, hi = 1, q_max
    while hi - lo > 2:
        span = hi - lo
        m1 = hi - int(round(span * _INV_PHI))
        m2 = lo + int(round(span * _INV_PHI))
        if m1 <= lo:
            m1 = lo + 1
        if m2 >= hi:
            m2 = hi - 1
        if m1 >= m2:
            m1 = lo + (hi - lo) // 2
            m2 = m1 + 1
        if f(m1) >= f(m2):
            hi = m2
        else:
            lo = m1
    for q in range(lo, hi + 1):
        f(q)
    f(1)
    f(q_max)

    best_q = min(cache, key=lambda q: (-cache[q] + 0.0, q))
    # Tie-break toward smaller q_r within tolerance.
    best_value = cache[best_q]
    for q in sorted(cache):
        if cache[q] >= best_value - _TIE_TOLERANCE:
            best_q = q
            best_value = cache[q]
            break
    return _result(model, alpha, best_q, cache[best_q], "golden", len(cache))


def _brent(model: AvailabilityModel, alpha: float) -> OptimizationResult:
    """Brent's method on the continuous interpolation, snapped to integers.

    The paper (section 4.1) suggests Brent's method on the continuous
    approximation of ``A``. We interpolate the integer curve linearly,
    run bounded Brent on the negation, then evaluate the floor/ceil
    neighbours of the continuous optimum plus both endpoints and return
    the best integer point — so the result is always feasible and at
    least as good as the endpoint heuristic.
    """
    q_max = model.max_read_quorum
    if q_max <= 3:
        return _exhaustive(model, alpha)

    quorums = np.arange(1, q_max + 1, dtype=np.float64)
    curve = model.curve(alpha)
    evaluations = int(curve.shape[0])

    def negated(x: float) -> float:
        return -float(np.interp(x, quorums, curve))

    bracket = scipy_optimize.minimize_scalar(
        negated, bounds=(1.0, float(q_max)), method="bounded"
    )
    candidates = {1, q_max}
    x = float(bracket.x)
    candidates.add(int(np.floor(x)))
    candidates.add(int(np.ceil(x)))
    candidates = {q for q in candidates if 1 <= q <= q_max}
    values = {q: float(curve[q - 1]) for q in candidates}
    best_q = min(sorted(candidates), key=lambda q: -values[q])
    # Prefer smaller q within tolerance.
    best_value = values[best_q]
    for q in sorted(candidates):
        if values[q] >= best_value - _TIE_TOLERANCE:
            best_q = q
            break
    return _result(model, alpha, best_q, values[best_q], "brent", evaluations)


_STRATEGIES: dict[str, Callable[[AvailabilityModel, float], OptimizationResult]] = {
    "exhaustive": _exhaustive,
    "endpoints": _endpoints,
    "golden": _golden,
    "brent": _brent,
}


def optimal_read_quorum(
    model: AvailabilityModel,
    alpha: float,
    method: str = "exhaustive",
) -> OptimizationResult:
    """Find the ``q_r`` maximizing ``A(alpha, q_r)`` (Figure 1, step 4).

    Parameters
    ----------
    model:
        The availability model built from densities.
    alpha:
        Fraction of accesses that are reads.
    method:
        ``"exhaustive"`` (default, exact), ``"endpoints"``, ``"golden"``,
        or ``"brent"``.
    """
    if not 0.0 <= alpha <= 1.0:
        raise OptimizationError(f"alpha must be in [0, 1], got {alpha}")
    try:
        strategy = _STRATEGIES[method]
    except KeyError:
        raise OptimizationError(
            f"unknown method {method!r}; choose from {sorted(_STRATEGIES)}"
        ) from None
    tel = _current_telemetry()
    if not tel.enabled:
        return strategy(model, alpha)
    with tel.span("optimizer.sweep", method=method, alpha=alpha,
                  total_votes=model.total_votes), \
            tel.phases.phase(f"optimizer.{method}"):
        result = strategy(model, alpha)
    tel.metrics.counter(
        "repro_optimizer_sweeps_total", "Figure-1 optimizer sweeps run",
    ).inc(method=method)
    tel.metrics.counter(
        "repro_optimizer_evaluations_total",
        "availability-curve evaluations spent by the optimizer",
    ).inc(result.evaluations, method=method)
    return result


def optimize_availability(
    model: AvailabilityModel,
    alpha: float,
    method: str = "exhaustive",
) -> OptimizationResult:
    """Alias of :func:`optimal_read_quorum` for discoverability."""
    return optimal_read_quorum(model, alpha, method=method)
