"""Content-addressed cross-layer density cache (DESIGN.md §10).

Density vectors and matrices are pure functions of their inputs —
``(family, n_sites, p, r)`` for the closed forms, ``(topology,
reliabilities, site)`` for the enumeration oracle — and the same inputs
recur constantly: the sweep engine bisects over reliabilities it has
already visited, the verification harness re-derives the same golden
densities per engine, and the optimizers rebuild identical models while
exploring quorums. This module memoizes those results behind one shared,
bounded LRU store so every layer benefits from every other layer's work.

Keys are *content-addressed*: closed forms hash ``(family, n, p, r)``
with the reliabilities quantized to :data:`QUANTIZE_DECIMALS` decimal
digits (callers that differ below that resolution — e.g. bisection
midpoints reconstructed from floats — share an entry); enumeration keys
hash the full topology content (links and the vote vector) plus the
quantized per-component reliability vectors and the requested row.

The cache is process-wide, bounded (:data:`MAX_ENTRIES`, LRU eviction),
and can be disabled with ``REPRO_DENSITY_CACHE=0`` in the environment or
the :func:`disabled` context manager (used by the kernel equivalence
tests so a cached result never masks a real kernel run). Hits and misses
are exported as the telemetry counters
``repro_density_cache_hits_total`` / ``repro_density_cache_misses_total``
labelled by layer, and :func:`stats` summarizes them for the
``repro cache`` CLI subcommand.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional, Tuple

import numpy as np

from repro.telemetry.recorder import current as _current_telemetry
from repro.topology.model import Topology

__all__ = [
    "CacheStats",
    "DensityCache",
    "ENV_KNOB",
    "MAX_ENTRIES",
    "QUANTIZE_DECIMALS",
    "closed_form_key",
    "disabled",
    "enabled",
    "enumeration_key",
    "fetch",
    "get_cache",
    "stats",
]

#: Environment variable that disables the cache when set to ``"0"``.
ENV_KNOB = "REPRO_DENSITY_CACHE"

#: LRU capacity of the process-wide cache.
MAX_ENTRIES = 4_096

#: Reliabilities are rounded to this many decimal digits when keyed.
QUANTIZE_DECIMALS = 12

_FORCE_DISABLED = 0


def enabled() -> bool:
    """True unless ``REPRO_DENSITY_CACHE=0`` or a :func:`disabled` block."""
    if _FORCE_DISABLED:
        return False
    return os.environ.get(ENV_KNOB, "1") != "0"


@contextmanager
def disabled():
    """Force cache misses within the block (tests exercising real kernels)."""
    global _FORCE_DISABLED
    _FORCE_DISABLED += 1
    try:
        yield
    finally:
        _FORCE_DISABLED -= 1


def _quantized(value, count_hint: Optional[int] = None) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0 and count_hint is not None:
        arr = np.full(count_hint, float(arr))
    return np.round(arr, QUANTIZE_DECIMALS)


def closed_form_key(family: str, n_sites: int, p, r) -> Tuple:
    """Key for a section-4.2 closed form: ``(family, n, p, r)`` quantized."""
    pq = _quantized(p)
    rq = _quantized(r)
    return (
        "closed_form",
        str(family),
        int(n_sites),
        pq.tobytes(),
        rq.tobytes(),
    )


def enumeration_key(
    topology: Topology,
    site_rel,
    link_rel,
    site: Optional[int] = None,
    numerics: str = "exact-order",
) -> Tuple:
    """Key for the enumeration oracle: full topology content + rels + row.

    The digest covers the link list and the vote vector (both part of the
    density), the quantized per-component reliability vectors, and which
    row — full matrix (``site is None``) or a single site — was asked
    for. ``numerics`` names the floating-point accumulation class of the
    producing backend (``"exact-order"`` for the bitwise
    reference/compiled kernels, ``"regrouped"`` for the vectorized
    collapse-DFS): entries whose bits may legitimately differ never
    share a slot, so a bitwise caller cannot receive a regrouped result.
    """
    digest = hashlib.sha256()
    digest.update(np.int64(topology.n_sites).tobytes())
    u, v = topology.link_endpoint_arrays()
    digest.update(np.ascontiguousarray(u).tobytes())
    digest.update(np.ascontiguousarray(v).tobytes())
    digest.update(np.asarray(topology.votes, dtype=np.int64).tobytes())
    digest.update(_quantized(site_rel, topology.n_sites).tobytes())
    digest.update(_quantized(link_rel, topology.n_links).tobytes())
    return (
        "enumeration",
        digest.hexdigest(),
        -1 if site is None else int(site),
        str(numerics),
    )


@dataclass
class CacheStats:
    """Aggregate hit/miss/entry counts, overall and by layer."""

    hits: int = 0
    misses: int = 0
    entries: int = 0
    by_layer: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DensityCache:
    """Bounded LRU mapping content keys to density arrays.

    Stored arrays are kept read-only; :meth:`get` hands out writable
    copies so a caller mutating its result cannot poison later hits.
    """

    def __init__(self, max_entries: int = MAX_ENTRIES) -> None:
        self.max_entries = int(max_entries)
        self._store: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}

    def _count(self, table: Dict[str, int], layer: str, metric: str) -> None:
        table[layer] = table.get(layer, 0) + 1
        tel = _current_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                f"repro_density_cache_{metric}_total",
                f"density-cache {metric} by layer",
            ).inc(layer=layer)

    def get(self, layer: str, key: Hashable) -> Optional[np.ndarray]:
        hit = self._store.get(key)
        if hit is None:
            self._count(self._misses, layer, "misses")
            return None
        self._store.move_to_end(key)
        self._count(self._hits, layer, "hits")
        return hit.copy()

    def put(self, layer: str, key: Hashable, value: np.ndarray) -> np.ndarray:
        stored = np.array(value, dtype=np.float64, copy=True)
        stored.setflags(write=False)
        self._store[key] = stored
        self._store.move_to_end(key)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)
        return value

    def fetch(
        self, layer: str, key: Hashable, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """Return the cached value for ``key``, computing and storing on miss."""
        if not enabled():
            return compute()
        hit = self.get(layer, key)
        if hit is not None:
            return hit
        return self.put(layer, key, compute())

    def clear(self) -> None:
        self._store.clear()
        self._hits.clear()
        self._misses.clear()

    def stats(self) -> CacheStats:
        layers = sorted(set(self._hits) | set(self._misses))
        return CacheStats(
            hits=sum(self._hits.values()),
            misses=sum(self._misses.values()),
            entries=len(self._store),
            by_layer={
                layer: (self._hits.get(layer, 0), self._misses.get(layer, 0))
                for layer in layers
            },
        )


_CACHE = DensityCache()


def get_cache() -> DensityCache:
    """The process-wide density cache."""
    return _CACHE


def fetch(layer: str, key: Hashable, compute: Callable[[], np.ndarray]) -> np.ndarray:
    """Module-level convenience for ``get_cache().fetch(...)``."""
    return _CACHE.fetch(layer, key, compute)


def stats() -> CacheStats:
    """Module-level convenience for ``get_cache().stats()``."""
    return _CACHE.stats()
