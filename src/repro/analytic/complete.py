"""Closed-form component-vote density for a fully-connected network.

Paper, section 4.2: with ``n`` sites, one vote per site, site reliability
``p`` and link reliability ``r``,

    f_i(v) = C(n-1, v-1) p^v ((1-p) + p (1-r)^v)^{n-v} Rel(v, r)

for ``1 <= v <= n``, plus ``f_i(0) = 1 - p`` for the down site.

Why this is exact on a complete graph: the component of an up site ``i``
is exactly a set ``S`` (|S| = v, i in S) iff

- every site of ``S`` is up: ``p^{v-1}`` beyond ``i`` itself (``p^v``
  including the ``P(i up)`` factor),
- the subgraph induced by ``S`` is connected using only links inside
  ``S``: ``Rel(v, r)`` — a path through an outside site is impossible,
  because an up outside site with a live link into ``S`` would belong to
  the component,
- every one of the remaining ``n - v`` sites is either down (``1-p``) or
  up with all ``v`` of its links into ``S`` down (``p (1-r)^v``); these
  events are independent across outside sites since they involve disjoint
  link sets.

``C(n-1, v-1)`` counts the choices of the other ``v-1`` members.
"""

from __future__ import annotations

import numpy as np
from scipy.special import comb

from repro.analytic.density import normalize_density, validate_density
from repro.analytic.rel import rel_table
from repro.errors import DensityError, TopologyError
from repro.topology.model import Topology

__all__ = ["complete_density", "complete_density_matrix"]


def complete_density(n_sites: int, p: float, r: float) -> np.ndarray:
    """The fully-connected ``f_i(v)`` as an array of length ``n_sites + 1``."""
    if n_sites < 1:
        raise TopologyError(f"need at least one site, got {n_sites}")
    for label, value in (("site reliability p", p), ("link reliability r", r)):
        if not 0.0 <= value <= 1.0:
            raise DensityError(f"{label} must be in [0, 1], got {value}")

    n = n_sites
    f = np.zeros(n + 1, dtype=np.float64)
    f[0] = 1.0 - p

    v = np.arange(1, n + 1)
    vf = v.astype(np.float64)
    choose = comb(n - 1, v - 1)
    isolation = ((1.0 - p) + p * (1.0 - r) ** vf) ** (n - vf)
    connected = rel_table(n, r)[1:]
    f[1:] = choose * p**vf * isolation * connected
    # The expression is mathematically exact, but Rel and the large
    # binomials interact at ~1e-12 scale for big n; validate loosely and
    # renormalize so downstream consumers see a clean distribution.
    validate_density(f, total_votes=n, tolerance=1e-6)
    return normalize_density(f)


def complete_density_matrix(topology: Topology, p: float, r: float) -> np.ndarray:
    """Density matrix for a uniform-vote complete topology (same row per site)."""
    if not topology.is_fully_connected():
        raise TopologyError(
            f"{topology!r} is not fully connected; the closed form does not apply"
        )
    if not np.all(topology.votes == 1):
        raise TopologyError("complete-graph closed form requires one vote per site")
    row = complete_density(topology.n_sites, p, r)
    return np.tile(row, (topology.n_sites, 1))
