"""Exact steady-state analysis of (dynamic) protocols via a joint CTMC.

The enumeration oracle (:mod:`repro.analytic.enumeration`) computes exact
densities for *static* protocols, whose grant decisions depend only on
the current network state. Dynamic protocols — quorum reassignment,
dynamic voting — carry history, so their availability depends on the
*joint* process (network state, protocol state). For small systems that
joint process is a finite continuous-time Markov chain:

- network transitions: each fallible component alternates exponential
  up (mean ``mttf``) / down (mean ``mttr``) phases, so exactly one
  component flips per transition, at rate ``1/mttf`` or ``1/mttr``;
- the protocol reacts deterministically at each transition (our
  protocols' ``on_network_change`` semantics — state exchange plus, for
  dynamic voting, the epoch write), so the joint chain stays Markov with
  the same transition structure.

:class:`JointMarkovChain` explores the reachable joint state space by
BFS (branching protocol copies via ``deepcopy``), builds the generator
matrix, solves the stationary distribution exactly, and evaluates ACC
and SURV as stationary expectations. This is the style of analysis the
dynamic-voting literature (the paper's refs [12, 13]) uses, and here it
doubles as an exact oracle for the simulator's dynamic-protocol path.

State-space caution: network states alone number ``2^(sites + links)``;
keep systems tiny (≤ ~12 fallible components) and give the protocol a
finite canonical key (see :func:`dynamic_voting_key`, which rank-encodes
the unbounded version numbers).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.errors import DensityError, SimulationError
from repro.protocols.base import ReplicaControlProtocol
from repro.topology.model import Topology

__all__ = [
    "JointMarkovChain",
    "dynamic_voting_key",
    "static_protocol_key",
    "stationary_availability",
]

#: Explored-state cap: beyond this the system is too large for exactness.
MAX_STATES = 60_000

ProtocolKey = Callable[[ReplicaControlProtocol], Hashable]


def static_protocol_key(protocol: ReplicaControlProtocol) -> Hashable:
    """Key for history-free protocols: no protocol state at all."""
    return None


def dynamic_voting_key(protocol) -> Hashable:
    """Canonical finite key for :class:`DynamicVotingProtocol` state.

    Version numbers grow without bound, but only their *relative order*
    matters to the distinguished-component rule, so they are rank-encoded
    (dense ranks). Cardinalities and distinguished sites are already
    bounded.
    """
    versions = protocol.version
    _, ranks = np.unique(versions, return_inverse=True)
    return (
        tuple(int(r) for r in ranks),
        tuple(int(c) for c in protocol.cardinality),
        tuple(int(d) for d in protocol.distinguished_site),
    )


@dataclass(frozen=True)
class _JointState:
    site_up: Tuple[bool, ...]
    link_up: Tuple[bool, ...]
    protocol_key: Hashable


class JointMarkovChain:
    """Reachable joint chain of one protocol over one small topology."""

    def __init__(
        self,
        topology: Topology,
        protocol_factory: Callable[[], ReplicaControlProtocol],
        mttf: float,
        mttr: float,
        protocol_key: ProtocolKey,
        fallible_sites: Optional[np.ndarray] = None,
        fallible_links: Optional[np.ndarray] = None,
    ) -> None:
        if mttf <= 0 or mttr <= 0:
            raise SimulationError("mttf and mttr must be positive")
        self.topology = topology
        self.fail_rate = 1.0 / mttf
        self.repair_rate = 1.0 / mttr
        self.protocol_key = protocol_key

        if fallible_sites is None:
            fallible_sites = np.ones(topology.n_sites, dtype=bool)
        if fallible_links is None:
            fallible_links = np.ones(topology.n_links, dtype=bool)
        self.fallible_sites = np.asarray(fallible_sites, dtype=bool)
        self.fallible_links = np.asarray(fallible_links, dtype=bool)

        n_fallible = int(self.fallible_sites.sum() + self.fallible_links.sum())
        if 2 ** n_fallible > MAX_STATES:
            raise DensityError(
                f"{n_fallible} fallible components means >= 2^{n_fallible} "
                f"network states; exact analysis is limited to {MAX_STATES} states"
            )

        self._explore(protocol_factory)
        self._solve()

    # ------------------------------------------------------------------
    def _make_tracker(self, state: _JointState) -> Tuple[NetworkState, ComponentTracker]:
        net = NetworkState(
            self.topology,
            np.asarray(state.site_up, dtype=bool),
            np.asarray(state.link_up, dtype=bool),
        )
        return net, ComponentTracker(net)

    def _explore(self, protocol_factory: Callable[[], ReplicaControlProtocol]) -> None:
        topo = self.topology
        initial_protocol = protocol_factory()
        initial_protocol.reset()
        net = NetworkState(topo)
        tracker = ComponentTracker(net)
        initial_protocol.on_network_change(tracker)

        start = _JointState(
            tuple(net.site_up.tolist()),
            tuple(net.link_up.tolist()),
            self.protocol_key(initial_protocol),
        )
        self.index: Dict[_JointState, int] = {start: 0}
        self.states: List[_JointState] = [start]
        self._protocols: List[ReplicaControlProtocol] = [initial_protocol]
        edges: List[Tuple[int, int, float]] = []

        frontier = [0]
        while frontier:
            next_frontier: List[int] = []
            for idx in frontier:
                state = self.states[idx]
                protocol = self._protocols[idx]
                for kind, comp in self._flips():
                    rate, new_state_arrays = self._apply_flip(state, kind, comp)
                    if rate == 0.0:
                        continue
                    new_net = NetworkState(topo, *new_state_arrays)
                    new_tracker = ComponentTracker(new_net)
                    branched = copy.deepcopy(protocol)
                    branched.on_network_change(new_tracker)
                    joint = _JointState(
                        tuple(new_net.site_up.tolist()),
                        tuple(new_net.link_up.tolist()),
                        self.protocol_key(branched),
                    )
                    target = self.index.get(joint)
                    if target is None:
                        target = len(self.states)
                        if target >= MAX_STATES:
                            raise DensityError(
                                f"joint state space exceeded {MAX_STATES} states"
                            )
                        self.index[joint] = target
                        self.states.append(joint)
                        self._protocols.append(branched)
                        next_frontier.append(target)
                    edges.append((idx, target, rate))
            frontier = next_frontier
        self._edges = edges

    def _flips(self):
        for site in np.nonzero(self.fallible_sites)[0]:
            yield "site", int(site)
        for link in np.nonzero(self.fallible_links)[0]:
            yield "link", int(link)

    def _apply_flip(self, state: _JointState, kind: str, comp: int):
        if kind == "site":
            up = list(state.site_up)
            rate = self.fail_rate if up[comp] else self.repair_rate
            up[comp] = not up[comp]
            return rate, (np.asarray(up, dtype=bool),
                          np.asarray(state.link_up, dtype=bool))
        up = list(state.link_up)
        rate = self.fail_rate if up[comp] else self.repair_rate
        up[comp] = not up[comp]
        return rate, (np.asarray(state.site_up, dtype=bool),
                      np.asarray(up, dtype=bool))

    # ------------------------------------------------------------------
    def _solve(self) -> None:
        n = len(self.states)
        Q = np.zeros((n, n), dtype=np.float64)
        for src, dst, rate in self._edges:
            Q[src, dst] += rate
            Q[src, src] -= rate
        # Solve pi Q = 0, sum(pi) = 1: replace one balance equation with
        # the normalization condition.
        A = Q.T.copy()
        A[-1, :] = 1.0
        b = np.zeros(n)
        b[-1] = 1.0
        pi = np.linalg.solve(A, b)
        pi[pi < 0] = 0.0  # numerical dust
        self.stationary = pi / pi.sum()

    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        return len(self.states)

    def availability(self, alpha: float) -> float:
        """Exact stationary ACC under uniform access submission."""
        if not 0.0 <= alpha <= 1.0:
            raise SimulationError(f"alpha must be in [0, 1], got {alpha}")
        n_sites = self.topology.n_sites
        total = 0.0
        for pi, state, protocol in zip(self.stationary, self.states, self._protocols):
            if pi == 0.0:
                continue
            _, tracker = self._make_tracker(state)
            read_mask, write_mask = protocol.grant_masks(tracker)
            frac = (
                alpha * float(read_mask.sum()) / n_sites
                + (1.0 - alpha) * float(write_mask.sum()) / n_sites
            )
            total += pi * frac
        return total

    def survivability(self) -> Tuple[float, float]:
        """Exact stationary SURV for reads and writes."""
        surv_r = surv_w = 0.0
        for pi, state, protocol in zip(self.stationary, self.states, self._protocols):
            if pi == 0.0:
                continue
            _, tracker = self._make_tracker(state)
            read_mask, write_mask = protocol.grant_masks(tracker)
            if read_mask.any():
                surv_r += pi
            if write_mask.any():
                surv_w += pi
        return surv_r, surv_w

    def network_marginal(self) -> Dict[Tuple[Tuple[bool, ...], Tuple[bool, ...]], float]:
        """Stationary probability of each network state (protocol marginalized)."""
        out: Dict = {}
        for pi, state in zip(self.stationary, self.states):
            key = (state.site_up, state.link_up)
            out[key] = out.get(key, 0.0) + float(pi)
        return out


def stationary_availability(
    topology: Topology,
    protocol_factory: Callable[[], ReplicaControlProtocol],
    alpha: float,
    mttf: float,
    mttr: float,
    protocol_key: ProtocolKey = static_protocol_key,
    **kwargs,
) -> float:
    """One-call exact ACC; see :class:`JointMarkovChain`."""
    chain = JointMarkovChain(
        topology, protocol_factory, mttf, mttr, protocol_key, **kwargs
    )
    return chain.availability(alpha)
