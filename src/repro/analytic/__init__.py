"""Analytic component-size distributions (paper, section 4.2).

The optimal quorum assignment algorithm consumes, for each site ``i``, the
density ``f_i(v)`` — the probability that site ``i`` currently sits in a
component holding exactly ``v`` votes (with ``f_i(0)`` covering the site
being down). This package provides every way the paper obtains ``f_i``:

- closed forms for symmetric networks: :func:`ring_density`,
  :func:`complete_density` (via Gilbert's ``Rel(m, r)`` recursion), and
  :func:`bus_density` in both bus-architecture variants;
- an exact exponential-time enumeration oracle for small networks
  (:func:`enumerate_density`), used to validate everything else — the
  paper proves the general problem #P-complete, so this oracle is for
  tests, not production;
- a static Monte-Carlo estimator for arbitrary graphs
  (:func:`montecarlo_density`), the off-line counterpart of the on-line
  estimation performed inside the simulator.
"""

from repro.analytic.density import (
    density_matrix_mean,
    normalize_density,
    validate_density,
)
from repro.analytic.rel import all_connected_probability, rel
from repro.analytic.ring import ring_density
from repro.analytic.complete import complete_density
from repro.analytic.bus import bus_density
from repro.analytic.tree import tree_density, tree_density_matrix
from repro.analytic.enumeration import enumerate_density, enumerate_density_matrix
from repro.analytic.montecarlo import montecarlo_density, montecarlo_density_matrix
from repro.analytic.markov import (
    JointMarkovChain,
    dynamic_voting_key,
    static_protocol_key,
    stationary_availability,
)

#: Families with a closed-form ``f_i(v)`` (paper, section 4.2).
CLOSED_FORM_FAMILIES = ("ring", "complete", "bus")


def closed_form_density(family: str, n_sites: int, p: float, r: float):
    """Dispatch to the section-4.2 closed form for ``family``.

    ``family`` is one of :data:`CLOSED_FORM_FAMILIES`. The bus family uses
    the ``sites_need_bus=False`` architecture (sites survive a bus outage
    as singletons), matching the star-through-a-zero-vote-hub encoding the
    enumeration oracle and the simulator use.

    Results are memoized in the cross-layer density cache
    (:mod:`repro.analytic.cache`), so sweeps, verification engines, and
    CLI paths that revisit the same ``(family, n, p, r)`` point pay for
    the recursion once.
    """
    from repro.analytic import cache as density_cache
    from repro.errors import DensityError

    if family == "ring":
        compute = lambda: ring_density(n_sites, p, r)  # noqa: E731
    elif family == "complete":
        compute = lambda: complete_density(n_sites, p, r)  # noqa: E731
    elif family == "bus":
        compute = lambda: bus_density(n_sites, p, r, sites_need_bus=False)  # noqa: E731
    else:
        raise DensityError(
            f"no closed form for family {family!r}; choose from {CLOSED_FORM_FAMILIES}"
        )
    key = density_cache.closed_form_key(family, n_sites, p, r)
    return density_cache.fetch("closed_form", key, compute)


__all__ = [
    "CLOSED_FORM_FAMILIES",
    "JointMarkovChain",
    "all_connected_probability",
    "bus_density",
    "closed_form_density",
    "complete_density",
    "density_matrix_mean",
    "enumerate_density",
    "dynamic_voting_key",
    "enumerate_density_matrix",
    "montecarlo_density",
    "montecarlo_density_matrix",
    "normalize_density",
    "rel",
    "ring_density",
    "static_protocol_key",
    "stationary_availability",
    "tree_density",
    "tree_density_matrix",
    "validate_density",
]
