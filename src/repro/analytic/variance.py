"""Variance-reduced Monte-Carlo density estimation (stratified + IS).

Plain Monte-Carlo (:mod:`repro.analytic.montecarlo`) spends almost its
whole sample budget re-observing the all-up network state once component
reliability is high — exactly the regime the paper's figures sweep
(p = 0.96) and the serving layer cares about (p >= 0.99). Two standard
estimators recover that budget:

**Stratified sampling over the number-of-failures stratum.** The total
failure count ``K`` over the fallible components follows a
Poisson-Binomial law whose probabilities ``W_k = P(K = k)`` are computed
*exactly* by the :func:`failure_count_weights` convolution, so the
density matrix decomposes as ``f = sum_k W_k f^(k)`` with each ``f^(k)``
estimated only from states conditioned on exactly ``k`` failures:

- stratum 0 (all fallible components up) is a *single* network state —
  evaluated deterministically once, contributing exactly ``W_0 f^(0)``
  with zero variance. At p = 0.999 this removes ~97% of the mass from
  the sampling problem.
- within stratum ``k`` the failure pattern is drawn from the exact
  conditional law ``P(x | K = k)`` by sequential conditional Bernoulli
  sampling against a suffix DP table (handles fully heterogeneous
  per-component reliabilities, e.g. the bus hub).
- the sample budget is split across strata proportionally to ``W_k``
  (default) or by Neyman allocation from a pilot pass; strata whose
  weight or allocation is negligible are dropped and contribute exactly
  zero, with the retained mass renormalized (bias bounded by
  ``tail_epsilon``).

**Importance sampling for rare-failure regimes.** Failure probabilities
are inflated to a defensive mixture proposal
``g = lam * p + (1 - lam) * p'`` (``p'`` chosen so the expected failure
count is ``target_failures``), and each sample carries the likelihood
ratio ``w(x) = p(x) / g(x) = 1 / (lam + (1 - lam) * p'(x)/p(x))`` —
computable in closed form per sample because nominal and proposal are
both product-Bernoulli laws:

    p'(x)/p(x) = prod_i (q'_i/q_i)^{x_i} ((1-q'_i)/(1-q_i))^{1-x_i}

The mixture bounds every weight by ``1/lam`` (no weight blow-up when the
proposal is mis-tuned). The returned matrix is the *self-normalized*
estimator ``f(v) = sum_s w_s 1{v_s = v} / sum_s w_s`` (consistent; bias
O(1/n)); the effective sample size ``n_eff = (sum w)^2 / sum w^2`` is
reported so downstream confidence intervals stay honest.

Both estimators reuse the block-diagonal labelling kernel
(:func:`~repro.connectivity.components.batched_vote_totals`) and derive
every random draw from the caller's seed alone, so results are exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analytic.montecarlo import Reliability, _reliability_vector
from repro.connectivity.components import batched_vote_totals
from repro.errors import DensityError, SimulationError
from repro.rng import RandomState, as_generator
from repro.topology.model import Topology

__all__ = [
    "failure_count_weights",
    "StratificationPlan",
    "stratified_density_matrix",
    "ImportanceStats",
    "importance_density_matrix",
]


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------

def _profiler():
    from repro.telemetry.recorder import current as _current_recorder

    return _current_recorder().phases


@dataclass(frozen=True)
class _Components:
    """Fallible/deterministic split of the component vector (sites+links)."""

    n_sites: int
    n_links: int
    #: Failure probabilities of the fallible components, sites first.
    q: np.ndarray
    #: Indices (into the concatenated site+link vector) of fallible comps.
    fallible: np.ndarray
    #: Base up-masks with deterministic components resolved (p in {0, 1}).
    base_sites: np.ndarray
    base_links: np.ndarray


def _split_components(topology: Topology, p: Reliability,
                      r: Reliability) -> _Components:
    site_rel = _reliability_vector(p, topology.n_sites, "site reliability")
    link_rel = _reliability_vector(r, topology.n_links, "link reliability")
    rel = np.concatenate([site_rel, link_rel])
    fallible = np.nonzero((rel > 0.0) & (rel < 1.0))[0]
    return _Components(
        n_sites=topology.n_sites,
        n_links=topology.n_links,
        q=1.0 - rel[fallible],
        fallible=fallible,
        base_sites=site_rel >= 1.0,
        base_links=link_rel >= 1.0,
    )


def _masks_from_failures(comps: _Components,
                         failures: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Expand fallible-component failure indicators to full up-masks."""
    count = failures.shape[0]
    site_masks = np.broadcast_to(comps.base_sites,
                                 (count, comps.n_sites)).copy()
    link_masks = np.broadcast_to(comps.base_links,
                                 (count, comps.n_links)).copy()
    full = np.concatenate([site_masks, link_masks], axis=1)
    full[:, comps.fallible] = ~failures
    return full[:, : comps.n_sites], full[:, comps.n_sites:]


def _bin_counts(topology: Topology, site_masks: np.ndarray,
                link_masks: np.ndarray,
                weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Label a block of states and histogram per-site vote totals."""
    prof = _profiler()
    with prof.phase("mc.label"):
        totals = batched_vote_totals(topology, site_masks, link_masks)
    with prof.phase("mc.bin"):
        count = site_masks.shape[0]
        n, T = topology.n_sites, topology.total_votes
        flat = np.tile(np.arange(n) * (T + 1), count) + totals.ravel()
        w = None if weights is None else np.repeat(weights, n)
        counts = np.bincount(flat, weights=w, minlength=n * (T + 1))
        return counts.astype(np.float64).reshape(n, T + 1)


# ----------------------------------------------------------------------
# Exact failure-count distribution (Poisson-Binomial convolution)
# ----------------------------------------------------------------------

def failure_count_weights(failure_probs: np.ndarray) -> np.ndarray:
    """Exact pmf of the total failure count over independent components.

    ``failure_probs[i]`` is component i's failure probability; the
    result has length ``m + 1`` with entry ``k`` equal to ``P(K = k)``
    (the Poisson-Binomial law, computed by the standard O(m^2)
    convolution — exact up to float round-off, sums to 1).
    """
    q = np.asarray(failure_probs, dtype=np.float64)
    if q.ndim != 1:
        raise DensityError(f"failure probs must be 1-D, got shape {q.shape}")
    if ((q < 0.0) | (q > 1.0)).any():
        raise DensityError("failure probabilities must be in [0, 1]")
    weights = np.zeros(q.shape[0] + 1, dtype=np.float64)
    weights[0] = 1.0
    for qi in q:
        weights[1:] = weights[1:] * (1.0 - qi) + weights[:-1] * qi
        weights[0] *= 1.0 - qi
    return weights


def _suffix_failure_weights(q: np.ndarray, k_max: int) -> np.ndarray:
    """``W[i, t] = P(exactly t failures among components i..m-1)``.

    The table drives exact conditional sampling: given ``t`` failures
    still to place among components ``i..``, component ``i`` fails with
    probability ``q_i W[i+1, t-1] / W[i, t]``.
    """
    m = q.shape[0]
    W = np.zeros((m + 1, k_max + 1), dtype=np.float64)
    W[m, 0] = 1.0
    for i in range(m - 1, -1, -1):
        W[i, 0] = W[i + 1, 0] * (1.0 - q[i])
        W[i, 1:] = W[i + 1, 1:] * (1.0 - q[i]) + W[i + 1, :-1] * q[i]
    return W


def _conditional_failure_masks(q: np.ndarray, k: int, count: int,
                               rng: np.random.Generator,
                               suffix: np.ndarray) -> np.ndarray:
    """Draw ``count`` failure patterns with exactly ``k`` failures.

    Sequential conditional Bernoulli sampling from the exact law
    ``P(x | K = k)`` — valid for fully heterogeneous ``q``.
    """
    m = q.shape[0]
    failures = np.zeros((count, m), dtype=bool)
    remaining = np.full(count, k, dtype=np.int64)
    for i in range(m):
        denom = suffix[i, remaining]
        num = q[i] * np.where(remaining > 0,
                              suffix[i + 1, np.maximum(remaining - 1, 0)], 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            prob = np.where(denom > 0.0, num / np.where(denom > 0.0, denom, 1.0), 0.0)
        # Forced moves are exact regardless of round-off: no failures
        # left -> up; as many left as components remain -> down.
        prob = np.where(remaining <= 0, 0.0, prob)
        prob = np.where(remaining >= m - i, 1.0, prob)
        fail = rng.random(count) < prob
        failures[:, i] = fail
        remaining -= fail.astype(np.int64)
    return failures


# ----------------------------------------------------------------------
# Stratified estimator
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class StratificationPlan:
    """How one stratified run splits its budget (reported for tests/benches).

    ``weights`` is the full exact Poisson-Binomial pmf (sums to 1);
    ``allocations`` maps each *sampled* stratum to its sample count;
    ``exact_strata`` lists strata evaluated deterministically (today:
    stratum 0 when it has positive weight); ``retained_mass`` is the
    total weight of every stratum that contributes (exact + sampled) —
    dropped strata contribute exactly zero and ``1 - retained_mass <=
    tail_epsilon`` plus any allocation-starved mass.
    """

    weights: np.ndarray
    allocations: Dict[int, int]
    exact_strata: Tuple[int, ...]
    retained_mass: float
    allocation: str

    @property
    def sampled_states(self) -> int:
        return int(sum(self.allocations.values()))


def _retained_strata(weights: np.ndarray, tail_epsilon: float) -> np.ndarray:
    """Smallest weight-ordered stratum set covering ``1 - tail_epsilon``."""
    order = np.argsort(weights)[::-1]
    cumulative = np.cumsum(weights[order])
    keep = int(np.searchsorted(cumulative, 1.0 - tail_epsilon)) + 1
    retained = np.sort(order[:keep])
    return retained[weights[retained] > 0.0]


def _largest_remainder(shares: np.ndarray, total: int) -> np.ndarray:
    """Deterministic integer apportionment of ``total`` by ``shares``."""
    if shares.sum() <= 0.0:
        return np.zeros_like(shares, dtype=np.int64)
    raw = shares / shares.sum() * total
    counts = np.floor(raw).astype(np.int64)
    remainder = total - int(counts.sum())
    if remainder > 0:
        # Stable tie-break: largest fractional part first, then index.
        order = np.lexsort((np.arange(shares.shape[0]), -(raw - counts)))
        counts[order[:remainder]] += 1
    return counts


def stratified_density_matrix(
    topology: Topology,
    p: Reliability,
    r: Reliability,
    n_samples: int = 10_000,
    seed: RandomState = None,
    allocation: str = "proportional",
    tail_epsilon: float = 1e-9,
    pilot_fraction: float = 0.25,
    return_plan: bool = False,
):
    """Estimate the density matrix by stratifying on the failure count.

    Same contract as
    :func:`~repro.analytic.montecarlo.montecarlo_density_matrix` — an
    ``(n_sites, T+1)`` matrix whose rows are proper densities, exactly
    reproducible from ``seed`` — but with the all-up stratum evaluated
    deterministically and the sample budget spent only on states that
    actually contain failures. ``allocation`` is ``"proportional"``
    (budget ~ stratum weight) or ``"neyman"`` (a pilot pass of
    ``pilot_fraction`` of the budget estimates per-stratum spread first;
    pilot samples are pooled into the final estimate).
    """
    if n_samples <= 0:
        raise SimulationError(f"n_samples must be positive, got {n_samples}")
    if allocation not in ("proportional", "neyman"):
        raise SimulationError(
            f"allocation must be 'proportional' or 'neyman', got {allocation!r}"
        )
    comps = _split_components(topology, p, r)
    prof = _profiler()
    with prof.phase("mc.strat.plan"):
        weights = failure_count_weights(comps.q)
        retained = _retained_strata(weights, tail_epsilon)
        sampled = retained[retained > 0]
        budget = n_samples - (1 if 0 in retained else 0)
        k_max = int(sampled.max()) if sampled.size else 0
        suffix = _suffix_failure_weights(comps.q, k_max) if sampled.size else None

    rng = as_generator(seed)
    n, T = topology.n_sites, topology.total_votes
    matrix = np.zeros((n, T + 1), dtype=np.float64)
    allocations: Dict[int, int] = {}
    exact: Tuple[int, ...] = ()

    if 0 in retained:
        # The all-up stratum is one known state: exact, zero variance.
        site_masks, link_masks = _masks_from_failures(
            comps, np.zeros((1, comps.q.shape[0]), dtype=bool))
        matrix += weights[0] * _bin_counts(topology, site_masks, link_masks)
        exact = (0,)

    def sample_stratum(k: int, count: int) -> np.ndarray:
        with prof.phase("mc.strat.sample"):
            failures = _conditional_failure_masks(comps.q, int(k), count, rng,
                                                  suffix)
            site_masks, link_masks = _masks_from_failures(comps, failures)
        return _bin_counts(topology, site_masks, link_masks)

    if sampled.size and budget > 0:
        shares = weights[sampled].astype(np.float64)
        stratum_counts: Dict[int, np.ndarray] = {}
        stratum_n: Dict[int, int] = {}
        if allocation == "neyman":
            # Pilot pass: proportional spend of a budget slice, then
            # re-apportion the remainder by W_k * s_k (Neyman), where
            # s_k is the pilot's per-sample spread of the mean
            # normalized vote share (a scalar proxy for the density's
            # within-stratum variability).
            pilot_budget = max(int(budget * pilot_fraction),
                               min(budget, 4 * sampled.size))
            pilot_budget = min(pilot_budget, budget)
            pilot_alloc = np.maximum(
                _largest_remainder(shares, pilot_budget),
                min(2, pilot_budget))
            spreads = np.zeros(sampled.size, dtype=np.float64)
            for idx, k in enumerate(sampled):
                count = int(pilot_alloc[idx])
                counts = sample_stratum(int(k), count)
                stratum_counts[int(k)] = counts
                stratum_n[int(k)] = count
                # Per-sample scalar: mean over sites of v/T, recovered
                # from the histogram (sufficient for a spread estimate).
                votes = np.arange(T + 1) / max(T, 1)
                per_site = counts @ votes / count
                mean = float(per_site.mean())
                second = float((counts @ (votes ** 2)).mean() / count)
                spreads[idx] = max(second - mean * mean, 0.0) ** 0.5
            remaining = budget - int(sum(stratum_n.values()))
            extra = _largest_remainder(shares * spreads, max(remaining, 0))
            final_alloc = np.array(
                [stratum_n[int(k)] for k in sampled]) + extra
            for idx, k in enumerate(sampled):
                count = int(extra[idx])
                if count > 0:
                    stratum_counts[int(k)] = stratum_counts[int(k)] + \
                        sample_stratum(int(k), count)
                    stratum_n[int(k)] += count
        else:
            final_alloc = _largest_remainder(shares, budget)
            for idx, k in enumerate(sampled):
                count = int(final_alloc[idx])
                if count <= 0:
                    continue
                stratum_counts[int(k)] = sample_stratum(int(k), count)
                stratum_n[int(k)] = count
        for k, counts in stratum_counts.items():
            count = stratum_n[k]
            if count > 0:
                matrix += weights[k] * counts / count
                allocations[k] = count

    retained_mass = float(weights[list(exact)].sum()
                          + weights[list(allocations)].sum())
    if retained_mass <= 0.0:
        raise DensityError("no stratum retained; check reliabilities")
    # Conditioning on the retained strata keeps rows proper densities;
    # the dropped tail (<= tail_epsilon plus allocation-starved mass)
    # contributes exactly zero.
    matrix /= retained_mass
    if return_plan:
        plan = StratificationPlan(
            weights=weights,
            allocations=allocations,
            exact_strata=exact,
            retained_mass=retained_mass,
            allocation=allocation,
        )
        return matrix, plan
    return matrix


# ----------------------------------------------------------------------
# Importance-sampling estimator
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ImportanceStats:
    """Weight diagnostics of one importance-sampled run."""

    n_samples: int
    #: Kish effective sample size ``(sum w)^2 / sum w^2``.
    effective_samples: float
    mean_weight: float
    max_weight: float


def importance_density_matrix(
    topology: Topology,
    p: Reliability,
    r: Reliability,
    n_samples: int = 10_000,
    seed: RandomState = None,
    target_failures: float = 2.0,
    mixture: float = 0.25,
    batch_size: int = 2048,
    return_stats: bool = False,
):
    """Estimate the density matrix by defensive-mixture importance sampling.

    Designed for rare-failure regimes (p >= 0.99): the proposal inflates
    every fallible failure probability to at least
    ``target_failures / m`` so failure states are actually visited,
    while the ``mixture`` fraction of nominal-law samples bounds every
    likelihood weight by ``1 / mixture``. Returns the self-normalized
    density matrix; with ``return_stats`` also an
    :class:`ImportanceStats` whose ``effective_samples`` should replace
    the raw sample count in confidence-interval math.
    """
    if n_samples <= 0:
        raise SimulationError(f"n_samples must be positive, got {n_samples}")
    if not 0.0 < mixture <= 1.0:
        raise SimulationError(f"mixture must be in (0, 1], got {mixture}")
    if target_failures <= 0.0:
        raise SimulationError(
            f"target_failures must be positive, got {target_failures}")
    comps = _split_components(topology, p, r)
    m = comps.q.shape[0]
    if m == 0:
        # Fully deterministic network: one state carries all the mass.
        site_masks, link_masks = _masks_from_failures(
            comps, np.zeros((1, 0), dtype=bool))
        matrix = _bin_counts(topology, site_masks, link_masks)
        if return_stats:
            return matrix, ImportanceStats(n_samples, float(n_samples), 1.0, 1.0)
        return matrix

    q = comps.q
    q_prop = np.maximum(q, min(0.5, target_failures / m))
    with np.errstate(divide="ignore"):
        log_fail = np.log(q_prop) - np.log(q)
        log_up = np.log1p(-q_prop) - np.log1p(-q)

    rng = as_generator(seed)
    prof = _profiler()
    n, T = topology.n_sites, topology.total_votes
    matrix = np.zeros((n, T + 1), dtype=np.float64)
    weight_sum = 0.0
    weight_sq_sum = 0.0
    max_weight = 0.0
    remaining = n_samples
    while remaining > 0:
        count = min(batch_size, remaining)
        remaining -= count
        with prof.phase("mc.is.sample"):
            from_nominal = rng.random(count) < mixture
            u = rng.random((count, m))
            failures = np.where(from_nominal[:, None], u < q, u < q_prop)
            # log g(x)/p(x), then w = 1 / (lam + (1-lam) g/p): bounded
            # by 1/lam, exact for product-Bernoulli nominal & proposal.
            log_ratio = failures @ log_fail + (~failures) @ log_up
            w = 1.0 / (mixture + (1.0 - mixture) * np.exp(log_ratio))
            site_masks, link_masks = _masks_from_failures(comps, failures)
        matrix += _bin_counts(topology, site_masks, link_masks, weights=w)
        weight_sum += float(w.sum())
        weight_sq_sum += float((w * w).sum())
        max_weight = max(max_weight, float(w.max()))

    if weight_sum <= 0.0:
        raise DensityError("importance weights collapsed to zero mass")
    matrix /= weight_sum  # self-normalized estimator: rows sum to 1
    if return_stats:
        stats = ImportanceStats(
            n_samples=n_samples,
            effective_samples=weight_sum * weight_sum / weight_sq_sum,
            mean_weight=weight_sum / n_samples,
            max_weight=max_weight,
        )
        return matrix, stats
    return matrix
