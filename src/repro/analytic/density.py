"""Common representation and checks for component-vote densities.

A density for a system with ``T`` total votes is a numpy float array of
length ``T + 1``; entry ``v`` is the probability that the relevant site's
component holds exactly ``v`` votes. Index 0 absorbs the "site is down"
event (the paper regards a down site as belonging to a component of size
zero). A *density matrix* stacks one density per site, shape
``(n_sites, T + 1)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DensityError

__all__ = ["validate_density", "normalize_density", "density_matrix_mean"]

#: Probability mass mismatch tolerated before :func:`validate_density` raises.
MASS_TOLERANCE = 1e-9


def validate_density(
    density: np.ndarray,
    total_votes: Optional[int] = None,
    tolerance: float = MASS_TOLERANCE,
) -> np.ndarray:
    """Check that ``density`` is a proper distribution; return it as float64.

    Raises :class:`~repro.errors.DensityError` on negative mass, total mass
    away from 1 by more than ``tolerance``, or (when ``total_votes`` is
    given) wrong length.
    """
    arr = np.asarray(density, dtype=np.float64)
    if arr.ndim != 1:
        raise DensityError(f"density must be 1-D, got shape {arr.shape}")
    if total_votes is not None and arr.shape[0] != total_votes + 1:
        raise DensityError(
            f"density must have length T+1 = {total_votes + 1}, got {arr.shape[0]}"
        )
    if (arr < -tolerance).any():
        raise DensityError(f"density has negative mass (min {arr.min():.3e})")
    mass = float(arr.sum())
    if abs(mass - 1.0) > tolerance:
        raise DensityError(f"density mass is {mass:.12f}, expected 1")
    return arr


def normalize_density(density: np.ndarray) -> np.ndarray:
    """Clip tiny negatives and rescale to unit mass.

    Closed-form densities evaluated in floating point can carry ~1e-16
    noise; empirical histograms need explicit normalization. Raises when
    the input has no positive mass at all.
    """
    arr = np.asarray(density, dtype=np.float64).copy()
    arr[arr < 0] = 0.0
    mass = float(arr.sum())
    if mass <= 0.0:
        raise DensityError("cannot normalize a density with no positive mass")
    return arr / mass


def density_matrix_mean(matrix: np.ndarray, weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Mix per-site densities into one density using ``weights``.

    This is exactly step 2 of the paper's algorithm:
    ``r(v) = sum_i r_i * f_i(v)``. ``weights`` defaults to uniform and must
    sum to 1.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise DensityError(f"density matrix must be 2-D, got shape {matrix.shape}")
    n_sites = matrix.shape[0]
    if weights is None:
        weights = np.full(n_sites, 1.0 / n_sites)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n_sites,):
            raise DensityError(
                f"weights must have shape ({n_sites},), got {weights.shape}"
            )
        if (weights < 0).any():
            raise DensityError("weights must be non-negative")
        total = float(weights.sum())
        if abs(total - 1.0) > 1e-9:
            raise DensityError(f"weights must sum to 1, got {total:.12f}")
    return weights @ matrix
