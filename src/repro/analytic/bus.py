"""Closed-form component-vote density for a single-bus network.

Paper, section 4.2. A bus network joins ``n`` sites through one shared
medium of reliability ``r``. Two architectures are distinguished:

``sites_need_bus=True``
    "no site can function when the bus is inoperative": a site can only be
    part of a live component when the bus is up, and the component then
    consists of all up sites, giving

        f_i(v) = C(n-1, v-1) r p^v (1-p)^{n-v}    for 1 <= v <= n

    with the remaining mass (bus down, or the site itself down) at v = 0.

``sites_need_bus=False``
    "bus failure does not necessitate site failure": a site that is up
    while the bus is down forms a singleton component of one vote, so

        f_i(1) = p (1-r)  +  C(n-1, 0) r p (1-p)^{n-1}
        f_i(v) = C(n-1, v-1) r p^v (1-p)^{n-v}    for 2 <= v <= n

    (The paper prints the v = 1 case as ``f_i(1) = p``; that is the
    marginal "site up and isolated-or-alone" mass only when every other
    site being reachable is folded in — we use the additive form above,
    which makes total mass exactly 1 and agrees with the paper when the
    bus-down and all-others-down terms are collected. The enumeration
    oracle in tests pins this interpretation.)

Both variants assume one vote per site; ``T = n``.
"""

from __future__ import annotations

import numpy as np
from scipy.special import comb

from repro.analytic.density import validate_density
from repro.errors import DensityError, TopologyError

__all__ = ["bus_density"]


def bus_density(
    n_sites: int,
    p: float,
    r: float,
    sites_need_bus: bool = True,
) -> np.ndarray:
    """The bus ``f_i(v)`` as an array of length ``n_sites + 1``.

    Parameters
    ----------
    n_sites:
        Number of real sites on the bus (the bus itself carries no votes).
    p:
        Site reliability.
    r:
        Bus reliability.
    sites_need_bus:
        Selects the architecture (see module docstring).
    """
    if n_sites < 1:
        raise TopologyError(f"a bus needs at least 1 site, got {n_sites}")
    for label, value in (("site reliability p", p), ("bus reliability r", r)):
        if not 0.0 <= value <= 1.0:
            raise DensityError(f"{label} must be in [0, 1], got {value}")

    n = n_sites
    f = np.zeros(n + 1, dtype=np.float64)
    v = np.arange(1, n + 1)
    vf = v.astype(np.float64)
    shared = comb(n - 1, v - 1) * p**vf * (1.0 - p) ** (n - vf)

    if sites_need_bus:
        f[1:] = r * shared
        f[0] = 1.0 - float(f[1:].sum())  # site down, or bus down
    else:
        f[1:] = r * shared
        f[1] += p * (1.0 - r)  # bus down but the site is up: singleton
        f[0] = 1.0 - float(f[1:].sum())  # site down (bus state irrelevant)
    return validate_density(f, total_votes=n, tolerance=1e-9)
