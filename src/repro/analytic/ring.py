"""Closed-form component-vote density for a ring network.

Paper, section 4.2: for a ring of ``n`` sites with one copy and one vote
per site (so ``T = n``), the probability that a given site lies in a
component of exactly ``v`` votes is

    f_i(v) = v p^v r^{v-1} (1-r) + p^v r^v                 if v = n = T
    f_i(v) = v p^v r^{v-1} ((1-p) + p (1-r)^2)             if v = T - 1
    f_i(v) = v p^v r^{v-1} (1 - p r)^2                     if 0 < v < T - 1
    f_i(v) = 1 - p                                         if v = 0

with ``p`` the site reliability and ``r`` the link reliability. The
structure: a component of ``v < n`` consecutive up sites containing site
``i`` can start at ``v`` positions, needs its ``v`` sites up (``p^v``) and
its ``v-1`` internal links up (``r^{v-1}``), and must be *cut off* at both
ends. For ``v < n-1`` the two cuts are independent and each costs
``1 - p r`` (boundary neighbour down, or up with the boundary link down).
For ``v = n-1`` both cuts involve the same single excluded site: it is
either down (``1-p``) or up with both of its ring links down
(``p (1-r)^2``). For ``v = n`` either all ``n`` ring links are up
(``r^n``) or exactly one is down (``n r^{n-1} (1-r)`` — the component is
still the whole ring through the other direction).

The density is identical at every site by symmetry, so one vector serves
as every row of the density matrix.
"""

from __future__ import annotations

import numpy as np

from repro.analytic.density import validate_density
from repro.errors import DensityError, TopologyError
from repro.topology.model import Topology

__all__ = ["ring_density", "ring_density_matrix"]


def ring_density(n_sites: int, p: float, r: float) -> np.ndarray:
    """The ring ``f_i(v)`` as an array of length ``n_sites + 1``.

    Parameters
    ----------
    n_sites:
        Ring size ``n`` (= total votes ``T`` under uniform voting).
    p, r:
        Site and link reliabilities in ``[0, 1]``.
    """
    if n_sites < 3:
        raise TopologyError(f"a ring needs at least 3 sites, got {n_sites}")
    for label, value in (("site reliability p", p), ("link reliability r", r)):
        if not 0.0 <= value <= 1.0:
            raise DensityError(f"{label} must be in [0, 1], got {value}")

    n = n_sites
    f = np.zeros(n + 1, dtype=np.float64)
    f[0] = 1.0 - p

    v = np.arange(1, n + 1, dtype=np.float64)
    base = v * p**v * r ** (v - 1.0)
    # Interior sizes 0 < v < T-1: two independent boundary cuts.
    f[1:n] = base[: n - 1] * (1.0 - p * r) ** 2
    # v = T-1: one excluded site carries both boundary links.
    f[n - 1] = base[n - 2] * ((1.0 - p) + p * (1.0 - r) ** 2)
    # v = T = n: whole ring up; at most one ring link down.
    f[n] = n * p**n * r ** (n - 1.0) * (1.0 - r) + p**n * r**n
    return validate_density(f, total_votes=n, tolerance=1e-6)


def ring_density_matrix(topology: Topology, p: float, r: float) -> np.ndarray:
    """Density matrix ``(n_sites, T+1)`` for a uniform-vote ring topology.

    Validates that ``topology`` really is a ring with one vote per site —
    the closed form is only correct there.
    """
    if not topology.is_ring():
        raise TopologyError(f"{topology!r} is not a ring; the closed form does not apply")
    if not np.all(topology.votes == 1):
        raise TopologyError("ring closed form requires one vote per site")
    row = ring_density(topology.n_sites, p, r)
    return np.tile(row, (topology.n_sites, 1))
