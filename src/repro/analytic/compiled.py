"""Compiled and dependency-free fast backends for exact enumeration.

The reference enumeration kernel (:mod:`repro.analytic.enumeration`)
spends ~70% of its time labelling components: every chunk builds a
block-diagonal CSR matrix and calls scipy's ``connected_components``
(`repro profile enumeration` attributes this to ``enum.label``). This
module provides two replacements behind the ``backend=`` /
``REPRO_ENUM_BACKEND`` selection layer:

``compiled`` — :func:`enumerate_compiled`
    A per-chunk kernel written in numba-compilable style: unpack the
    state bits, run a flat-array union-find (path halving + union by
    size) over the topology's fixed edge list, accumulate per-component
    vote totals, and scatter-add the state probability — one tight loop,
    no sparse construction. Every floating-point operation is sequenced
    exactly like the reference loop (probability factors in free-site
    then free-link order, accumulation state-major then site-major), so
    the output is **bitwise identical** to
    ``enumerate_density_matrix_reference``. numba is *optional*: the
    kernel body is a plain function that is wrapped with
    ``numba.njit(cache=True)`` when numba imports
    (:data:`HAVE_NUMBA`), and the unwrapped pure-Python twin stays
    importable so the bitwise contract is testable without the JIT.

``vectorized`` — :func:`enumerate_vectorized`
    A dependency-free numpy kernel that exploits enumeration structure
    instead of treating the ``2^m`` states independently. It walks the
    fallible components in column order, maintaining a growing array of
    per-partial-state component-label rows and their probabilities; a
    link column only doubles the rows where the link actually joins two
    distinct live components — for every other row the link's
    probability marginal is exactly ``r + (1 - r) = 1`` and both
    branches *collapse* into one. Ring-like topologies collapse from
    ``2^28`` states to under a million leaf rows, which is where the
    measured two-orders-of-magnitude speedup comes from. Accumulation is
    regrouped, not resequenced, so results match the reference to float
    round-off (≤1e-12 differential tier, DESIGN.md §15), not bitwise.
    Memory is bounded by a row cap derived from ``chunk_size``; when a
    branch would exceed it, half the rows are pushed on an explicit DFS
    stack and expanded later.

Both kernels attribute their time to ``enum.compiled.*`` phases through
the current telemetry recorder so the perf-gate explainer can name them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.topology.model import Topology

__all__ = [
    "HAVE_NUMBA",
    "jit_available",
    "enumerate_compiled",
    "enumerate_vectorized",
]


# ----------------------------------------------------------------------
# The union-find chunk kernel (numba-compilable, pure-Python twin kept)
# ----------------------------------------------------------------------

def _make_chunk_kernel(decorate):
    """Build the per-chunk union-find kernel under ``decorate``.

    Called twice at import: once with the identity decorator (the
    pure-Python twin the no-numba tests exercise bitwise) and once with
    ``numba.njit(cache=True)`` when numba is importable. One source of
    truth, two execution modes.
    """

    def kernel(start, stop, n_free, base_site_up, base_link_up,
               free_sites, free_links, site_rel, link_rel,
               u, v, votes, site, out):
        n = base_site_up.shape[0]
        n_free_sites = free_sites.shape[0]
        n_edges = u.shape[0]
        parent = np.empty(n, np.int64)
        size = np.empty(n, np.int64)
        comp_votes = np.empty(n, np.int64)
        site_up = base_site_up.copy()
        link_up = base_link_up.copy()
        for state in range(start, stop):
            # Bit j (j = 0 slowest-varying) mirrors the reference loop's
            # product((False, True), repeat=n_free) enumeration order;
            # probability factors multiply in the same order, so the
            # products are bitwise identical.
            prob = 1.0
            for j in range(n_free_sites):
                comp = free_sites[j]
                if (state >> (n_free - 1 - j)) & 1:
                    site_up[comp] = True
                    prob *= site_rel[comp]
                else:
                    site_up[comp] = False
                    prob *= 1.0 - site_rel[comp]
            for j in range(free_links.shape[0]):
                comp = free_links[j]
                if (state >> (n_free - 1 - n_free_sites - j)) & 1:
                    link_up[comp] = True
                    prob *= link_rel[comp]
                else:
                    link_up[comp] = False
                    prob *= 1.0 - link_rel[comp]
            if prob == 0.0:
                continue

            for i in range(n):
                parent[i] = i
                size[i] = 1
            for e in range(n_edges):
                if link_up[e] and site_up[u[e]] and site_up[v[e]]:
                    a = u[e]
                    while parent[a] != a:
                        parent[a] = parent[parent[a]]  # path halving
                        a = parent[a]
                    b = v[e]
                    while parent[b] != b:
                        parent[b] = parent[parent[b]]
                        b = parent[b]
                    if a != b:
                        if size[a] < size[b]:
                            a, b = b, a
                        parent[b] = a  # union by size
                        size[a] += size[b]

            for i in range(n):
                comp_votes[i] = 0
            for i in range(n):
                if site_up[i]:
                    r = i
                    while parent[r] != r:
                        parent[r] = parent[parent[r]]
                        r = parent[r]
                    comp_votes[r] += votes[i]

            if site < 0:
                # Same per-site order as the reference's
                # matrix[arange(n), totals] += prob.
                for i in range(n):
                    total = 0
                    if site_up[i]:
                        r = i
                        while parent[r] != r:
                            r = parent[r]
                        total = comp_votes[r]
                    out[i, total] += prob
            else:
                total = 0
                if site_up[site]:
                    r = site
                    while parent[r] != r:
                        r = parent[r]
                    total = comp_votes[r]
                out[0, total] += prob

    return decorate(kernel)


#: The auditable pure-Python twin (always available; slow).
_chunk_kernel_py = _make_chunk_kernel(lambda fn: fn)

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    _chunk_kernel_jit = _make_chunk_kernel(_njit(cache=True))
    HAVE_NUMBA = True
except ImportError:
    _chunk_kernel_jit = None
    HAVE_NUMBA = False


def jit_available() -> bool:
    """True when numba imported and the JIT kernel is ready to use."""
    return HAVE_NUMBA


def enumerate_compiled(
    topology: Topology,
    site_rel: np.ndarray,
    link_rel: np.ndarray,
    free_sites: np.ndarray,
    free_links: np.ndarray,
    n_free: int,
    *,
    chunk_size: int,
    site: Optional[int],
    use_jit: Optional[bool] = None,
) -> np.ndarray:
    """Run the union-find chunk kernel over all ``2^n_free`` states.

    ``use_jit=None`` picks the JIT build when numba is available and the
    pure-Python twin otherwise; tests pass ``use_jit=False`` explicitly
    to pin the twin. Output is bitwise identical to the reference loop
    for every ``chunk_size`` (the kernel preserves its floating-point
    operation order exactly).
    """
    from repro.telemetry.recorder import current as _current_recorder

    prof = _current_recorder().phases
    if use_jit is None:
        use_jit = HAVE_NUMBA
    kernel = _chunk_kernel_jit if use_jit else _chunk_kernel_py
    if kernel is None:
        from repro.errors import DensityError

        raise DensityError(
            "the compiled enumeration kernel needs numba "
            "(pip install 'repro[compiled]')"
        )

    n = topology.n_sites
    T = topology.total_votes
    u, v = topology.link_endpoint_arrays()
    u = np.ascontiguousarray(u, dtype=np.int64)
    v = np.ascontiguousarray(v, dtype=np.int64)
    votes = np.ascontiguousarray(topology.votes, dtype=np.int64)
    base_site_up = site_rel >= 1.0
    base_link_up = link_rel >= 1.0
    free_sites = np.ascontiguousarray(free_sites, dtype=np.int64)
    free_links = np.ascontiguousarray(free_links, dtype=np.int64)

    out = np.zeros((n if site is None else 1, T + 1), dtype=np.float64)
    n_states = 1 << n_free
    for start in range(0, n_states, chunk_size):
        stop = min(start + chunk_size, n_states)
        with prof.phase("enum.compiled.kernel"):
            kernel(start, stop, n_free, base_site_up, base_link_up,
                   free_sites, free_links, site_rel, link_rel,
                   u, v, votes, -1 if site is None else int(site), out)
    return out if site is None else out[0]


# ----------------------------------------------------------------------
# The collapse-DFS vectorized kernel (dependency-free)
# ----------------------------------------------------------------------

#: Row caps below this are clamped up; the DFS needs headroom to double.
MIN_ROW_CAP = 64


def _label_dtype(n_sites: int):
    """Smallest unsigned dtype whose max value can serve as the sentinel."""
    for dtype in (np.uint8, np.uint16, np.uint32):
        if n_sites < np.iinfo(dtype).max:
            return dtype
    return np.uint64


def enumerate_vectorized(
    topology: Topology,
    site_rel: np.ndarray,
    link_rel: np.ndarray,
    free_sites: np.ndarray,
    free_links: np.ndarray,
    n_free: int,
    *,
    chunk_size: int,
    site: Optional[int],
) -> np.ndarray:
    """Exact density matrix by subset-doubling DFS with branch collapse.

    Components are consumed in column order: free sites first (each
    doubles the rows with probability factors ``1-p`` / ``p``), then
    links pinned fully up (merged in place, no branch), then free links.
    A free link only doubles the rows where both endpoints are live and
    in *distinct* components — everywhere else its up/down marginal is
    exactly 1 and the branch collapses. Leaf rows are flushed into the
    density bins via two ``bincount`` passes (per-row component vote
    totals, then ``(site, total)`` bins weighted by row probability).

    Peak live rows are capped at ``max(chunk_size, MIN_ROW_CAP)``; a
    branch that would exceed the cap defers half its rows to an explicit
    DFS stack. Results are deterministic for a fixed cap and agree with
    the reference loop to float round-off (regrouped accumulation — the
    ≤1e-12 differential tier, not bitwise).
    """
    from repro.telemetry.recorder import current as _current_recorder

    prof = _current_recorder().phases
    cap = max(int(chunk_size), MIN_ROW_CAP)

    n = topology.n_sites
    T = topology.total_votes
    u, v = topology.link_endpoint_arrays()
    dtype = _label_dtype(n)
    sent = dtype(np.iinfo(dtype).max)
    votes = topology.votes.astype(np.float64)

    pinned_live_links = np.nonzero(link_rel >= 1.0)[0]

    # Column order: sites, pinned live links, free links. Pinned-dead
    # links (r <= 0) never join anything and are simply absent.
    cols = (
        [("site", int(s)) for s in free_sites]
        + [("plink", int(e)) for e in pinned_live_links]
        + [("link", int(e)) for e in free_links]
    )
    n_cols = len(cols)

    root = np.arange(n, dtype=dtype)[None, :].copy()
    root[0, site_rel <= 0.0] = sent
    acc = np.zeros(n * (T + 1), dtype=np.float64)

    def flush(L: np.ndarray, P: np.ndarray) -> None:
        nonlocal acc
        rows = L.shape[0]
        up = L != sent
        # Per-(row, component) vote sums: one bincount over flat
        # row-offset labels (down sites park in a discard bin).
        flat = np.where(up, L, n).astype(np.int64)
        flat += np.arange(rows, dtype=np.int64)[:, None] * (n + 1)
        weights = np.where(up, np.broadcast_to(votes, (rows, n)), 0.0)
        sums = np.bincount(flat.ravel(), weights=weights.ravel(),
                           minlength=rows * (n + 1))
        totals = np.where(up, sums[flat], 0.0).astype(np.int64)
        bins = (np.arange(n, dtype=np.int64) * (T + 1))[None, :] + totals
        acc += np.bincount(bins.ravel(), weights=np.repeat(P, n),
                           minlength=n * (T + 1))

    stack = [(root, np.ones(1, dtype=np.float64), 0)]
    while stack:
        L, P, c = stack.pop()
        with prof.phase("enum.compiled.branch"):
            while c < n_cols:
                kind, comp = cols[c]
                if kind == "site":
                    if 2 * L.shape[0] > cap and L.shape[0] > 1:
                        half = L.shape[0] // 2
                        stack.append((L[half:].copy(), P[half:].copy(), c))
                        L, P = L[:half], P[:half]
                        continue
                    p_up = site_rel[comp]
                    down = L.copy()
                    down[:, comp] = sent
                    L = np.concatenate([down, L])
                    P = np.concatenate([P * (1.0 - p_up), P * p_up])
                else:
                    a, b = int(u[comp]), int(v[comp])
                    la = L[:, a]
                    lb = L[:, b]
                    joins = (la != sent) & (lb != sent) & (la != lb)
                    if kind == "plink":
                        if joins.any():
                            lo = np.minimum(la, lb)
                            hi = np.maximum(la, lb)
                            merge = joins[:, None] & (L == hi[:, None])
                            L = np.where(merge, lo[:, None], L)
                    else:
                        n_joins = int(joins.sum())
                        if n_joins == 0:
                            # Dead or redundant everywhere: the marginal
                            # r + (1 - r) is exactly 1 — collapse.
                            c += 1
                            continue
                        if L.shape[0] + n_joins > cap and L.shape[0] > 1:
                            half = L.shape[0] // 2
                            stack.append((L[half:].copy(), P[half:].copy(), c))
                            L, P = L[:half], P[:half]
                            continue
                        r_up = link_rel[comp]
                        idx = np.nonzero(joins)[0]
                        lo = np.minimum(la, lb)[idx]
                        hi = np.maximum(la, lb)[idx]
                        merged = L[idx]
                        merged = np.where(merged == hi[:, None],
                                          lo[:, None], merged)
                        P = np.concatenate(
                            [np.where(joins, P * (1.0 - r_up), P),
                             P[idx] * r_up]
                        )
                        L = np.concatenate([L, merged])
                c += 1
        with prof.phase("enum.compiled.flush"):
            flush(L, P)

    matrix = acc.reshape(n, T + 1)
    return matrix if site is None else matrix[int(site)].copy()
