"""Static Monte-Carlo estimation of component-vote densities.

For general graphs where exact computation is #P-complete and the closed
forms do not apply, ``f_i`` can be estimated by sampling independent
network states from the stationary distribution (every site up w.p. ``p``,
every link up w.p. ``r``) and recording each site's component vote total.

This is the *off-line* counterpart of the on-line estimator in
:mod:`repro.protocols.estimator`: the on-line estimator sees states
weighted by the failure-process dynamics at access instants, which for
Poisson accesses (PASTA) converges to the same stationary distribution —
a property the test suite checks.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.analytic.density import normalize_density
from repro.connectivity.components import component_labels, component_vote_totals
from repro.errors import DensityError, SimulationError, TopologyError
from repro.rng import RandomState, as_generator
from repro.topology.model import Topology

__all__ = ["montecarlo_density_matrix", "montecarlo_density"]

Reliability = Union[float, Sequence[float], np.ndarray]


def _reliability_vector(value: Reliability, count: int, label: str) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(count, float(arr))
    if arr.shape != (count,):
        raise DensityError(f"{label} must be scalar or length {count}, got shape {arr.shape}")
    if ((arr < 0.0) | (arr > 1.0)).any():
        raise DensityError(f"{label} values must be in [0, 1]")
    return arr


def montecarlo_density_matrix(
    topology: Topology,
    p: Reliability,
    r: Reliability,
    n_samples: int = 10_000,
    seed: RandomState = None,
    batch_size: int = 256,
) -> np.ndarray:
    """Estimate the density matrix ``(n_sites, T+1)`` from random states.

    States are sampled in vectorized batches (the random masks for a whole
    batch are drawn with one generator call); component labelling remains
    per-state since partitions differ between states.
    """
    if n_samples <= 0:
        raise SimulationError(f"n_samples must be positive, got {n_samples}")
    if batch_size <= 0:
        raise SimulationError(f"batch_size must be positive, got {batch_size}")

    site_rel = _reliability_vector(p, topology.n_sites, "site reliability")
    link_rel = _reliability_vector(r, topology.n_links, "link reliability")
    rng = as_generator(seed)

    T = topology.total_votes
    counts = np.zeros((topology.n_sites, T + 1), dtype=np.float64)
    site_ids = np.arange(topology.n_sites)

    remaining = n_samples
    while remaining > 0:
        batch = min(batch_size, remaining)
        site_masks = rng.random((batch, topology.n_sites)) < site_rel
        link_masks = rng.random((batch, topology.n_links)) < link_rel
        for k in range(batch):
            labels = component_labels(topology, site_masks[k], link_masks[k])
            totals = component_vote_totals(labels, topology.votes)
            counts[site_ids, totals] += 1.0
        remaining -= batch

    return counts / n_samples


def montecarlo_density(
    topology: Topology,
    site: int,
    p: Reliability,
    r: Reliability,
    n_samples: int = 10_000,
    seed: RandomState = None,
) -> np.ndarray:
    """Estimate ``f_site(v)`` for one site; returns a normalized density."""
    if not 0 <= site < topology.n_sites:
        raise TopologyError(f"unknown site {site}")
    matrix = montecarlo_density_matrix(topology, p, r, n_samples=n_samples, seed=seed)
    return normalize_density(matrix[site])
