"""Static Monte-Carlo estimation of component-vote densities.

For general graphs where exact computation is #P-complete and the closed
forms do not apply, ``f_i`` can be estimated by sampling independent
network states from the stationary distribution (every site up w.p. ``p``,
every link up w.p. ``r``) and recording each site's component vote total.

The estimator is fully batched (DESIGN.md §8): samples are drawn in
blocks of ``batch_size`` states, and each block is labelled with a
*single* block-diagonal :func:`scipy.sparse.csgraph.connected_components`
call via :func:`~repro.connectivity.components.batched_component_labels`
— one compiled invocation labels every partition of every state in the
block, replacing the historical per-state Python loop. Blocks draw their
random masks from independent substreams spawned off the caller's seed,
so the estimate depends only on ``(seed, n_samples, batch_size)`` — in
particular it is *identical* for any ``n_workers``, which merely shards
the blocks across a process pool.

This is the *off-line* counterpart of the on-line estimator in
:mod:`repro.protocols.estimator`: the on-line estimator sees states
weighted by the failure-process dynamics at access instants, which for
Poisson accesses (PASTA) converges to the same stationary distribution —
a property the test suite checks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analytic.density import normalize_density
from repro.connectivity.components import (
    batched_vote_totals,
    component_labels,
    component_vote_totals,
)
from repro.errors import DensityError, SimulationError, TopologyError
from repro.rng import RandomState, as_generator, spawn
from repro.topology.model import Topology

__all__ = ["montecarlo_density_matrix", "montecarlo_density"]

Reliability = Union[float, Sequence[float], np.ndarray]


def _reliability_vector(value: Reliability, count: int, label: str) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(count, float(arr))
    if arr.shape != (count,):
        raise DensityError(f"{label} must be scalar or length {count}, got shape {arr.shape}")
    if ((arr < 0.0) | (arr > 1.0)).any():
        raise DensityError(f"{label} values must be in [0, 1]")
    return arr


def _chunk_counts(
    topology: Topology,
    site_rel: np.ndarray,
    link_rel: np.ndarray,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``count`` states and bin their vote totals (one labelling call).

    Phase attribution resolves through the current recorder; pool
    workers run with the default NULL recorder, so with ``n_workers > 1``
    phases attribute only the blocks executed in-process.
    """
    from repro.telemetry.recorder import current as _current_recorder

    prof = _current_recorder().phases
    with prof.phase("mc.sample"):
        site_masks = rng.random((count, topology.n_sites)) < site_rel
        link_masks = rng.random((count, topology.n_links)) < link_rel
    with prof.phase("mc.label"):
        totals = batched_vote_totals(topology, site_masks, link_masks)
    with prof.phase("mc.bin"):
        n, T = topology.n_sites, topology.total_votes
        flat = np.tile(np.arange(n) * (T + 1), count) + totals.ravel()
        counts = np.bincount(flat, minlength=n * (T + 1)).astype(np.float64)
        return counts.reshape(n, T + 1)


def _chunk_counts_task(args) -> np.ndarray:
    """Module-level process-pool entry point (must be picklable)."""
    return _chunk_counts(*args)


# Per-worker constants for the zero-pickle fan-out: the topology and
# reliability vectors are pickled once per worker by the initializer;
# each task then ships only (slot, count, stream), and the counts matrix
# is written to a shared-memory slot instead of the result pipe.
_MC_WORKER: dict = {}


def _init_mc_worker(topology, site_rel, link_rel, shm_spec) -> None:
    _MC_WORKER["topology"] = topology
    _MC_WORKER["site_rel"] = site_rel
    _MC_WORKER["link_rel"] = link_rel
    _MC_WORKER["shm_spec"] = shm_spec
    _MC_WORKER.pop("slot_pool", None)


def _mc_chunk_task(args) -> int:
    slot_index, count, stream = args
    counts = _chunk_counts(_MC_WORKER["topology"], _MC_WORKER["site_rel"],
                           _MC_WORKER["link_rel"], count, stream)
    pool = _MC_WORKER.get("slot_pool")
    if pool is None:
        from repro.simulation.shm import SlotPool

        name, slot_floats, n_slots = _MC_WORKER["shm_spec"]
        pool = _MC_WORKER["slot_pool"] = SlotPool.attach(
            name, slot_floats, n_slots
        )
    pool.slot(slot_index)[:] = counts.ravel()
    return slot_index


def _perstate_counts(
    topology: Topology,
    site_rel: np.ndarray,
    link_rel: np.ndarray,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Reference per-state loop (the pre-batching implementation).

    Kept as the oracle the batched path is tested against and as the
    baseline ``bench_parallel_scaling`` measures the labelling speedup
    from. Draws masks exactly like :func:`_chunk_counts`, so given the
    same generator state the two produce identical counts.
    """
    site_masks = rng.random((count, topology.n_sites)) < site_rel
    link_masks = rng.random((count, topology.n_links)) < link_rel
    T = topology.total_votes
    counts = np.zeros((topology.n_sites, T + 1), dtype=np.float64)
    site_ids = np.arange(topology.n_sites)
    for k in range(count):
        labels = component_labels(topology, site_masks[k], link_masks[k])
        totals = component_vote_totals(labels, topology.votes)
        counts[site_ids, totals] += 1.0
    return counts


def _sample_plan(n_samples: int, batch_size: int) -> List[int]:
    """Fixed decomposition of ``n_samples`` into labelling blocks."""
    full, rem = divmod(n_samples, batch_size)
    return [batch_size] * full + ([rem] if rem else [])


def montecarlo_density_matrix(
    topology: Topology,
    p: Reliability,
    r: Reliability,
    n_samples: int = 10_000,
    seed: RandomState = None,
    batch_size: int = 256,
    n_workers: int = 1,
) -> np.ndarray:
    """Estimate the density matrix ``(n_sites, T+1)`` from random states.

    States are sampled in blocks of ``batch_size``; each block's random
    masks come from an independent substream spawned off ``seed``, and
    the whole block is labelled by one block-diagonal
    ``connected_components`` call. With ``n_workers > 1`` the blocks are
    sharded across a process pool; because the substream assignment
    depends only on the block index, the returned matrix is bitwise
    identical for every ``n_workers`` value.
    """
    if n_samples <= 0:
        raise SimulationError(f"n_samples must be positive, got {n_samples}")
    if batch_size <= 0:
        raise SimulationError(f"batch_size must be positive, got {batch_size}")
    if n_workers <= 0:
        raise SimulationError(f"n_workers must be positive, got {n_workers}")

    site_rel = _reliability_vector(p, topology.n_sites, "site reliability")
    link_rel = _reliability_vector(r, topology.n_links, "link reliability")

    plan = _sample_plan(n_samples, batch_size)
    streams = spawn(seed if seed is not None else as_generator(None), len(plan))

    if n_workers == 1 or len(plan) == 1:
        tasks = [
            (topology, site_rel, link_rel, count, stream)
            for count, stream in zip(plan, streams)
        ]
        chunk_results = [_chunk_counts_task(task) for task in tasks]
        counts = chunk_results[0]
        for chunk in chunk_results[1:]:
            counts += chunk
        return counts / n_samples

    # Parallel fan-out: constants cross once via the pool initializer,
    # per-chunk count matrices come back through shared-memory slots
    # (summed in fixed chunk order, so the result is bitwise identical
    # to the serial path). Pickle fallback when the platform has no
    # shared memory.
    from concurrent.futures import ProcessPoolExecutor

    from repro.simulation.parallel import resolve_transport
    from repro.simulation.shm import SlotPool

    n, T = topology.n_sites, topology.total_votes
    slot_pool = None
    if resolve_transport() == "shm":
        try:
            slot_pool = SlotPool.create(n * (T + 1), len(plan))
        except OSError:
            slot_pool = None
    try:
        if slot_pool is None:
            tasks = [
                (topology, site_rel, link_rel, count, stream)
                for count, stream in zip(plan, streams)
            ]
            with ProcessPoolExecutor(
                max_workers=min(n_workers, len(tasks))
            ) as pool:
                chunk_results = list(pool.map(_chunk_counts_task, tasks))
        else:
            shm_spec = (slot_pool.name, n * (T + 1), len(plan))
            tasks = [
                (index, count, stream)
                for index, (count, stream) in enumerate(zip(plan, streams))
            ]
            with ProcessPoolExecutor(
                max_workers=min(n_workers, len(tasks)),
                initializer=_init_mc_worker,
                initargs=(topology, site_rel, link_rel, shm_spec),
            ) as pool:
                list(pool.map(_mc_chunk_task, tasks))
            chunk_results = [
                slot_pool.slot(index).reshape(n, T + 1).copy()
                for index in range(len(plan))
            ]
    finally:
        if slot_pool is not None:
            slot_pool.close()

    counts = chunk_results[0]
    for chunk in chunk_results[1:]:
        counts += chunk
    return counts / n_samples


def montecarlo_density(
    topology: Topology,
    site: int,
    p: Reliability,
    r: Reliability,
    n_samples: int = 10_000,
    seed: RandomState = None,
    n_workers: int = 1,
) -> np.ndarray:
    """Estimate ``f_site(v)`` for one site; returns a normalized density."""
    if not 0 <= site < topology.n_sites:
        raise TopologyError(f"unknown site {site}")
    matrix = montecarlo_density_matrix(
        topology, p, r, n_samples=n_samples, seed=seed, n_workers=n_workers
    )
    return normalize_density(matrix[site])
