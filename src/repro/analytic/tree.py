"""Exact component-vote density for tree networks, in polynomial time.

The paper proves computing ``f_i`` is #P-complete for *general* graphs.
Trees are a tractable special case the paper does not exploit: with no
cycles, the failure events that separate a site from each of its
subtrees are independent, so the density factors over the tree and can
be assembled with convolutions.

Recurrence (rooting the tree at the query site ``i``): for an up node
``u``, let ``D_u`` be the distribution of the votes of the component
containing ``u`` *within u's subtree*. Each child ``c`` contributes

- nothing, with probability ``1 - r_uc * p_c`` (edge down or child down),
- an independent draw of ``D_c`` with probability ``r_uc * p_c``,

so ``D_u = votes(u) + sum_c B_c`` where the ``B_c`` are independent —
a chain of convolutions. Finally ``f_i(0) = 1 - p_i`` and
``f_i = p_i * D_i`` above zero. Complexity is O(n * T^2) worst case
(each convolution is vectorized in numpy).

This also subsumes the star and the paper's single-bus architecture
(a star through a zero-vote hub whose reliability plays the bus's),
giving an independent cross-check of :mod:`repro.analytic.bus`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.analytic.density import validate_density
from repro.errors import DensityError, TopologyError
from repro.topology.model import Topology

__all__ = ["tree_density", "tree_density_matrix"]

Reliability = Union[float, Sequence[float], np.ndarray]


def _vector(value: Reliability, count: int, label: str) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(count, float(arr))
    if arr.shape != (count,):
        raise DensityError(f"{label} must be scalar or length {count}, got shape {arr.shape}")
    if ((arr < 0.0) | (arr > 1.0)).any():
        raise DensityError(f"{label} values must be in [0, 1]")
    return arr


def _check_tree(topology: Topology) -> None:
    if topology.n_links != topology.n_sites - 1 or not topology.is_connected():
        raise TopologyError(
            f"{topology!r} is not a tree (need a connected graph with n-1 links)"
        )


def tree_density(
    topology: Topology,
    site: int,
    p: Reliability,
    r: Reliability,
) -> np.ndarray:
    """Exact ``f_site(v)`` for a tree topology (length ``T + 1``).

    ``p`` / ``r`` may be scalars or per-site / per-link vectors, so
    heterogeneous hardware and the bus encoding are covered.
    """
    _check_tree(topology)
    if not 0 <= site < topology.n_sites:
        raise TopologyError(f"unknown site {site}")
    site_rel = _vector(p, topology.n_sites, "site reliability")
    link_rel = _vector(r, topology.n_links, "link reliability")
    T = topology.total_votes
    votes = topology.votes

    # Iterative post-order DFS from the query site (trees can be deep).
    parent: dict[int, int] = {site: -1}
    order: list[int] = []
    stack = [site]
    while stack:
        u = stack.pop()
        order.append(u)
        for nbr in topology.neighbors(u):
            if nbr != parent[u]:
                parent[nbr] = u
                stack.append(nbr)

    # D[u]: distribution (over 0..T) of subtree-component votes given u up.
    D: dict[int, np.ndarray] = {}
    for u in reversed(order):
        dist = np.zeros(T + 1, dtype=np.float64)
        dist[int(votes[u])] = 1.0
        for c in topology.neighbors(u):
            if c == parent[u]:
                continue
            keep = link_rel[topology.link_id(u, c)] * site_rel[c]
            if keep > 0.0:
                child = D[c]
                # B_c = 0 w.p. (1-keep); D_c w.p. keep — then convolve.
                branch = keep * child
                branch[0] += 1.0 - keep
                dist = np.convolve(dist, branch)[: T + 1]
            # keep == 0: child contributes nothing; dist unchanged.
        D[u] = dist

    f = site_rel[site] * D[site]
    f[0] += 1.0 - site_rel[site]
    return validate_density(f, total_votes=T, tolerance=1e-9)


def tree_density_matrix(
    topology: Topology,
    p: Reliability,
    r: Reliability,
) -> np.ndarray:
    """Exact density matrix ``(n_sites, T+1)`` for a tree.

    O(n^2 * T^2) worst case; for large trees prefer calling
    :func:`tree_density` only at the sites you need.
    """
    _check_tree(topology)
    return np.stack([tree_density(topology, s, p, r) for s in topology.sites()])
