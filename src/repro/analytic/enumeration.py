"""Exact component-vote densities by exhaustive state enumeration.

The paper proves that computing ``f_i`` in a general network is
#P-complete, so no polynomial algorithm is expected. For *small* networks,
though, we can enumerate all ``2^(n_sites + n_links)`` up/down states,
weight each by its probability, and accumulate the exact density. This
module is the library's ground-truth oracle: the closed forms
(:mod:`repro.analytic.ring`, :mod:`~repro.analytic.complete`,
:mod:`~repro.analytic.bus`), the Monte-Carlo estimator, and the simulator's
stationary behaviour are all validated against it in the test suite.

Component reliabilities may be uniform (scalars ``p``, ``r``) or per
component (arrays), which is how the star-with-perfect-spokes encoding of
the bus network is enumerated exactly.

Four backends compute the same matrix (DESIGN.md §10 and §15), selected
with the ``backend=`` kwarg or the ``REPRO_ENUM_BACKEND`` environment
variable (``auto`` | ``compiled`` | ``vectorized`` | ``reference``):

``reference`` (kernel)
    the chunked scipy kernel — generates up/down states in chunks of
    bit-unpacked numpy masks, computes state probabilities as column-wise
    product reductions, labels every state of a chunk with one
    block-diagonal ``connected_components`` call
    (:func:`~repro.connectivity.components.batched_vote_totals`), and
    accumulates probabilities with an ordered unbuffered scatter-add.
    Every floating-point operation is sequenced exactly like the
    reference loop, so the output is **bitwise identical** to it.

``compiled``
    the numba ``@njit(cache=True)`` union-find chunk kernel
    (:func:`repro.analytic.compiled.enumerate_compiled`) — same
    floating-point operation order as the reference loop, therefore also
    bitwise identical; requires numba (``pip install 'repro[compiled]'``).

``vectorized``
    the dependency-free subset-doubling DFS with branch collapse
    (:func:`repro.analytic.compiled.enumerate_vectorized`) — regrouped
    accumulation, equal to the reference to float round-off (≤1e-12
    differential tier), two orders of magnitude faster.

``auto`` (the default)
    ``compiled`` when numba is importable, else ``vectorized``.

The compiled and vectorized backends raise the safety cap from
:data:`MAX_COMPONENTS` (2^24 states) to :data:`MAX_COMPONENTS_COMPILED`
(2^28).

``enumerate_density_matrix_reference`` is the retained per-state Python
loop — the auditable oracle the kernel equivalence tests compare
against.
"""

from __future__ import annotations

import os
from itertools import product
from typing import Optional, Sequence, Union

import numpy as np

from repro.connectivity.components import (
    batched_vote_totals,
    component_labels,
    component_vote_totals,
)
from repro.errors import DensityError, TopologyError
from repro.topology.model import Topology

__all__ = [
    "BACKENDS",
    "ENV_BACKEND",
    "enumerate_density",
    "enumerate_density_matrix",
    "enumerate_density_matrix_reference",
    "resolve_backend",
]

#: Refuse to enumerate beyond this many fallible components (2^24
#: states) on the ``reference`` backend.
MAX_COMPONENTS = 24

#: The compiled/vectorized backends push the cap to 2^28 states
#: (chunked and memory-bounded; see DESIGN.md §15 for the bounds).
MAX_COMPONENTS_COMPILED = 28

#: Selectable enumeration backends (``backend=`` kwarg and the
#: :data:`ENV_BACKEND` environment variable).
BACKENDS = ("auto", "compiled", "vectorized", "reference")

#: Environment variable naming the default backend (default ``auto``).
ENV_BACKEND = "REPRO_ENUM_BACKEND"

#: States unpacked and labelled per kernel chunk. Large enough that the
#: per-chunk numpy fixed costs amortize, small enough that the chunk's
#: mask/label arrays stay cache- and memory-friendly at 2^24 states.
DEFAULT_CHUNK_SIZE = 8_192

Reliability = Union[float, Sequence[float], np.ndarray]


def _as_reliability_vector(value: Reliability, count: int, label: str) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(count, float(arr))
    if arr.shape != (count,):
        raise DensityError(f"{label} must be scalar or length {count}, got shape {arr.shape}")
    if ((arr < 0.0) | (arr > 1.0)).any():
        raise DensityError(f"{label} values must be in [0, 1]")
    return arr


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend name to ``compiled``/``vectorized``/``reference``.

    ``None`` falls back to the :data:`ENV_BACKEND` environment variable,
    then ``auto``. ``auto`` picks ``compiled`` when numba is importable
    and the dependency-free ``vectorized`` kernel otherwise; an explicit
    ``compiled`` request without numba is an error naming the remedy.
    """
    name = backend if backend is not None else os.environ.get(ENV_BACKEND) or "auto"
    if name not in BACKENDS:
        raise DensityError(
            f"unknown enumeration backend {name!r}; choose from "
            f"{BACKENDS} (backend= kwarg or {ENV_BACKEND})"
        )
    if name in ("auto", "compiled"):
        from repro.analytic import compiled

        if name == "auto":
            return "compiled" if compiled.jit_available() else "vectorized"
        if not compiled.jit_available():
            raise DensityError(
                "the 'compiled' enumeration backend needs numba "
                "(pip install 'repro[compiled]'); backend='vectorized' "
                f"or {ENV_BACKEND}=vectorized selects the dependency-free "
                "fallback"
            )
    return name


def _backend_cap(backend: str) -> int:
    return MAX_COMPONENTS if backend == "reference" else MAX_COMPONENTS_COMPILED


def _free_components(
    topology: Topology,
    site_rel: np.ndarray,
    link_rel: np.ndarray,
    backend: str = "reference",
) -> tuple:
    """Indices of fallible sites/links; components pinned at 0/1 are not
    enumerated, so a star with perfectly reliable spokes costs only
    ``2^(n_sites + 1)`` states rather than ``2^(2n + 1)``."""
    free_sites = np.nonzero((site_rel > 0.0) & (site_rel < 1.0))[0]
    free_links = np.nonzero((link_rel > 0.0) & (link_rel < 1.0))[0]
    n_free = free_sites.size + free_links.size
    cap = _backend_cap(backend)
    if n_free > cap:
        if backend == "reference" and n_free <= MAX_COMPONENTS_COMPILED:
            hint = (
                f"; the 'compiled'/'vectorized' backends raise the cap to "
                f"{MAX_COMPONENTS_COMPILED} (pass backend='vectorized' or "
                f"set {ENV_BACKEND}=auto)"
            )
        else:
            hint = "; use montecarlo_density for larger networks"
        raise DensityError(
            f"enumeration over {n_free} fallible components exceeds the "
            f"{cap}-component safety cap of the {backend!r} backend{hint}"
        )
    return free_sites, free_links, n_free


def enumerate_density_matrix(
    topology: Topology,
    p: Reliability,
    r: Reliability,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    site: Optional[int] = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Exact density matrix ``(n_sites, T+1)`` by full state enumeration.

    ``backend`` picks the kernel (see the module docstring; ``None``
    defers to ``REPRO_ENUM_BACKEND``, then ``auto``). The ``reference``
    and ``compiled`` backends are bitwise identical to
    :func:`enumerate_density_matrix_reference` for every ``chunk_size``;
    ``vectorized`` regroups the accumulation and agrees to float
    round-off (its results are cached under a separate numerics tag so a
    bitwise caller never receives a regrouped entry). With ``site``
    given, only that site's row (length ``T+1``) is returned — the
    single-row fast path behind :func:`enumerate_density`.
    """
    if chunk_size <= 0:
        raise DensityError(f"chunk_size must be positive, got {chunk_size}")
    resolved = resolve_backend(backend)
    site_rel = _as_reliability_vector(p, topology.n_sites, "site reliability")
    link_rel = _as_reliability_vector(r, topology.n_links, "link reliability")
    free_sites, free_links, n_free = _free_components(
        topology, site_rel, link_rel, backend=resolved
    )

    from repro.analytic import cache as density_cache

    numerics = "regrouped" if resolved == "vectorized" else "exact-order"
    key = density_cache.enumeration_key(
        topology, site_rel, link_rel, site, numerics=numerics
    )
    return density_cache.fetch(
        "enumeration",
        key,
        lambda: _dispatch_kernel(
            resolved, topology, site_rel, link_rel, free_sites, free_links,
            n_free, chunk_size=chunk_size, site=site,
        ),
    )


def _dispatch_kernel(
    backend: str,
    topology: Topology,
    site_rel: np.ndarray,
    link_rel: np.ndarray,
    free_sites: np.ndarray,
    free_links: np.ndarray,
    n_free: int,
    *,
    chunk_size: int,
    site: Optional[int],
) -> np.ndarray:
    if backend == "reference":
        return _enumeration_kernel(
            topology, site_rel, link_rel, free_sites, free_links, n_free,
            chunk_size=chunk_size, site=site,
        )
    from repro.analytic import compiled

    if backend == "compiled":
        return compiled.enumerate_compiled(
            topology, site_rel, link_rel, free_sites, free_links, n_free,
            chunk_size=chunk_size, site=site,
        )
    return compiled.enumerate_vectorized(
        topology, site_rel, link_rel, free_sites, free_links, n_free,
        chunk_size=chunk_size, site=site,
    )


def _enumeration_kernel(
    topology: Topology,
    site_rel: np.ndarray,
    link_rel: np.ndarray,
    free_sites: np.ndarray,
    free_links: np.ndarray,
    n_free: int,
    *,
    chunk_size: int,
    site: Optional[int],
) -> np.ndarray:
    # Phase attribution resolves through the current recorder (the
    # kernel has no telemetry argument); with the NULL recorder every
    # phase block is a shared no-op.
    from repro.telemetry.recorder import current as _current_recorder

    prof = _current_recorder().phases

    n = topology.n_sites
    T = topology.total_votes
    if site is None:
        out = np.zeros(n * (T + 1), dtype=np.float64)
        row_offsets = np.arange(n, dtype=np.int64) * (T + 1)
    else:
        out = np.zeros(T + 1, dtype=np.float64)

    base_site_up = site_rel >= 1.0
    base_link_up = link_rel >= 1.0

    n_states = 1 << n_free
    # Bit j (j = 0 slowest-varying) of state k mirrors the reference
    # loop's ``product((False, True), repeat=n_free)`` enumeration order;
    # matching the order makes the scatter-add accumulation sequence —
    # and therefore the floating-point result — identical.
    shifts = np.arange(n_free - 1, -1, -1, dtype=np.int64)

    for start in range(0, n_states, chunk_size):
        stop = min(start + chunk_size, n_states)
        with prof.phase("enum.unpack"):
            idx = np.arange(start, stop, dtype=np.int64)
            bits = ((idx[:, None] >> shifts) & 1).astype(bool)
            count = idx.shape[0]

            site_masks = np.broadcast_to(base_site_up, (count, n)).copy()
            link_masks = np.broadcast_to(
                base_link_up, (count, topology.n_links)).copy()
            site_masks[:, free_sites] = bits[:, : free_sites.size]
            link_masks[:, free_links] = bits[:, free_sites.size:]

        # One factor per fallible component, multiplied column-by-column
        # in the same order the reference loop multiplies scalars.
        with prof.phase("enum.probs"):
            probs = np.ones(count, dtype=np.float64)
            for col, comp in enumerate(free_sites):
                rel = site_rel[comp]
                probs *= np.where(bits[:, col], rel, 1.0 - rel)
            for col, comp in enumerate(free_links):
                rel = link_rel[comp]
                probs *= np.where(
                    bits[:, free_sites.size + col], rel, 1.0 - rel)

        with prof.phase("enum.label"):
            totals = batched_vote_totals(topology, site_masks, link_masks)
        with prof.phase("enum.accumulate"):
            if site is None:
                # State-major flat bins reproduce the reference's
                # per-state ``matrix[arange(n), totals] += prob``
                # accumulation order; np.add.at applies the additions
                # unbuffered, in order.
                flat = (row_offsets[None, :] + totals).ravel()
                np.add.at(out, flat, np.repeat(probs, n))
            else:
                np.add.at(out, totals[:, site], probs)

    return out.reshape(n, T + 1) if site is None else out


def enumerate_density_matrix_reference(
    topology: Topology,
    p: Reliability,
    r: Reliability,
) -> np.ndarray:
    """The retained per-state loop: the oracle for the vectorized kernel.

    This is the original implementation, kept because the kernel
    equivalence tests assert the vectorized path reproduces it bitwise —
    every probability product and every accumulation happens in the same
    floating-point order.
    """
    site_rel = _as_reliability_vector(p, topology.n_sites, "site reliability")
    link_rel = _as_reliability_vector(r, topology.n_links, "link reliability")
    free_sites, free_links, _ = _free_components(topology, site_rel, link_rel)
    n_free = free_sites.size + free_links.size

    T = topology.total_votes
    matrix = np.zeros((topology.n_sites, T + 1), dtype=np.float64)

    site_up = (site_rel >= 1.0).copy()
    link_up = (link_rel >= 1.0).copy()

    for bits in product((False, True), repeat=n_free):
        site_bits = bits[: free_sites.size]
        link_bits = bits[free_sites.size:]
        site_up[free_sites] = site_bits
        link_up[free_links] = link_bits

        prob = 1.0
        for idx, up in zip(free_sites, site_bits):
            prob *= site_rel[idx] if up else 1.0 - site_rel[idx]
        for idx, up in zip(free_links, link_bits):
            prob *= link_rel[idx] if up else 1.0 - link_rel[idx]
        if prob == 0.0:
            continue

        labels = component_labels(topology, site_up, link_up)
        totals = component_vote_totals(labels, topology.votes)
        matrix[np.arange(topology.n_sites), totals] += prob

    return matrix


def enumerate_density(
    topology: Topology,
    site: int,
    p: Reliability,
    r: Reliability,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Exact ``f_site(v)`` for one site (length ``T + 1``).

    Accumulates the single requested row inside the kernel instead of
    materializing the full ``(n_sites, T+1)`` matrix; the row is bitwise
    identical to ``enumerate_density_matrix(...)[site]``.
    """
    if not 0 <= site < topology.n_sites:
        raise TopologyError(f"unknown site {site}")
    return enumerate_density_matrix(topology, p, r, site=site, backend=backend)
