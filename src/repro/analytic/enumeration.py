"""Exact component-vote densities by exhaustive state enumeration.

The paper proves that computing ``f_i`` in a general network is
#P-complete, so no polynomial algorithm is expected. For *small* networks,
though, we can enumerate all ``2^(n_sites + n_links)`` up/down states,
weight each by its probability, and accumulate the exact density. This
module is the library's ground-truth oracle: the closed forms
(:mod:`repro.analytic.ring`, :mod:`~repro.analytic.complete`,
:mod:`~repro.analytic.bus`), the Monte-Carlo estimator, and the simulator's
stationary behaviour are all validated against it in the test suite.

Component reliabilities may be uniform (scalars ``p``, ``r``) or per
component (arrays), which is how the star-with-perfect-spokes encoding of
the bus network is enumerated exactly.
"""

from __future__ import annotations

from itertools import product
from typing import Optional, Sequence, Union

import numpy as np

from repro.connectivity.components import component_labels, component_vote_totals
from repro.errors import DensityError, TopologyError
from repro.topology.model import Topology

__all__ = ["enumerate_density", "enumerate_density_matrix"]

#: Refuse to enumerate beyond this many fallible components (2^24 states).
MAX_COMPONENTS = 24

Reliability = Union[float, Sequence[float], np.ndarray]


def _as_reliability_vector(value: Reliability, count: int, label: str) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(count, float(arr))
    if arr.shape != (count,):
        raise DensityError(f"{label} must be scalar or length {count}, got shape {arr.shape}")
    if ((arr < 0.0) | (arr > 1.0)).any():
        raise DensityError(f"{label} values must be in [0, 1]")
    return arr


def enumerate_density_matrix(
    topology: Topology,
    p: Reliability,
    r: Reliability,
) -> np.ndarray:
    """Exact density matrix ``(n_sites, T+1)`` by full state enumeration.

    Components with reliability exactly 0 or 1 are pinned rather than
    enumerated, so a star with perfectly reliable spokes costs only
    ``2^(n_sites + 1)`` states rather than ``2^(2n + 1)``.
    """
    site_rel = _as_reliability_vector(p, topology.n_sites, "site reliability")
    link_rel = _as_reliability_vector(r, topology.n_links, "link reliability")

    free_sites = np.nonzero((site_rel > 0.0) & (site_rel < 1.0))[0]
    free_links = np.nonzero((link_rel > 0.0) & (link_rel < 1.0))[0]
    n_free = free_sites.size + free_links.size
    if n_free > MAX_COMPONENTS:
        raise DensityError(
            f"enumeration over {n_free} fallible components exceeds the "
            f"{MAX_COMPONENTS}-component safety cap; use montecarlo_density instead"
        )

    T = topology.total_votes
    matrix = np.zeros((topology.n_sites, T + 1), dtype=np.float64)

    base_site_up = site_rel >= 1.0
    base_link_up = link_rel >= 1.0
    site_up = base_site_up.copy()
    link_up = base_link_up.copy()

    for bits in product((False, True), repeat=n_free):
        site_bits = bits[: free_sites.size]
        link_bits = bits[free_sites.size:]
        site_up[free_sites] = site_bits
        link_up[free_links] = link_bits

        prob = 1.0
        for idx, up in zip(free_sites, site_bits):
            prob *= site_rel[idx] if up else 1.0 - site_rel[idx]
        for idx, up in zip(free_links, link_bits):
            prob *= link_rel[idx] if up else 1.0 - link_rel[idx]
        if prob == 0.0:
            continue

        labels = component_labels(topology, site_up, link_up)
        totals = component_vote_totals(labels, topology.votes)
        matrix[np.arange(topology.n_sites), totals] += prob

    return matrix


def enumerate_density(
    topology: Topology,
    site: int,
    p: Reliability,
    r: Reliability,
) -> np.ndarray:
    """Exact ``f_site(v)`` for one site (length ``T + 1``)."""
    if not 0 <= site < topology.n_sites:
        raise TopologyError(f"unknown site {site}")
    return enumerate_density_matrix(topology, p, r)[site]
