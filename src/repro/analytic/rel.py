"""Gilbert's recursion for the connectivity of a random complete graph.

``Rel(m, r)`` is the probability that all ``m`` sites of a fully-connected
network can communicate when sites never fail and each of the
``m(m-1)/2`` links is independently up with probability ``r`` (Gilbert,
*Random graphs*, Ann. Math. Stat. 30, 1959; paper, section 4.2):

    Rel(m, r) = 1 - sum_{i=1}^{m-1} C(m-1, i-1) (1-r)^{i(m-i)} Rel(i, r)

The sum removes, for each proper subset containing a fixed vertex, the
probability that exactly that subset forms the fixed vertex's connected
component (the subset is internally connected and every one of its
``i(m-i)`` links to the rest is down).

The recursion is O(m) per term given earlier terms, O(m^2) overall; we
keep one growable table per ``r``: a request for a larger ``m_max``
*extends* the stored table from where it left off instead of recomputing
it from scratch. The recursion for ``Rel(m, r)`` only reads
``Rel(1..m-1, r)``, so extension produces bit-for-bit the values a fresh
computation would — provided the stored values are the *raw* recursion
outputs. Clamping to ``[0, 1]`` therefore happens only on the returned
copy, never on the stored table.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
from scipy.special import comb

from repro.errors import DensityError

__all__ = ["rel", "rel_table", "all_connected_probability"]

#: Distinct link reliabilities to keep growable tables for (LRU-evicted).
MAX_CACHED_RELIABILITIES = 256

_RAW_TABLES: "OrderedDict[float, np.ndarray]" = OrderedDict()


def _raw_rel_table(m_max: int, r: float) -> np.ndarray:
    """Unclipped ``Rel(0..m_max, r)``, extending the per-``r`` table in place."""
    old = _RAW_TABLES.get(r)
    if old is not None and old.size > m_max:
        _RAW_TABLES.move_to_end(r)
        return old

    table = np.empty(m_max + 1, dtype=np.float64)
    start = 2
    if old is None or old.size < 2:
        table[0] = 1.0  # vacuous: no sites, trivially connected
        if m_max >= 1:
            table[1] = 1.0
    else:
        table[: old.size] = old
        start = old.size
    one_minus_r = 1.0 - r
    for m in range(start, m_max + 1):
        i = np.arange(1, m)
        # C(m-1, i-1) * (1-r)^(i*(m-i)) * Rel(i, r)
        coeff = comb(m - 1, i - 1)
        if one_minus_r == 0.0:
            cut = np.zeros_like(i, dtype=np.float64)
        else:
            cut = one_minus_r ** (i * (m - i)).astype(np.float64)
        total = float(np.dot(coeff * cut, table[1:m]))
        table[m] = 1.0 - total

    _RAW_TABLES[r] = table
    _RAW_TABLES.move_to_end(r)
    while len(_RAW_TABLES) > MAX_CACHED_RELIABILITIES:
        _RAW_TABLES.popitem(last=False)
    return table


def rel_table(m_max: int, r: float) -> np.ndarray:
    """``Rel(m, r)`` for every ``m`` in ``0..m_max`` as one array."""
    if m_max < 0:
        raise DensityError(f"m_max must be non-negative, got {m_max}")
    if not 0.0 <= r <= 1.0:
        raise DensityError(f"link reliability must be in [0, 1], got {r}")
    raw = _raw_rel_table(m_max, float(r))
    # Floating point can push values a hair outside [0, 1]; clamp the
    # returned copy only — the stored raw table must stay extendable.
    return np.clip(raw[: m_max + 1], 0.0, 1.0)


def rel(m: int, r: float) -> float:
    """Probability that ``m`` sites of a complete graph are all connected.

    ``Rel(0, r)`` and ``Rel(1, r)`` are 1 by convention (no pair needs to
    communicate).
    """
    if m < 0:
        raise DensityError(f"m must be non-negative, got {m}")
    return float(rel_table(m, r)[m])


def all_connected_probability(m: int, r: float) -> float:
    """Readable alias for :func:`rel`."""
    return rel(m, r)
